"""The pipeline event bus.

Every interesting thing the simulated machine does — a uop renaming, an
issue, a squash, a wrong-ordering collision, a cache miss, a bank
conflict, a retirement, a predictor update — can be emitted as a typed
:class:`Event` on an :class:`EventBus`.  Sinks (JSONL logs, Chrome
traces, in-memory buffers) subscribe to the bus; analysis code replays
the stream instead of re-instrumenting the engine.

The design goal is *near-zero overhead when disabled*: instrumented
components hold an ``obs`` reference that defaults to ``None`` and guard
every emission with a single ``is not None`` test, so an un-observed run
pays one pointer comparison per hook point and allocates nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class EventKind:
    """The event taxonomy (string constants, not an enum, for speed).

    Core pipeline lifecycle
        ``RENAME``, ``ISSUE``, ``RETIRE`` — one per uop (``RETIRE``
        carries the full lifecycle cycles for trace rendering).
    Speculation outcomes
        ``SQUASH`` — a dependent issued before its producer's data
        existed (mirrors ``SimResult.squashed_issues``);
        ``COLLISION`` — a load paid the wrong-ordering penalty (mirrors
        ``SimResult.collision_penalties``);
        ``VIOLATION`` — a hidden AC-PNC ordering violation trapped;
        ``BANK_CONFLICT`` — two loads hit one L1 bank in a cycle
        (mirrors ``SimResult.bank_conflicts``);
        ``FORWARD`` — a load was served by store-to-load forwarding.
    Memory system
        ``MISS`` — an L1 data-cache miss, with the serving level.
    Bookkeeping
        ``STORE_TRACKED`` / ``STORE_DATA`` — a store entered the MOB /
        its STD arrived;
        ``PREDICTOR_UPDATE`` — any predictor family trained;
        ``FAULT`` — a :mod:`repro.robust` fault wrapper perturbed the
        machine (the chaos audit trail).
    Serving (:mod:`repro.serve`; ``cycle`` carries a microsecond
    monotonic timestamp instead of a simulated cycle)
        ``SERVE_ENQUEUE`` — a request was admitted to a shard queue
        (fields: ``shard``, ``depth``);
        ``SERVE_FLUSH`` — a shard flushed one micro-batch (fields:
        ``shard``, ``batch``, ``depth``, ``vectorized``);
        ``SERVE_REJECT`` — admission control turned a request away
        with a retry-after (fields: ``shard``, ``depth``);
        ``SERVE_DRAIN`` — a shard finished draining at shutdown
        (fields: ``shard``, ``served``);
        ``SERVE_DEGRADE`` — a vectorized-eligible run landed on the
        scalar loop (fields: ``shard``, ``session``, ``reason``) —
        emitted once per (session, reason) per shard, with the full
        count in shard stats;
        ``HOTTRACE_ABORT`` — a hot-trace guard failed and the window
        fell back to the normal path (fields: ``shard``, ``session``,
        ``guard``).
    Backend selection (:meth:`repro.engine.machine.Machine.run`)
        ``BACKEND_DEGRADE`` — a vectorized run request fell back to the
        scalar reference loop (fields: ``reason``).
    """

    RENAME = "rename"
    ISSUE = "issue"
    RETIRE = "retire"
    SQUASH = "squash"
    COLLISION = "collision"
    VIOLATION = "violation"
    BANK_CONFLICT = "bank-conflict"
    FORWARD = "forward"
    MISS = "miss"
    STORE_TRACKED = "store-tracked"
    STORE_DATA = "store-data"
    PREDICTOR_UPDATE = "predictor-update"
    FAULT = "fault-injected"
    SERVE_ENQUEUE = "serve-enqueue"
    SERVE_FLUSH = "serve-flush"
    SERVE_REJECT = "serve-reject"
    SERVE_DRAIN = "serve-drain"
    SERVE_DEGRADE = "serve-degrade"
    HOTTRACE_ABORT = "hottrace-abort"
    BACKEND_DEGRADE = "backend-degrade"

    #: Every kind, in a stable presentation order.
    ALL = (RENAME, ISSUE, RETIRE, SQUASH, COLLISION, VIOLATION,
           BANK_CONFLICT, FORWARD, MISS, STORE_TRACKED, STORE_DATA,
           PREDICTOR_UPDATE, FAULT, SERVE_ENQUEUE, SERVE_FLUSH,
           SERVE_REJECT, SERVE_DRAIN, SERVE_DEGRADE, HOTTRACE_ABORT,
           BACKEND_DEGRADE)


class Event:
    """One emitted pipeline event.

    Attributes
    ----------
    kind:
        One of the :class:`EventKind` constants.
    cycle:
        Simulated cycle of the event (``-1`` when not meaningful).
    seq:
        Dynamic sequence number of the uop involved (``-1`` when the
        event is not tied to one uop).
    pc:
        Instruction pointer involved (``0`` when not meaningful).
    fields:
        Kind-specific payload (e.g. ``level`` for a miss, ``family``
        for a predictor update).
    """

    __slots__ = ("kind", "cycle", "seq", "pc", "fields")

    def __init__(self, kind: str, cycle: int, seq: int = -1, pc: int = 0,
                 fields: Optional[Dict[str, object]] = None) -> None:
        self.kind = kind
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.fields = fields if fields is not None else {}

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "cycle": self.cycle}
        if self.seq >= 0:
            out["seq"] = self.seq
        if self.pc:
            out["pc"] = self.pc
        out.update(self.fields)
        return out

    def __repr__(self) -> str:
        return (f"Event({self.kind!r}, cycle={self.cycle}, seq={self.seq}"
                + (f", {self.fields}" if self.fields else "") + ")")


#: A sink callback: receives every event it subscribed to.
EventCallback = Callable[[Event], None]


class EventBus:
    """Dispatches :class:`Event` objects to subscribed sinks.

    The bus always maintains per-kind counts (they are how the
    acceptance contract "event counts equal ``SimResult`` counters" is
    checked), and forwards each event to the callbacks subscribed to
    its kind plus the wildcard subscribers.
    """

    __slots__ = ("counts", "_by_kind", "_wildcard", "_sinks")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self._by_kind: Dict[str, List[EventCallback]] = {}
        self._wildcard: List[EventCallback] = []
        self._sinks: List[object] = []

    # -- subscription -------------------------------------------------------

    def subscribe(self, callback: EventCallback,
                  kind: Optional[str] = None) -> None:
        """Subscribe ``callback`` to ``kind`` (``None`` = every event)."""
        if kind is None:
            self._wildcard.append(callback)
        else:
            self._by_kind.setdefault(kind, []).append(callback)

    def attach(self, sink: object) -> object:
        """Subscribe a sink object exposing ``on_event(event)``.

        The sink is remembered so :meth:`close` can flush it; returns
        the sink for chaining.
        """
        self.subscribe(sink.on_event)  # type: ignore[attr-defined]
        self._sinks.append(sink)
        return sink

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, cycle: int, seq: int = -1, pc: int = 0,
             **fields: object) -> None:
        """Emit one event to counters and all interested subscribers."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        callbacks = self._by_kind.get(kind)
        if not callbacks and not self._wildcard:
            return
        event = Event(kind, cycle, seq, pc, fields if fields else None)
        if callbacks:
            for callback in callbacks:
                callback(event)
        for callback in self._wildcard:
            callback(event)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush/close every attached sink that supports it."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
