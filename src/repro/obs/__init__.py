"""repro.obs — the structured observability layer.

Three pieces:

* :mod:`repro.obs.events` — a typed pipeline event bus with near-zero
  overhead when disabled (``Machine.obs`` defaults to ``None``);
* :mod:`repro.obs.registry` — a unified, namespaced metrics registry
  with snapshot/diff/merge and JSON export;
* :mod:`repro.obs.sinks` — JSONL event logs, Chrome ``trace_event``
  export (opens in Perfetto), and the run-manifest artifact;
* :mod:`repro.obs.trace` — per-request spans: minted at protocol
  decode, staged through queue/batch/kernel/reply, aggregated into
  streaming histograms and exportable as Chrome traces;
* :mod:`repro.obs.timeseries` — a periodic exporter sampling any
  metrics source into JSONL rows and a Prometheus text file;
* :mod:`repro.obs.gate` — the perf-regression gate over
  ``BENCH_history.jsonl`` (``python -m repro.obs gate``);
* :mod:`repro.obs.provenance` — the git/host/version context stamped
  into every bench artifact.

:func:`instrument` wires a bus into every observable component of a
machine; :func:`observed_run` is the one-call "run this trace and leave
a full artifact directory behind" entry point, also exposed on the CLI
as ``python -m repro.obs`` (``summarize`` / ``diff`` / ``export``).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.obs.events import Event, EventBus, EventKind
from repro.obs.profile import PhaseProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.provenance import collect_provenance
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    RunManifest,
    events_to_chrome_trace,
    git_revision,
    read_jsonl,
)
from repro.obs.timeseries import TimeSeriesExporter, to_prometheus
from repro.obs.trace import (
    RequestTracer,
    Span,
    read_spans,
    spans_to_chrome_trace,
    summarize_spans,
)

__all__ = [
    "Event",
    "EventBus",
    "EventKind",
    "PhaseProfiler",
    "MetricsRegistry",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "RunManifest",
    "RequestTracer",
    "Span",
    "TimeSeriesExporter",
    "collect_provenance",
    "events_to_chrome_trace",
    "git_revision",
    "read_jsonl",
    "read_spans",
    "spans_to_chrome_trace",
    "summarize_spans",
    "to_prometheus",
    "instrument",
    "observed_run",
]


def instrument(machine, bus: Optional[EventBus] = None) -> EventBus:
    """Attach an event bus to every observable part of ``machine``.

    Wires the engine itself, its memory hierarchy, and whichever
    predictor families are present (hit-miss, bank, branch, and the
    ordering scheme's CHT).  Returns the bus for sink attachment.
    """
    if bus is None:
        bus = EventBus()
    machine.obs = bus
    machine.hierarchy.obs = bus
    machine.hmp.obs = bus
    if machine.bank_predictor is not None:
        machine.bank_predictor.obs = bus
    if machine.branch_predictor is not None:
        machine.branch_predictor.obs = bus
    cht = getattr(machine.scheme, "cht", None)
    if cht is not None:
        cht.obs = bus
    return bus


def observed_run(machine, trace, out_dir: str,
                 events: bool = True,
                 chrome_trace: bool = True,
                 name: Optional[str] = None) -> Tuple[object, RunManifest]:
    """Run ``trace`` on ``machine`` with full observability artifacts.

    Writes into ``out_dir``:

    * ``events.jsonl`` — the typed event log (when ``events``);
    * ``trace.json``   — Chrome ``trace_event`` export for Perfetto
      (when ``chrome_trace``);
    * ``metrics.json`` — the flat metrics-registry snapshot;
    * ``manifest.json`` — config, seed, git revision, uops/sec and
      per-phase ``perf_counter`` timings.

    Returns ``(SimResult, RunManifest)``.
    """
    os.makedirs(out_dir, exist_ok=True)
    bus = instrument(machine)
    if events:
        bus.attach(JsonlSink(os.path.join(out_dir, "events.jsonl")))
    chrome: Optional[ChromeTraceSink] = None
    if chrome_trace:
        chrome = ChromeTraceSink()
        bus.attach(chrome)

    prof = PhaseProfiler()
    with prof.phase("simulate"):
        result = machine.run(trace)
    with prof.phase("export"):
        bus.close()
        if chrome is not None:
            chrome.write(os.path.join(out_dir, "trace.json"))
        registry = MetricsRegistry.from_machine(machine, result)
        metrics = registry.snapshot()
        registry.write_json(os.path.join(out_dir, "metrics.json"))

    manifest = RunManifest(
        name=name if name is not None else f"{trace.name}/{result.scheme}",
        config=_config_dict(machine.config),
        seed=getattr(trace, "seed", None),
        git_rev=git_revision(),
        n_uops=result.retired_uops,
        cycles=result.cycles,
        wall_seconds=prof.timings.get("simulate", 0.0),
        phases=prof.as_dict(),
        metrics=metrics,
        event_counts=dict(bus.counts),
        extra={"trace": trace.name, "scheme": result.scheme},
    )
    manifest.write(os.path.join(out_dir, "manifest.json"))
    return result, manifest


def _config_dict(config) -> dict:
    """Best-effort plain-dict view of a (nested) dataclass config."""
    import dataclasses
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    return {"repr": repr(config)}
