"""Per-request tracing: spans, stage marks, and trace export.

A :class:`Span` is minted when a request enters the system (at protocol
decode on the wire paths, at ``submit`` for in-process callers) and is
carried alongside the request through every stage of its life:

``decode → queue → batch → kernel|predict → reply``

Each stage is closed with :meth:`Span.mark`: the mark's timestamp ends
the named stage and starts the next one, so a finished span is a gap-
free timeline of where the request's microseconds went — queue sojourn
(``queue``) and service time (``kernel``/``predict``) fall out as two
different named stages instead of one conflated "latency" scalar.

:class:`RequestTracer` owns sampling (1 request in ``2**sample_shift``;
untraced requests cost one integer increment), a bounded ring of
finished spans, and per-stage :class:`~repro.common.stats.
StreamingHistogram` aggregates.  Finished spans export to the same
Chrome ``trace_event`` JSON the simulator uses (one request per
pseudo-thread track, one slice per stage — opens in Perfetto), to
JSONL, and to the ``python -m repro.obs trace`` summary view.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.stats import StreamingHistogram

#: The canonical stage order of a served request.  Spans may use a
#: subset (e.g. ``predict`` instead of ``kernel``); unknown stages are
#: carried through and summarised like any other.
STAGES = ("decode", "queue", "batch", "kernel", "predict", "reply")


def now_us() -> int:
    """Monotonic microseconds — the span clock."""
    return time.monotonic_ns() // 1000


class Span:
    """One traced request: a start time plus ordered stage marks."""

    __slots__ = ("trace_id", "session_id", "seq", "start_us", "marks",
                 "done")

    def __init__(self, trace_id: int, session_id: str = "",
                 seq: int = -1, start_us: Optional[int] = None) -> None:
        self.trace_id = trace_id
        self.session_id = session_id
        self.seq = seq
        self.start_us = start_us if start_us is not None else now_us()
        self.marks: List[Tuple[str, int]] = []
        self.done = False

    def mark(self, stage: str, t_us: Optional[int] = None) -> None:
        """Close ``stage`` now (it began at the previous mark)."""
        self.marks.append((stage, t_us if t_us is not None else now_us()))

    @property
    def end_us(self) -> int:
        return self.marks[-1][1] if self.marks else self.start_us

    @property
    def total_us(self) -> int:
        return self.end_us - self.start_us

    def stage_durations(self) -> List[Tuple[str, int, int]]:
        """``[(stage, start_us, duration_us)]`` — gap-free timeline."""
        out: List[Tuple[str, int, int]] = []
        prev = self.start_us
        for stage, t in self.marks:
            out.append((stage, prev, max(0, t - prev)))
            prev = t
        return out

    def as_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id, "session_id": self.session_id,
                "seq": self.seq, "start_us": self.start_us,
                "marks": [[stage, t] for stage, t in self.marks]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Span":
        span = cls(int(data.get("trace_id", -1)),
                   str(data.get("session_id", "")),
                   int(data.get("seq", -1)),
                   start_us=int(data.get("start_us", 0)))
        for stage, t in data.get("marks", []):
            span.marks.append((str(stage), int(t)))
        return span

    def __repr__(self) -> str:
        stages = "→".join(stage for stage, _ in self.marks)
        return (f"Span({self.trace_id}, {self.session_id!r}#{self.seq}, "
                f"{stages}, {self.total_us}us)")


class RequestTracer:
    """Mints, samples and aggregates request spans (module docstring).

    ``sample_shift`` selects 1 request in ``2**sample_shift`` for
    tracing (0 = every request).  Finished spans land in a bounded ring
    (``keep`` newest) and fold into per-stage streaming histograms, so
    memory stays O(keep + stages·buckets) at any request volume.
    """

    def __init__(self, sample_shift: int = 6, keep: int = 4096,
                 rel_error: float = StreamingHistogram.DEFAULT_REL_ERROR
                 ) -> None:
        if sample_shift < 0:
            raise ValueError("sample_shift must be >= 0")
        self.sample_shift = sample_shift
        self._mask = (1 << sample_shift) - 1
        self.rel_error = rel_error
        self._counter = 0
        self._next_id = 0
        self.started = 0
        self.finished = 0
        self.spans: "deque[Span]" = deque(maxlen=max(1, keep))
        self.stage_hists: Dict[str, StreamingHistogram] = {}
        self.total_hist = StreamingHistogram("total_us", rel_error)

    # -- span lifecycle -----------------------------------------------------

    def start(self, session_id: str = "", seq: int = -1,
              force: bool = False) -> Optional[Span]:
        """Mint a span for this request, or ``None`` when not sampled."""
        self._counter += 1
        if not force and (self._counter & self._mask):
            return None
        self._next_id += 1
        self.started += 1
        return Span(self._next_id, session_id, seq)

    def finish(self, span: Optional[Span]) -> None:
        """Fold a finished span into the ring and the aggregates.

        Idempotent per span, so error paths may finish defensively.
        """
        if span is None or span.done:
            return
        span.done = True
        self.finished += 1
        self.spans.append(span)
        for stage, _, duration in span.stage_durations():
            hist = self.stage_hists.get(stage)
            if hist is None:
                hist = self.stage_hists[stage] = StreamingHistogram(
                    stage, self.rel_error)
            hist.record(duration)
        self.total_hist.record(span.total_us)

    # -- aggregates ---------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{stage: {count, mean, min, max, p50, p90, p99, p999}}``
        in canonical stage order, plus ``total``."""
        out: Dict[str, Dict[str, float]] = {}
        known = [s for s in STAGES if s in self.stage_hists]
        extra = sorted(s for s in self.stage_hists if s not in STAGES)
        for stage in known + extra:
            out[stage] = self.stage_hists[stage].summary()
        if self.total_hist.count:
            out["total"] = self.total_hist.summary()
        return out

    def counters(self) -> Dict[str, int]:
        return {"requests_seen": self._counter, "spans_started":
                self.started, "spans_finished": self.finished,
                "sample_every": 1 << self.sample_shift}

    # -- export -------------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """One span object per line; returns the number written."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.as_dict()))
                handle.write("\n")
        return len(self.spans)

    def chrome_document(self) -> Dict[str, object]:
        return spans_to_chrome_trace(self.spans)

    def write_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_document(), handle)
            handle.write("\n")


# --------------------------------------------------------------------------
# Offline span processing (the ``repro.obs trace`` CLI view)
# --------------------------------------------------------------------------


def read_spans(path: str) -> List[Span]:
    """Load a spans JSONL written by :meth:`RequestTracer.write_jsonl`."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


#: Chrome trace pid reserved for request spans (the simulator pipeline
#: uses pid 1; keeping them distinct lets both land in one Perfetto UI).
SPAN_PID = 2


def spans_to_chrome_trace(spans: Iterable[Span],
                          n_lanes: int = 32) -> Dict[str, object]:
    """Chrome ``trace_event`` document: one slice per stage, requests
    spread over ``n_lanes`` pseudo-thread tracks."""
    spans = list(spans)
    origin = min((s.start_us for s in spans), default=0)
    events: List[Dict[str, object]] = [{
        "ph": "M", "pid": SPAN_PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro.serve requests"},
    }]
    for lane in range(min(n_lanes, max(1, len(spans)))):
        events.append({"ph": "M", "pid": SPAN_PID, "tid": lane,
                       "name": "thread_name",
                       "args": {"name": f"request lane {lane}"}})
    for span in spans:
        lane = span.trace_id % n_lanes
        for stage, start, duration in span.stage_durations():
            events.append({
                "ph": "X", "pid": SPAN_PID, "tid": lane,
                "name": stage, "cat": "request",
                "ts": start - origin, "dur": max(1, duration),
                "args": {"trace_id": span.trace_id,
                         "session": span.session_id, "seq": span.seq},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"time_unit": "1us"}}


def summarize_spans(spans: Iterable[Span],
                    rel_error: float = StreamingHistogram.DEFAULT_REL_ERROR
                    ) -> Dict[str, Dict[str, float]]:
    """Per-stage summary of an offline span collection."""
    tracer = RequestTracer(sample_shift=0, keep=1, rel_error=rel_error)
    for span in spans:
        tracer.finish(span)
    return tracer.summary()


def render_span_summary(summary: Mapping[str, Mapping[str, float]],
                        n_spans: int = 0) -> str:
    """Aligned text table of a :func:`summarize_spans` result."""
    if not summary:
        return "spans: (none recorded)"
    header = (f"{'stage':10s} {'count':>8s} {'mean_us':>10s} "
              f"{'p50_us':>10s} {'p90_us':>10s} {'p99_us':>10s} "
              f"{'p999_us':>10s}")
    lines = [f"spans: {n_spans} traced requests" if n_spans else "spans:",
             header, "-" * len(header)]
    for stage, stats in summary.items():
        lines.append(
            f"{stage:10s} {int(stats['count']):>8d} "
            f"{stats['mean']:>10.1f} {stats['p50']:>10.1f} "
            f"{stats['p90']:>10.1f} {stats['p99']:>10.1f} "
            f"{stats['p999']:>10.1f}")
    return "\n".join(lines)
