"""Wall-clock phase profiling for the simulator itself.

The paper's argument is about simulated cycles; this module is about
*our* cycles — where the Python process spends its wall-clock time
(trace generation, the machine loop, reporting).  Timings use
``time.perf_counter`` (monotonic, high resolution) and land in the run
manifest so the perf trajectory of the simulator is tracked run over
run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PhaseProfiler:
    """Accumulates named wall-clock phases.

    Usage::

        prof = PhaseProfiler()
        with prof.phase("build-trace"):
            trace = build_trace(...)
        with prof.phase("simulate"):
            result = machine.run(trace)
        prof.timings  # {"build-trace": 0.12, "simulate": 3.4}

    Re-entering a phase name accumulates into the same bucket.
    """

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}
        self._started = time.perf_counter()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Wall-clock seconds since the profiler was created."""
        return time.perf_counter() - self._started

    @property
    def accounted(self) -> float:
        """Seconds covered by named phases."""
        return sum(self.timings.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.timings)

    def __repr__(self) -> str:
        phases = ", ".join(f"{k}={v:.3f}s"
                           for k, v in self.timings.items())
        return f"PhaseProfiler({phases})"
