"""Event sinks and run artifacts.

Three ways out of the event bus:

* :class:`MemorySink` — an in-process buffer (tests, ad-hoc analysis);
* :class:`JsonlSink` — one JSON object per event, streamed to disk;
* :class:`ChromeTraceSink` — the Chrome ``trace_event`` format, so a
  run opens directly in ``chrome://tracing`` or https://ui.perfetto.dev
  (one simulated cycle is mapped to one microsecond).

Plus the :class:`RunManifest`: the machine-readable "what was this run"
artifact — configuration, seed, git revision, throughput, per-phase
wall-clock timings and the metrics snapshot.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Union

from repro.obs.events import Event, EventKind


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=cwd,
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


class MemorySink:
    """Buffers every event in a list; convenient for tests and notebooks."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Streams events to a JSON-lines log (one object per line)."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self.n_events = 0

    def on_event(self, event: Event) -> None:
        self._handle.write(json.dumps(event.as_dict()))
        self._handle.write("\n")
        self.n_events += 1

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load an event log written by :class:`JsonlSink`."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


#: Event kinds rendered as instants (arrows) rather than slices.
_INSTANT_KINDS = frozenset((
    EventKind.SQUASH, EventKind.COLLISION, EventKind.VIOLATION,
    EventKind.BANK_CONFLICT, EventKind.FORWARD, EventKind.MISS,
))


class ChromeTraceSink:
    """Builds a Chrome ``trace_event`` JSON document from the stream.

    Retired uops become duration ("X") slices spanning rename→retire,
    spread over ``n_lanes`` pseudo-threads so overlapping lifetimes stay
    readable; squashes, collisions, bank conflicts and misses become
    instant ("i") markers on the lane of the uop involved.
    """

    PID = 1

    def __init__(self, n_lanes: int = 16) -> None:
        self.n_lanes = max(1, n_lanes)
        self._events: List[Dict[str, object]] = []

    def _lane(self, seq: int) -> int:
        return (seq % self.n_lanes) if seq >= 0 else self.n_lanes

    def on_event(self, event: Event) -> None:
        lane = self._lane(event.seq)
        ts = max(0, event.cycle)
        if event.kind == EventKind.RETIRE:
            rename = int(event.fields.get("rename_cycle", ts))
            args = dict(event.fields)
            args["seq"] = event.seq
            args["pc"] = f"0x{event.pc:x}"
            self._events.append({
                "ph": "X", "pid": self.PID, "tid": lane,
                "name": str(event.fields.get("uclass", "uop")),
                "cat": "uop",
                "ts": rename, "dur": max(1, ts - rename),
                "args": args,
            })
        elif event.kind in _INSTANT_KINDS:
            self._events.append({
                "ph": "i", "pid": self.PID, "tid": lane,
                "name": event.kind, "cat": "speculation",
                "ts": ts, "s": "t" if event.seq >= 0 else "p",
                "args": {"seq": event.seq, **event.fields},
            })
        # RENAME/ISSUE are implicit in the retire slice; predictor and
        # MOB bookkeeping would only add noise to the timeline view.

    def document(self) -> Dict[str, object]:
        meta: List[Dict[str, object]] = [{
            "ph": "M", "pid": self.PID, "tid": 0, "name": "process_name",
            "args": {"name": "repro pipeline"},
        }]
        for lane in range(self.n_lanes):
            meta.append({
                "ph": "M", "pid": self.PID, "tid": lane,
                "name": "thread_name",
                "args": {"name": f"lane {lane}"},
            })
        return {"traceEvents": meta + self._events,
                "displayTimeUnit": "ms",
                "otherData": {"time_unit": "1 cycle = 1us"}}

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.document(), handle)
            handle.write("\n")

    def close(self) -> None:  # buffered sink; nothing to flush early
        pass


def events_to_chrome_trace(events, n_lanes: int = 16) -> Dict[str, object]:
    """Convert dict-form events (e.g. from :func:`read_jsonl`) to a
    Chrome trace document."""
    sink = ChromeTraceSink(n_lanes=n_lanes)
    for record in events:
        fields = {k: v for k, v in record.items()
                  if k not in ("kind", "cycle", "seq", "pc")}
        sink.on_event(Event(str(record["kind"]), int(record["cycle"]),
                            int(record.get("seq", -1)),
                            int(record.get("pc", 0)), fields))
    return sink.document()


@dataclass
class RunManifest:
    """The machine-readable record of one simulator run.

    ``metrics`` is a flat :class:`~repro.obs.registry.MetricsRegistry`
    snapshot; ``phases`` maps phase names to wall-clock seconds
    (``time.perf_counter`` deltas); ``event_counts`` mirrors the event
    bus counters so artifact consumers can cross-check the event log.
    """

    name: str
    config: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None
    git_rev: Optional[str] = None
    created: str = ""
    n_uops: int = 0
    cycles: int = 0
    wall_seconds: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    schema: int = 1

    def __post_init__(self) -> None:
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%S")

    @property
    def uops_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_uops / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "name": self.name,
            "created": self.created,
            "git_rev": self.git_rev,
            "seed": self.seed,
            "config": self.config,
            "n_uops": self.n_uops,
            "cycles": self.cycles,
            "wall_seconds": self.wall_seconds,
            "uops_per_sec": self.uops_per_sec,
            "phases": self.phases,
            "metrics": self.metrics,
            "event_counts": self.event_counts,
            "extra": self.extra,
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return cls(
            name=str(data.get("name", "?")),
            config=dict(data.get("config", {})),
            seed=data.get("seed"),
            git_rev=data.get("git_rev"),
            created=str(data.get("created", "")),
            n_uops=int(data.get("n_uops", 0)),
            cycles=int(data.get("cycles", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            phases=dict(data.get("phases", {})),
            metrics=dict(data.get("metrics", {})),
            event_counts=dict(data.get("event_counts", {})),
            extra=dict(data.get("extra", {})),
            schema=int(data.get("schema", 1)),
        )
