"""Run provenance: who/where/what produced a benchmark number.

A throughput figure is only comparable to another one when both carry
enough context to know they ran on the same code and class of machine.
:func:`collect_provenance` gathers that context once per run — git
revision, hostname, platform, interpreter and numpy versions, CPU
count — and every bench report (``BENCH_throughput.json``,
``BENCH_serve.json``) and every ``BENCH_history.jsonl`` row embeds it
verbatim, so the ``python -m repro.obs gate`` comparisons can refuse or
annotate cross-machine deltas instead of silently mixing them.
"""

from __future__ import annotations

import os
import platform
import socket
import sys
from typing import Dict, Optional

from repro.obs.sinks import git_revision


def numpy_version() -> Optional[str]:
    """The installed numpy version, or ``None`` without numpy."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy-free installs
        return None
    return str(numpy.__version__)


def collect_provenance(cwd: Optional[str] = None) -> Dict[str, object]:
    """A JSON-safe dict identifying this run's code and machine."""
    return {
        "git_rev": git_revision(cwd),
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": numpy_version(),
        "cpu_count": os.cpu_count(),
    }


def same_machine(a: Dict[str, object], b: Dict[str, object]) -> bool:
    """Whether two provenance dicts describe a comparable machine."""
    keys = ("hostname", "machine", "cpu_count")
    return all(a.get(k) == b.get(k) for k in keys)
