"""Text rendering for observability artifacts.

Shared by ``python -m repro.obs`` and the engine's report module: these
functions turn flat metrics snapshots, event counts and manifests into
aligned, grouped text sections.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.events import EventKind
from repro.obs.sinks import RunManifest

Number = float


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value and abs(value) < 0.01:
            return f"{value:.4g}"
        return f"{value:.3f}"
    return str(value)


def render_metrics(snapshot: Mapping[str, Number],
                   title: str = "metrics") -> str:
    """Render a flat snapshot grouped by top-level namespace."""
    if not snapshot:
        return f"{title}: (empty)"
    groups: Dict[str, List[Tuple[str, Number]]] = {}
    for path in sorted(snapshot):
        head, _, rest = path.partition(".")
        groups.setdefault(head, []).append((rest or head, snapshot[path]))
    width = max(len(name) for items in groups.values()
                for name, _ in items)
    lines = [f"{title}:"]
    for head in sorted(groups):
        lines.append(f"  [{head}]")
        for name, value in groups[head]:
            lines.append(f"    {name.ljust(width)}  {_fmt(value)}")
    return "\n".join(lines)


def render_event_counts(counts: Mapping[str, int]) -> str:
    """Render per-kind event counts in taxonomy order."""
    if not counts:
        return "events: (none recorded)"
    lines = ["events:"]
    known = [k for k in EventKind.ALL if k in counts]
    extra = sorted(k for k in counts if k not in EventKind.ALL)
    width = max(len(k) for k in known + extra)
    for kind in known + extra:
        lines.append(f"  {kind.ljust(width)}  {counts[kind]}")
    return "\n".join(lines)


def render_manifest(manifest: RunManifest,
                    metrics: bool = True) -> str:
    """Human summary of one run manifest."""
    lines = [f"=== run '{manifest.name}' ==="]
    lines.append(f"created {manifest.created}"
                 + (f"   git {manifest.git_rev[:12]}"
                    if manifest.git_rev else ""))
    if manifest.seed is not None:
        lines.append(f"seed {manifest.seed}")
    lines.append(f"uops {manifest.n_uops}   cycles {manifest.cycles}   "
                 f"wall {manifest.wall_seconds:.3f}s   "
                 f"throughput {manifest.uops_per_sec:,.0f} uops/sec")
    if manifest.phases:
        phases = "   ".join(f"{name} {secs:.3f}s"
                            for name, secs in manifest.phases.items())
        lines.append(f"phases: {phases}")
    if manifest.event_counts:
        lines.append("")
        lines.append(render_event_counts(manifest.event_counts))
    if metrics and manifest.metrics:
        lines.append("")
        lines.append(render_metrics(manifest.metrics))
    return "\n".join(lines)


def render_diff(before: Mapping[str, Number],
                after: Mapping[str, Number],
                label_a: str = "a", label_b: str = "b",
                max_rows: Optional[int] = None) -> str:
    """Tabulate the paths whose values differ between two snapshots."""
    from repro.obs.registry import MetricsRegistry
    changed = MetricsRegistry.diff(before, after)
    if not changed:
        return "(no metric differences)"
    rows = []
    for path, (a, b) in changed.items():
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            delta = _fmt(b - a)
        else:
            delta = "-"
        rows.append((path, "-" if a is None else _fmt(a),
                     "-" if b is None else _fmt(b), delta))
    clipped = 0
    if max_rows is not None and len(rows) > max_rows:
        clipped = len(rows) - max_rows
        rows = rows[:max_rows]
    headers = ("metric", label_a, label_b, "delta")
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if clipped:
        lines.append(f"... and {clipped} more")
    return "\n".join(lines)
