"""Perf regression gating over the bench artifacts.

``python -m repro.obs gate REPORT`` is the enforcement half of the
perf trajectory:

1. **extract** the gateable metrics from a bench report
   (``BENCH_serve.json`` or ``BENCH_throughput.json`` — recognised by
   shape, see :func:`extract_metrics`);
2. **append** one row — metrics + full provenance (git SHA, hostname,
   python/numpy versions, CPU count) — to ``BENCH_history.jsonl``, the
   append-only trajectory every future PR extends;
3. **compare** against a committed baseline file with configurable
   relative tolerances and exit nonzero on any regression, which is
   what lets CI (the ``perf-gate`` job) and local runs refuse a change
   that quietly halves throughput.

Metric direction is inferred from the name: throughput-like metrics
(``*_rps``, ``*uops_per_sec``) regress by going *down*; latency-like
metrics (``*_us`` quantiles) regress by going *up*.  A baseline is just
``{"metrics": {name: value}, "tolerance": 0.5}`` — regenerate it with
``--update-baseline`` after an intentional perf change.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.obs.provenance import collect_provenance, same_machine

HISTORY_SCHEMA = 1
BASELINE_SCHEMA = 1

#: Default relative tolerance: generous, sized for smoke-length runs
#: whose numbers are noisy, but below 0.5 so a halved throughput (a
#: 2x regression) always fails; tighten per-baseline for long benches.
DEFAULT_TOLERANCE = 0.4


def metric_higher_is_better(name: str) -> bool:
    """Gate direction by metric name (module docstring).

    Latency quantiles regress *up*; so do the fleet's loss/error
    counters, whose baseline is zero — with a zero baseline the
    lower-is-better rule makes *any* lost request a violation, which
    is exactly the chaos guarantee the gate exists to hold.
    """
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith("_us") or leaf.startswith(("p50", "p90", "p99")):
        return False
    if leaf in ("lost", "errors", "abort_mismatch"):
        return False
    return True


# --------------------------------------------------------------------------
# Metric extraction from the two bench report shapes
# --------------------------------------------------------------------------


def extract_metrics(report: Mapping[str, object]) -> Dict[str, float]:
    """Flat gateable metrics from a bench report.

    * ``repro.serve`` reports → ``serve.<side>.throughput_rps`` plus
      the per-side ``service_us.p50`` when present; schema-3 reports
      with a ``fleet`` section additionally yield
      ``fleet.speedup_vs_single_process``,
      ``fleet.aggregate_steps_rps``, ``fleet.capacity_rps`` and, per
      scenario, ``fleet.<scenario>.{achieved_rps,lost,errors}`` and
      ``fleet.<scenario>.latency_us.p99``; schema-4 reports with a
      ``hottrace`` section yield ``hottrace.{speedup,hit_rate,
      abort_mismatch}`` plus the same leaves per profile;
    * throughput reports → ``schemes.<name>.uops_per_sec``,
      ``engine.<scheme>.{reference,vectorized}_uops_per_sec`` (the
      whole-machine replay backends, docs/engine.md) and
      ``fastpath.<sweep>.{reference,vectorized}_uops_per_sec``.
    """
    out: Dict[str, float] = {}
    if report.get("bench") == "repro.serve":
        for side, data in dict(report.get("sides", {})).items():
            rps = data.get("throughput_rps")
            if isinstance(rps, (int, float)):
                out[f"serve.{side}.throughput_rps"] = float(rps)
            service = data.get("service_us")
            if isinstance(service, Mapping):
                p50 = service.get("p50")
                if isinstance(p50, (int, float)):
                    out[f"serve.{side}.service_us.p50"] = float(p50)
        fleet = report.get("fleet")
        if isinstance(fleet, Mapping):
            out.update(_extract_fleet_metrics(fleet))
        hottrace = report.get("hottrace")
        if isinstance(hottrace, Mapping):
            out.update(_extract_hottrace_metrics(hottrace))
        return out
    if report.get("benchmark") == "throughput":
        for scheme, data in dict(report.get("schemes", {})).items():
            ups = data.get("uops_per_sec")
            if isinstance(ups, (int, float)):
                out[f"schemes.{scheme}.uops_per_sec"] = float(ups)
        for section in ("engine", "fastpath"):
            table = report.get(section)
            if not isinstance(table, Mapping):
                continue
            for sweep, data in table.items():
                if not isinstance(data, Mapping):
                    continue
                for key in ("reference_uops_per_sec",
                            "vectorized_uops_per_sec"):
                    value = data.get(key)
                    if isinstance(value, (int, float)):
                        out[f"{section}.{sweep}.{key}"] = float(value)
        return out
    raise ValueError(
        "unrecognised bench report: expected a repro.serve report "
        "(bench='repro.serve') or a throughput report "
        "(benchmark='throughput')")


def _extract_fleet_metrics(fleet: Mapping[str, object]) -> Dict[str, float]:
    """Gateable metrics from a schema-3 ``fleet`` bench section.

    The headline is the acceptance comparison (speedup vs the
    single-process scalar service, in steps/s); each scenario
    contributes its throughput, its tail latency and its loss/error
    counters — the latter gate at a zero baseline, so a single lost
    request under chaos fails the gate.
    """
    out: Dict[str, float] = {}
    for key, name in (("speedup_vs_single_process",
                       "fleet.speedup_vs_single_process"),
                      ("aggregate_steps_rps", "fleet.aggregate_steps_rps"),
                      ("fleet_capacity_rps", "fleet.capacity_rps")):
        value = fleet.get(key)
        if isinstance(value, (int, float)):
            out[name] = float(value)
    for scenario, data in dict(fleet.get("scenarios", {})).items():
        if not isinstance(data, Mapping):
            continue
        for leaf in ("achieved_rps", "lost", "errors"):
            value = data.get(leaf)
            if isinstance(value, (int, float)):
                out[f"fleet.{scenario}.{leaf}"] = float(value)
        latency = data.get("latency_us")
        if isinstance(latency, Mapping):
            p99 = latency.get("p99")
            if isinstance(p99, (int, float)):
                out[f"fleet.{scenario}.latency_us.p99"] = float(p99)
    return out


def _extract_hottrace_metrics(hottrace: Mapping[str, object]
                              ) -> Dict[str, float]:
    """Gateable metrics from a schema-4 ``hottrace`` bench section.

    ``hottrace.speedup`` and ``hottrace.hit_rate`` hold the steady
    Zipf profile's floor (hot-trace replay must keep paying for
    itself); ``hottrace.abort_mismatch`` gates lower-is-better at a
    zero baseline — a single speculative commit that diverged from its
    shadow re-execution fails the gate outright."""
    out: Dict[str, float] = {}
    for key in ("speedup", "hit_rate", "abort_mismatch"):
        value = hottrace.get(key)
        if isinstance(value, (int, float)):
            out[f"hottrace.{key}"] = float(value)
    for profile, data in dict(hottrace.get("profiles", {})).items():
        if not isinstance(data, Mapping):
            continue
        for leaf in ("speedup", "hit_rate", "abort_mismatch"):
            value = data.get(leaf)
            if isinstance(value, (int, float)):
                out[f"hottrace.{profile}.{leaf}"] = float(value)
    return out


def report_kind(report: Mapping[str, object]) -> str:
    """``"serve"`` for a ``BENCH_serve.json`` report, else ``"throughput"``."""
    return ("serve" if report.get("bench") == "repro.serve"
            else "throughput")


# --------------------------------------------------------------------------
# History
# --------------------------------------------------------------------------


def history_row(report: Mapping[str, object],
                source: str = "") -> Dict[str, object]:
    """One append-only trajectory row for ``BENCH_history.jsonl``.

    Provenance embedded in the report (both bench CLIs record it) is
    reused so the row describes the machine that *ran* the bench, not
    the one running the gate.
    """
    provenance = report.get("provenance")
    if not isinstance(provenance, Mapping):
        provenance = collect_provenance()
    return {
        "schema": HISTORY_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "kind": report_kind(report),
        "source": source,
        "provenance": dict(provenance),
        "metrics": extract_metrics(report),
    }


def append_history(path: str, row: Mapping[str, object]) -> None:
    """Append one JSON row to the history file (created on first use)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True))
        handle.write("\n")


def read_history(path: str) -> List[Dict[str, object]]:
    """All history rows, oldest first; ``[]`` when the file is absent."""
    rows: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return rows
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# --------------------------------------------------------------------------
# Baseline comparison
# --------------------------------------------------------------------------


@dataclass
class Violation:
    """One gated metric outside its tolerance."""

    metric: str
    baseline: float
    measured: float
    tolerance: float
    higher_is_better: bool

    @property
    def change_frac(self) -> float:
        if self.baseline == 0:
            return 0.0
        return self.measured / self.baseline - 1.0

    def __str__(self) -> str:
        direction = "down" if self.higher_is_better else "up"
        return (f"{self.metric}: {self.measured:,.1f} vs baseline "
                f"{self.baseline:,.1f} ({self.change_frac:+.1%}, "
                f"allowed {direction} to {self.tolerance:.0%})")


def make_baseline(report: Mapping[str, object],
                  tolerance: float = DEFAULT_TOLERANCE
                  ) -> Dict[str, object]:
    """Snapshot *report*'s gateable metrics as a committable baseline."""
    return {
        "schema": BASELINE_SCHEMA,
        "kind": report_kind(report),
        "tolerance": tolerance,
        "provenance": (dict(report["provenance"])
                       if isinstance(report.get("provenance"), Mapping)
                       else collect_provenance()),
        "metrics": extract_metrics(report),
    }


def load_baseline(path: str) -> Dict[str, object]:
    """Load a committed baseline written by :func:`write_baseline`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_baseline(path: str, baseline: Mapping[str, object]) -> None:
    """Write *baseline* as sorted, indented JSON (stable for review)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare(metrics: Mapping[str, float],
            baseline: Mapping[str, object],
            tolerance: Optional[float] = None) -> List[Violation]:
    """Gate ``metrics`` against ``baseline``; returns the violations.

    ``tolerance`` overrides the baseline's own; per-metric overrides in
    ``baseline["per_metric"]`` win over both.  Metrics present on only
    one side are ignored — a new bench sweep must not fail the gate
    until its baseline row exists.
    """
    default_tol = (tolerance if tolerance is not None
                   else float(baseline.get("tolerance",
                                           DEFAULT_TOLERANCE)))
    per_metric = dict(baseline.get("per_metric", {}))
    violations: List[Violation] = []
    for name, base_value in dict(baseline.get("metrics", {})).items():
        measured = metrics.get(name)
        if measured is None or not isinstance(base_value, (int, float)):
            continue
        tol = float(per_metric.get(name, default_tol))
        higher = metric_higher_is_better(name)
        if higher:
            failed = measured < float(base_value) * (1.0 - tol)
        else:
            failed = measured > float(base_value) * (1.0 + tol)
        if failed:
            violations.append(Violation(name, float(base_value),
                                        float(measured), tol, higher))
    return violations


def machine_note(report_provenance: Optional[Mapping[str, object]],
                 baseline: Mapping[str, object]) -> Optional[str]:
    """A warning when the baseline came from a different machine."""
    base_prov = baseline.get("provenance")
    if (isinstance(report_provenance, Mapping)
            and isinstance(base_prov, Mapping)
            and not same_machine(dict(report_provenance),
                                 dict(base_prov))):
        return (f"note: baseline from "
                f"{base_prov.get('hostname')!r} "
                f"({base_prov.get('cpu_count')} cpus), this run from "
                f"{report_provenance.get('hostname')!r} "
                f"({report_provenance.get('cpu_count')} cpus) — "
                "cross-machine comparison, treat deltas with care")
    return None
