"""Observability CLI: ``python -m repro.obs <command>``.

Commands::

    summarize PATH          # render a run artifact (dir / manifest /
                            # metrics.json / events.jsonl)
    diff A B                # compare the metrics of two run artifacts
    export EVENTS [-o OUT]  # events.jsonl -> Chrome trace_event JSON
    run [--trace gcc ...]   # run one observed simulation end to end
    trace SPANS [-o OUT]    # per-stage summary of a spans.jsonl
                            # (+ optional Chrome trace export)
    gate REPORT             # append to BENCH_history.jsonl and gate
                            # against a committed perf baseline

Examples::

    python -m repro.obs run --trace gcc --scheme inclusive --out obs_run
    python -m repro.obs summarize obs_run
    python -m repro.obs diff obs_base obs_run
    python -m repro.obs export obs_run/events.jsonl -o perfetto.json
    python -m repro.obs trace serve_spans.jsonl -o spans.trace.json
    python -m repro.obs gate BENCH_serve.json \
        --baseline benchmarks/baselines/serve_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Tuple

from repro.obs.render import render_diff, render_event_counts, render_manifest
from repro.obs.sinks import RunManifest, events_to_chrome_trace, read_jsonl


def _resolve(path: str) -> Tuple[str, str]:
    """Classify an artifact path -> ("manifest"|"metrics"|"events", file)."""
    if os.path.isdir(path):
        for name, kind in (("manifest.json", "manifest"),
                           ("metrics.json", "metrics"),
                           ("events.jsonl", "events")):
            candidate = os.path.join(path, name)
            if os.path.exists(candidate):
                return kind, candidate
        raise FileNotFoundError(
            f"{path!r} contains no manifest.json/metrics.json/events.jsonl")
    if path.endswith(".jsonl"):
        return "events", path
    with open(path, "r", encoding="utf-8") as handle:
        head = json.load(handle)
    if isinstance(head, dict) and "metrics" in head and "name" in head:
        return "manifest", path
    return "metrics", path


def _load_metrics(path: str) -> Tuple[str, Dict[str, float]]:
    kind, file = _resolve(path)
    if kind == "manifest":
        manifest = RunManifest.load(file)
        return manifest.name, dict(manifest.metrics)
    if kind == "metrics":
        with open(file, "r", encoding="utf-8") as handle:
            return os.path.basename(path), dict(json.load(handle))
    raise ValueError(f"{path!r} holds events, not metrics; "
                     "point diff at a manifest or metrics.json")


def cmd_summarize(args: argparse.Namespace) -> int:
    kind, file = _resolve(args.path)
    if kind == "manifest":
        print(render_manifest(RunManifest.load(file),
                              metrics=not args.no_metrics))
    elif kind == "metrics":
        from repro.obs.render import render_metrics
        with open(file, "r", encoding="utf-8") as handle:
            print(render_metrics(json.load(handle)))
    else:
        events = read_jsonl(file)
        counts: Dict[str, int] = {}
        for record in events:
            key = str(record.get("kind", "?"))
            counts[key] = counts.get(key, 0) + 1
        print(f"{file}: {len(events)} events")
        print(render_event_counts(counts))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    name_a, metrics_a = _load_metrics(args.a)
    name_b, metrics_b = _load_metrics(args.b)
    print(f"diff: {args.a} ({name_a})  vs  {args.b} ({name_b})")
    print(render_diff(metrics_a, metrics_b, label_a="a", label_b="b",
                      max_rows=args.max_rows))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    events = read_jsonl(args.events)
    document = events_to_chrome_trace(events, n_lanes=args.lanes)
    out = args.out
    if out is None:
        base, _ = os.path.splitext(args.events)
        out = base + ".trace.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    print(f"wrote {len(document['traceEvents'])} trace events to {out} "
          "(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import (
        read_spans,
        render_span_summary,
        spans_to_chrome_trace,
        summarize_spans,
    )
    spans = read_spans(args.spans)
    print(render_span_summary(summarize_spans(spans), n_spans=len(spans)))
    if spans:
        slowest = sorted(spans, key=lambda s: s.total_us,
                         reverse=True)[:args.slowest]
        print()
        print(f"slowest {len(slowest)} requests:")
        for span in slowest:
            stages = "  ".join(f"{stage}={duration}us" for stage, _,
                               duration in span.stage_durations())
            print(f"  #{span.trace_id} {span.session_id}"
                  f"[{span.seq}] total={span.total_us}us  {stages}")
    if args.out is not None:
        document = spans_to_chrome_trace(spans)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
        print(f"\nwrote {len(document['traceEvents'])} trace events to "
              f"{args.out} (open in chrome://tracing or ui.perfetto.dev)")
    return 0


def cmd_gate(args: argparse.Namespace) -> int:
    from repro.obs import gate as gatemod

    with open(args.report, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    try:
        metrics = gatemod.extract_metrics(report)
    except ValueError as exc:
        print(f"gate: {exc}", file=sys.stderr)
        return 2
    if not metrics:
        print(f"gate: no gateable metrics in {args.report}",
              file=sys.stderr)
        return 2

    if not args.no_append:
        row = gatemod.history_row(report, source=args.report)
        gatemod.append_history(args.history, row)
        print(f"gate: appended {len(metrics)} metrics to {args.history} "
              f"(git {str(row['provenance'].get('git_rev'))[:12]}, "
              f"host {row['provenance'].get('hostname')})")

    if args.baseline is None:
        print("gate: no --baseline given; history-only mode, passing")
        return 0
    if args.update_baseline or not os.path.exists(args.baseline):
        baseline = gatemod.make_baseline(
            report, tolerance=(args.tolerance if args.tolerance
                               is not None
                               else gatemod.DEFAULT_TOLERANCE))
        gatemod.write_baseline(args.baseline, baseline)
        print(f"gate: wrote baseline {args.baseline} "
              f"({len(metrics)} metrics); passing")
        return 0

    baseline = gatemod.load_baseline(args.baseline)
    note = gatemod.machine_note(report.get("provenance"), baseline)
    if note:
        print(note, file=sys.stderr)
    violations = gatemod.compare(metrics, baseline,
                                 tolerance=args.tolerance)
    gated = [name for name in baseline.get("metrics", {})
             if name in metrics]
    if violations:
        print(f"gate: FAIL — {len(violations)} of {len(gated)} gated "
              f"metrics regressed beyond tolerance:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"gate: ok — {len(gated)} gated metrics within tolerance "
          f"of {args.baseline}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    # Imported lazily: artifact inspection must not pay engine imports.
    from repro.engine.machine import Machine
    from repro.engine.ordering import make_scheme
    from repro.obs import observed_run
    from repro.trace.builder import build_trace
    from repro.trace.workloads import profile_for, trace_seed

    trace = build_trace(profile_for(args.trace), n_uops=args.uops,
                        seed=(args.seed if args.seed is not None
                              else trace_seed(args.trace)),
                        name=args.trace)
    machine = Machine(scheme=make_scheme(args.scheme))
    result, manifest = observed_run(machine, trace, args.out,
                                    chrome_trace=not args.no_chrome)
    print(render_manifest(manifest, metrics=False))
    print()
    print(f"artifacts in {args.out}/: manifest.json, metrics.json, "
          "events.jsonl" + ("" if args.no_chrome else ", trace.json"))
    return 0 if result.cycles else 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect, compare and export simulator run artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="render one run artifact")
    p.add_argument("path", help="artifact dir, manifest.json, "
                                "metrics.json or events.jsonl")
    p.add_argument("--no-metrics", action="store_true",
                   help="omit the full metrics section")
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser("diff", help="compare two run artifacts")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--max-rows", type=int, default=60)
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("export",
                       help="convert events.jsonl to a Chrome trace")
    p.add_argument("events", help="path to an events.jsonl log")
    p.add_argument("-o", "--out", default=None,
                   help="output file (default: <events>.trace.json)")
    p.add_argument("--lanes", type=int, default=16,
                   help="pseudo-threads to spread uops over (default 16)")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("trace",
                       help="summarize a request-span JSONL log")
    p.add_argument("spans", help="spans.jsonl written by a RequestTracer")
    p.add_argument("-o", "--out", default=None,
                   help="also export a Chrome trace_event JSON here")
    p.add_argument("--slowest", type=int, default=5,
                   help="how many slowest requests to detail (default 5)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("gate",
                       help="append bench history and gate vs baseline")
    p.add_argument("report", help="BENCH_serve.json or "
                                  "BENCH_throughput.json")
    p.add_argument("--history", default="BENCH_history.jsonl",
                   help="append-only trajectory file "
                        "(default BENCH_history.jsonl)")
    p.add_argument("--baseline", default=None,
                   help="committed baseline JSON; created when missing")
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative tolerance override (e.g. 0.5 = 50%%)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this report and pass")
    p.add_argument("--no-append", action="store_true",
                   help="gate only; do not touch the history file")
    p.set_defaults(func=cmd_gate)

    p = sub.add_parser("run", help="run one observed simulation")
    p.add_argument("--trace", default="gcc",
                   help="workload name (default gcc)")
    p.add_argument("--scheme", default="traditional")
    p.add_argument("--uops", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--out", default="obs_run")
    p.add_argument("--no-chrome", action="store_true")
    p.set_defaults(func=cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
