"""Periodic time-series export of metrics snapshots.

:class:`TimeSeriesExporter` samples a metrics *source* — any zero-arg
callable returning a flat ``{dotted.path: number}`` mapping, e.g.
``MetricsRegistry(...).snapshot`` or
``PredictionService.metrics_snapshot`` — every ``interval_ms`` from a
daemon thread (so it works identically under asyncio services, sync
benches and tests) into:

* a **JSONL stream**: one ``{"t": unix_seconds, "mt":
  monotonic_seconds, "metrics": {...}}`` row per sample, append-only —
  the substrate ``python -m repro.serve top`` tails and offline
  analysis replays.  ``t`` is wall time, *informational only* (humans,
  Prometheus timestamps); ``mt`` is ``time.monotonic()`` and is what
  rate computations must difference, since wall time can step
  backwards under NTP correction;
* a **Prometheus text file**, atomically rewritten per sample so a
  node-exporter-style textfile collector (or a human with ``cat``)
  always sees one consistent scrape.

Both outputs are optional; :meth:`sample_once` is the synchronous core
the thread loops on, usable directly when a caller wants to control
cadence itself.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional

Number = float
MetricsSource = Callable[[], Mapping[str, Number]]

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(path: str, prefix: str = "repro") -> str:
    """Sanitize a dotted metric path into a Prometheus metric name."""
    name = _PROM_BAD.sub("_", f"{prefix}_{path}" if prefix else path)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def to_prometheus(snapshot: Mapping[str, Number],
                  prefix: str = "repro",
                  timestamp_ms: Optional[int] = None) -> str:
    """Render a flat snapshot in the Prometheus text exposition format.

    Everything is exported as an untyped gauge — the snapshot is a
    point-in-time view; rate() belongs to the scraper.
    """
    lines: List[str] = []
    for path in sorted(snapshot):
        value = snapshot[path]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        name = prometheus_name(path, prefix)
        lines.append(f"# TYPE {name} gauge")
        stamp = f" {timestamp_ms}" if timestamp_ms is not None else ""
        lines.append(f"{name} {float(value):g}{stamp}")
    return "\n".join(lines) + ("\n" if lines else "")


def read_timeseries(path: str) -> List[Dict[str, object]]:
    """Load the JSONL rows written by :class:`TimeSeriesExporter`."""
    rows: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


class TimeSeriesExporter:
    """Background sampler: source → JSONL rows + Prometheus textfile."""

    def __init__(self, source: MetricsSource, interval_ms: int = 500,
                 jsonl_path: Optional[str] = None,
                 prom_path: Optional[str] = None,
                 prefix: str = "repro") -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.source = source
        self.interval_ms = interval_ms
        self.jsonl_path = jsonl_path
        self.prom_path = prom_path
        self.prefix = prefix
        self.n_samples = 0
        #: Samples the background loop skipped because the source
        #: raised (e.g. a service mid-shutdown); the loop keeps going.
        self.n_errors = 0
        self._jsonl = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- one sample ---------------------------------------------------------

    def sample_once(self) -> Dict[str, object]:
        """Take one sample, write it to the configured outputs, and
        return the row."""
        # Wall time is informational (display, Prometheus stamps);
        # consumers compute rates from the monotonic stamp, which a
        # stepping system clock cannot run backwards.
        t = time.time()
        mt = time.monotonic()
        metrics = dict(self.source())
        row = {"t": t, "mt": mt, "metrics": metrics}
        if self.jsonl_path is not None:
            if self._jsonl is None:
                self._jsonl = open(self.jsonl_path, "a", encoding="utf-8")
            self._jsonl.write(json.dumps(row))
            self._jsonl.write("\n")
            self._jsonl.flush()
        if self.prom_path is not None:
            text = to_prometheus(metrics, prefix=self.prefix,
                                 timestamp_ms=int(t * 1000))
            tmp = self.prom_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, self.prom_path)
        self.n_samples += 1
        return row

    # -- the background loop ------------------------------------------------

    def start(self) -> "TimeSeriesExporter":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-obs-timeseries",
                                        daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        interval = self.interval_ms / 1000.0
        while not self._stop.wait(interval):
            try:
                self.sample_once()
            except Exception:
                # A transient source failure (service draining, file
                # contention) must not end the telemetry stream.
                self.n_errors += 1

    def stop(self, final_sample: bool = True) -> None:
        """Stop the loop; take one last sample so short runs are never
        empty, then close the JSONL handle."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_sample:
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - source already gone
                pass
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None

    def __enter__(self) -> "TimeSeriesExporter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
