"""A unified, namespaced metrics registry.

The simulator's measurements are scattered across ``StatGroup`` trees
(:mod:`repro.common.stats`), :class:`~repro.engine.results.SimResult`
fields, :class:`~repro.hitmiss.base.HitMissStats` and
:class:`~repro.bank.base.BankStats`.  The registry unifies them under
one dotted namespace (``run.cycles``, ``memory.l1d.hits``,
``run.hitmiss.accuracy``, ...) with four core operations:

* :meth:`MetricsRegistry.snapshot` — a flat ``{path: number}`` view;
* :meth:`MetricsRegistry.diff` — what changed between two snapshots;
* :meth:`MetricsRegistry.merge` — sum another registry's numeric leaves
  into this one (multi-trace aggregation);
* :meth:`MetricsRegistry.to_json` — machine-readable export for run
  artifacts.

Stat objects are *mounted*, not copied: a mounted ``StatGroup`` is read
at snapshot time, so live counters need no forwarding.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.stats import (
    Counter,
    Histogram,
    RatioStat,
    StatGroup,
    StreamingHistogram,
)

Number = float  # registry leaves are ints or floats; both are accepted


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _flatten_into(out: Dict[str, Number], prefix: str,
                  value: object) -> None:
    """Flatten a nested mapping / stat object into dotted numeric leaves.

    Histograms (mappings with integer keys, and ``Histogram`` objects)
    are summarised to ``total``/``mean``/``p50``/``p90`` rather than
    dumped bin-by-bin — snapshots are for comparison, not archival; the
    raw bins stay available on the mounted object itself.
    """
    if isinstance(value, Counter):
        out[prefix] = value.value
        return
    if isinstance(value, RatioStat):
        out[prefix + ".num"] = value.num
        out[prefix + ".den"] = value.den
        out[prefix + ".ratio"] = value.ratio
        return
    if isinstance(value, Histogram):
        out[prefix + ".total"] = value.total
        out[prefix + ".mean"] = value.mean()
        out[prefix + ".p50"] = value.percentile(0.5)
        out[prefix + ".p90"] = value.percentile(0.9)
        return
    if isinstance(value, StreamingHistogram):
        for key, number in value.summary().items():
            out[f"{prefix}.{key}"] = number
        return
    if isinstance(value, StatGroup):
        _flatten_into(out, prefix, value.as_dict())
        return
    if isinstance(value, Mapping):
        if value and all(isinstance(k, int) for k in value):
            # Raw histogram bins (e.g. ``Histogram.items()`` as a dict).
            total = sum(value.values())
            out[prefix + ".total"] = total
            out[prefix + ".mean"] = (
                sum(k * v for k, v in value.items()) / total if total
                else 0.0)
            return
        for key, sub in value.items():
            _flatten_into(out, f"{prefix}.{key}" if prefix else str(key),
                          sub)
        return
    if _is_number(value):
        out[prefix] = value
    # Non-numeric leaves (strings, None) are metadata, not metrics.


class MetricsRegistry:
    """A namespaced tree of metrics with snapshot/diff/merge/export."""

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._values: Dict[str, Number] = {}
        self._mounts: List[Tuple[str, object]] = []

    # -- writing ------------------------------------------------------------

    def set(self, path: str, value: Number) -> None:
        """Set a scalar gauge at ``path``."""
        if not _is_number(value):
            raise TypeError(f"metric {path!r} must be numeric, "
                            f"got {type(value).__name__}")
        self._values[path] = value

    def inc(self, path: str, amount: Number = 1) -> None:
        """Increment a scalar counter at ``path``."""
        self._values[path] = self._values.get(path, 0) + amount

    def mount(self, path: str, source: object) -> None:
        """Graft a live stat source (``StatGroup``, stat object, or
        mapping) under ``path``; it is read lazily at snapshot time."""
        self._mounts.append((path, source))

    def ingest(self, path: str, mapping: Mapping) -> None:
        """Copy a nested mapping's numeric leaves under ``path`` now."""
        _flatten_into(self._values, path, dict(mapping))

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Number]:
        """Flat ``{dotted-path: number}`` view, sorted by path."""
        out = dict(self._values)
        for path, source in self._mounts:
            _flatten_into(out, path, source)
        return dict(sorted(out.items()))

    def get(self, path: str, default: Optional[Number] = None):
        return self.snapshot().get(path, default)

    def tree(self) -> Dict[str, object]:
        """Nested-dict view of the snapshot (for JSON export)."""
        root: Dict[str, object] = {}
        for path, value in self.snapshot().items():
            node = root
            parts = path.split(".")
            for part in parts[:-1]:
                nxt = node.setdefault(part, {})
                if not isinstance(nxt, dict):
                    # A leaf and a subtree share a name: nest the leaf.
                    nxt = node[part] = {"_value": nxt}
                node = nxt
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict):
                node[leaf]["_value"] = value
            else:
                node[leaf] = value
        return root

    # -- comparison / aggregation -------------------------------------------

    @staticmethod
    def diff(before: Mapping[str, Number],
             after: Mapping[str, Number]) -> Dict[str, Tuple[Optional[Number],
                                                             Optional[Number]]]:
        """Paths whose value differs between two snapshots.

        Returns ``{path: (before, after)}``; a path present on only one
        side reports ``None`` for the other.
        """
        out: Dict[str, Tuple[Optional[Number], Optional[Number]]] = {}
        for path in sorted(set(before) | set(after)):
            a, b = before.get(path), after.get(path)
            if a != b:
                out[path] = (a, b)
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Sum ``other``'s numeric leaves into this registry's values.

        Mounted :class:`StreamingHistogram` sources merge *losslessly*
        (bucket-by-bucket, not by summing quantile leaves): the merged
        histogram's quantiles keep the per-histogram relative-error
        bound, which summing ``p99`` columns would not.
        """
        merged_prefixes: List[str] = []
        for path, source in other._mounts:
            if not isinstance(source, StreamingHistogram):
                continue
            mine = self._streaming_mount(path)
            if mine is None:
                self.mount(path, source.copy())
            else:
                mine.merge(source)
            merged_prefixes.append(path + ".")
        for path, value in other.snapshot().items():
            if any(path.startswith(prefix) for prefix in merged_prefixes):
                continue
            self._values[path] = self._values.get(path, 0) + value

    def _streaming_mount(self, path: str) -> Optional[StreamingHistogram]:
        for mount_path, source in self._mounts:
            if mount_path == path and isinstance(source,
                                                 StreamingHistogram):
                return source
        return None

    # -- export -------------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    # -- adapters -----------------------------------------------------------

    @classmethod
    def from_result(cls, result, prefix: str = "run") -> "MetricsRegistry":
        """Build a registry over one ``SimResult``.

        Wires the result's counters, the Figure 1 load classes, the
        hit-miss taxonomy, stall breakdown and occupancy histograms into
        the namespace; derived ratios (IPC, accuracy, fractions) are
        included so reports and diffs need no recomputation.
        """
        reg = cls(name=prefix)
        p = prefix
        reg.set(f"{p}.cycles", result.cycles)
        reg.set(f"{p}.retired_uops", result.retired_uops)
        reg.set(f"{p}.retired_loads", result.retired_loads)
        reg.set(f"{p}.ipc", result.ipc)
        reg.set(f"{p}.collision_penalties", result.collision_penalties)
        reg.set(f"{p}.squashed_issues", result.squashed_issues)
        reg.set(f"{p}.forwarded_loads", result.forwarded_loads)
        reg.set(f"{p}.bank_conflicts", result.bank_conflicts)
        reg.set(f"{p}.branches", result.branches)
        reg.set(f"{p}.branch_mispredicts", result.branch_mispredicts)
        reg.set(f"{p}.branch_accuracy", result.branch_accuracy)
        reg.set(f"{p}.l1_miss_rate", result.l1_miss_rate)
        for cls_, count in result.load_classes.items():
            reg.set(f"{p}.loads.classes.{cls_.value}", count)
        reg.set(f"{p}.loads.frac_not_conflicting",
                result.frac_not_conflicting)
        reg.set(f"{p}.loads.frac_anc", result.frac_anc)
        reg.set(f"{p}.loads.frac_colliding",
                result.frac_actually_colliding)
        hm = result.hitmiss
        if hm.total:
            for cls_, count in hm.counts.items():
                reg.set(f"{p}.hitmiss.classes.{cls_.value}", count)
            reg.ingest(f"{p}.hitmiss", hm.as_dict())
        for cause, cycles in result.stall_breakdown.items():
            reg.set(f"{p}.stalls.{cause}", cycles)
        if result.window_occupancy.total:
            reg.mount(f"{p}.window_occupancy", result.window_occupancy)
        if result.issue_width_used.total:
            reg.mount(f"{p}.issue_width_used", result.issue_width_used)
        if result.timeline:
            from repro.engine.pipeview import summarize_timeline
            reg.ingest(f"{p}.timeline", summarize_timeline(result.timeline))
        return reg

    @classmethod
    def from_machine(cls, machine, result=None,
                     prefix: str = "run") -> "MetricsRegistry":
        """Registry over a machine (hierarchy stats, predictor budgets)
        plus, optionally, one of its results."""
        reg = (cls.from_result(result, prefix) if result is not None
               else cls(name=prefix))
        reg.mount("memory", machine.hierarchy.stats)
        for label, pred in (("hitmiss", machine.hmp),
                            ("bank", machine.bank_predictor),
                            ("branch", machine.branch_predictor)):
            if pred is None:
                continue
            try:
                reg.set(f"predictors.{label}.storage_bits",
                        pred.storage_bits)
            except NotImplementedError:
                pass
        cht = getattr(machine.scheme, "cht", None)
        if cht is not None:
            try:
                reg.set("predictors.cht.storage_bits", cht.storage_bits)
            except NotImplementedError:
                pass
        return reg
