"""Scaling bank prediction beyond two banks.

Section 2.3: "Scaling to more than two banks may either be done using a
non-binary predictor (such as an address predictor) or by extending
binary prediction.  Each bit of the bank ID can be independently
predicted and assigned a confidence rating.  If the confidence level of
a particular bit is low, the load will be sent to both banks."

:class:`BitwiseBankPredictor` implements the latter: one binary
predictor per bank-ID bit.  Its prediction is a *set* of candidate
banks — the cross product of the confident bits' values with both
values of every unconfident bit — which the sliced pipe duplicates
across.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.bank.base import BankPredictor, BankPrediction
from repro.common import bits
from repro.predictors.base import BinaryPredictor
from repro.predictors.local import LocalPredictor


class BitwiseBankPredictor(BankPredictor):
    """Independent per-bit prediction with confidence-gated expansion."""

    def __init__(self, n_banks: int = 4,
                 component_factory: Optional[
                     Callable[[], BinaryPredictor]] = None,
                 confidence_floor: float = 0.5) -> None:
        self.n_bits = bits.ilog2(n_banks)
        if self.n_bits < 1:
            raise ValueError("need at least two banks")
        self.n_banks = n_banks
        if component_factory is None:
            component_factory = lambda: LocalPredictor(n_entries=512,
                                                       history_bits=6)
        self._bit_predictors: List[BinaryPredictor] = [
            component_factory() for _ in range(self.n_bits)
        ]
        self.confidence_floor = confidence_floor

    def predict_banks(self, pc: int) -> List[int]:
        """All candidate banks (1 = a full prediction; n_banks = none).

        Unconfident bits expand the candidate set: the load is
        duplicated across every bank consistent with the confident bits.
        """
        candidates = [0]
        for bit, predictor in enumerate(self._bit_predictors):
            p = predictor.predict(pc)
            if p.confidence >= self.confidence_floor:
                candidates = [c | (int(p.outcome) << bit)
                              for c in candidates]
            else:
                candidates = ([c for c in candidates]
                              + [c | (1 << bit) for c in candidates])
        return sorted(candidates)

    def predict(self, pc: int) -> BankPrediction:
        """BankPredictor protocol: predict only when a single candidate
        survives; otherwise abstain (duplicate)."""
        candidates = self.predict_banks(pc)
        if len(candidates) == 1:
            return BankPrediction(bank=candidates[0], confidence=1.0)
        return BankPrediction(bank=None,
                              confidence=1.0 / len(candidates))

    def update(self, pc: int, bank: int,
               address: Optional[int] = None) -> None:
        if not 0 <= bank < self.n_banks:
            raise ValueError(f"bank {bank} out of range")
        for bit, predictor in enumerate(self._bit_predictors):
            predictor.update(pc, bool((bank >> bit) & 1))

    def reset(self) -> None:
        for predictor in self._bit_predictors:
            predictor.reset()

    @property
    def storage_bits(self) -> int:
        return sum(p.storage_bits for p in self._bit_predictors)

    def __repr__(self) -> str:
        return f"BitwiseBankPredictor(banks={self.n_banks})"


def expected_pipes_occupied(predictor: BitwiseBankPredictor,
                            pcs: Sequence[int]) -> float:
    """Average candidate-set size — the duplication cost measure."""
    if not pcs:
        return 0.0
    total = sum(len(predictor.predict_banks(pc)) for pc in pcs)
    return total / len(pcs)
