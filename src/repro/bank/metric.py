"""The section 4.3 analytic performance metric.

With each load taking one unit on a single-ported cache, a perfect
two-bank schedule halves the time per load (ideal gain 0.5).  For a real
predictor with prediction rate ``P``, correct:wrong ratio ``R`` and a
per-misprediction penalty, the paper derives::

    LoadExecutionTime = (1 - P) + P * (0.5 * R + Penalty) / (R + 1)
    GainPerLoad       = 1 - LoadExecutionTime
                      = P * (0.5 * R + 1 - Penalty) / (R + 1)
                      ~ P * (0.5 - Penalty / R)
    Metric            = GainPerLoad / 0.5
                      ~ P * (1 - 2 * Penalty / R)

Unpredicted loads execute at the single-ported rate (time 1); correctly
predicted loads pair up (time 0.5); mispredicted loads pay the penalty.
Figure 12 plots Metric against Penalty for each predictor; the
prediction rate is the metric at penalty 0 and the accuracy sets the
slope.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

IDEAL_GAIN = 0.5


def load_execution_time(prediction_rate: float, ratio: float,
                        penalty: float) -> float:
    """Average per-load time under the paper's exact expression."""
    _validate(prediction_rate, ratio)
    p = prediction_rate
    return (1.0 - p) + p * (0.5 * ratio + penalty) / (ratio + 1.0)


def gain_per_load(prediction_rate: float, ratio: float,
                  penalty: float) -> float:
    """GainPerLoad = 1 - LoadExecutionTime (exact form)."""
    return 1.0 - load_execution_time(prediction_rate, ratio, penalty)


def metric(prediction_rate: float, ratio: float, penalty: float,
           approximate: bool = False) -> float:
    """Fraction of the ideal dual-porting gain achieved.

    ``approximate=True`` uses the paper's simplified form
    ``P * (1 - 2*Penalty/R)``, valid when R >> 1.
    """
    _validate(prediction_rate, ratio)
    if approximate:
        return prediction_rate * (1.0 - 2.0 * penalty / ratio)
    return gain_per_load(prediction_rate, ratio, penalty) / IDEAL_GAIN


def metric_curve(prediction_rate: float, ratio: float,
                 penalties: Sequence[float],
                 approximate: bool = False) -> List[Tuple[float, float]]:
    """(penalty, metric) pairs for one predictor — one Figure 12 line."""
    return [(penalty, metric(prediction_rate, ratio, penalty, approximate))
            for penalty in penalties]


def ratio_from_accuracy(accuracy: float) -> float:
    """Convert an accuracy fraction into the paper's R ratio."""
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must be a probability")
    if accuracy == 1.0:
        return float("inf")
    return accuracy / (1.0 - accuracy)


def accuracy_from_ratio(ratio: float) -> float:
    """Inverse of :func:`ratio_from_accuracy`."""
    if ratio < 0:
        raise ValueError("ratio must be non-negative")
    if ratio == float("inf"):
        return 1.0
    return ratio / (1.0 + ratio)


def break_even_penalty(ratio: float) -> float:
    """Penalty at which the predictor stops paying (metric = 0).

    From the approximate form: ``Penalty* = R / 2``.  Above it, a
    misprediction costs more than pairing saves — choose a more accurate
    predictor (the section 4.3 design conclusion).
    """
    if ratio == float("inf"):
        return float("inf")
    return ratio / 2.0


def _validate(prediction_rate: float, ratio: float) -> None:
    if not 0.0 <= prediction_rate <= 1.0:
        raise ValueError("prediction_rate must be a probability")
    if ratio <= 0:
        raise ValueError("ratio must be positive")
