"""Sliced-pipeline duplication policy and a small pipe-level simulator.

Section 2.3: in the sliced design a load whose bank is mispredicted must
be flushed and re-executed.  To bound that cost, "when there is no
contention on the memory ports, or if the confidence level of the bank
prediction is low, the memory operation may be dispatched to all memory
pipelines" — wasting one cycle per extra pipe but never paying the flush.
Stores are never on the critical path and are always duplicated.

:class:`SlicedPipeSimulator` replays a load stream through this policy
and accounts cycles, giving an empirical counterpart to the analytic
metric of :mod:`repro.bank.metric`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro.bank.base import BankPredictor, BankPrediction, BankStats


@dataclass(frozen=True)
class DuplicationPolicy:
    """When to send a load to every pipe instead of trusting a prediction.

    Attributes
    ----------
    confidence_floor:
        Predictions below this confidence are treated as abstentions.
    duplicate_when_uncontended:
        If the current cycle has spare memory ports, duplicate rather
        than risk a flush.
    """

    confidence_floor: float = 0.0
    duplicate_when_uncontended: bool = True

    def should_duplicate(self, prediction: BankPrediction,
                         contended: bool) -> bool:
        if not prediction.predicted:
            return True
        if prediction.confidence < self.confidence_floor:
            return True
        if self.duplicate_when_uncontended and not contended:
            return True
        return False


@dataclass
class SlicedPipeResult:
    """Cycle accounting of one sliced-pipe replay."""

    loads: int = 0
    duplicated: int = 0
    predicted: int = 0
    mispredicted: int = 0
    cycles: float = 0.0
    single_ported_cycles: float = 0.0

    @property
    def speedup_vs_single_port(self) -> float:
        return (self.single_ported_cycles / self.cycles
                if self.cycles else 1.0)

    @property
    def metric(self) -> float:
        """Empirical fraction of the ideal 2x gain, comparable to Fig 12."""
        ideal = self.single_ported_cycles / 2.0
        saved = self.single_ported_cycles - self.cycles
        return saved / ideal if ideal else 0.0


class SlicedPipeSimulator:
    """Replay (pc, address) load pairs through a two-pipe sliced cache.

    The model abstracts one "slot" per pipe per step: two loads whose
    (predicted or duplicated) pipes don't clash execute together in one
    cycle; a duplicated load consumes both pipes; a mispredicted load
    pays ``mispredict_penalty`` extra cycles.
    """

    def __init__(self, predictor: BankPredictor,
                 policy: Optional[DuplicationPolicy] = None,
                 line_bytes: int = 64, mispredict_penalty: float = 3.0,
                 contention_rate: float = 0.6) -> None:
        self.predictor = predictor
        self.policy = policy if policy is not None else DuplicationPolicy()
        self.line_bytes = line_bytes
        self.mispredict_penalty = mispredict_penalty
        if not 0.0 <= contention_rate <= 1.0:
            raise ValueError("contention_rate must be a probability")
        self.contention_rate = contention_rate
        self.stats = BankStats()

    def _bank_of(self, address: int) -> int:
        return (address // self.line_bytes) % self.predictor.n_banks

    def run(self, accesses: Iterable[Tuple[int, int]]) -> SlicedPipeResult:
        """Replay ``(pc, address)`` pairs; returns cycle accounting.

        Contention is modelled statistically: a load finds a co-issuable
        partner with probability ``contention_rate`` (ports are only
        worth pairing when another load is ready — section 4.3 notes
        utilisation will not be 100 %).
        """
        result = SlicedPipeResult()
        pending_pair = 0  # deterministic alternation models contention
        period = (1.0 / self.contention_rate if self.contention_rate
                  else float("inf"))
        next_contended = period

        for pc, address in accesses:
            result.loads += 1
            result.single_ported_cycles += 1.0
            actual_bank = self._bank_of(address)
            contended = result.loads >= next_contended
            if contended:
                next_contended += period

            prediction = self.predictor.predict(pc)
            self.stats.record(prediction, actual_bank)
            if self.policy.should_duplicate(prediction, contended):
                # Occupies both pipes: single-ported speed, never flushes.
                result.duplicated += 1
                result.cycles += 1.0
            else:
                result.predicted += 1
                if prediction.bank == actual_bank:
                    # Correct steer: pairs with another ready load.
                    result.cycles += 0.5
                else:
                    result.mispredicted += 1
                    result.cycles += 0.5 + self.mispredict_penalty
            self.predictor.update(pc, actual_bank, address)
        return result
