"""Address-predictor-based bank prediction.

"An address predictor is obviously extremely well suited to be adapted
for bank prediction, since the bank is based solely on the load's
effective address (one bit is required to choose between two banks)"
(section 2.3).  The paper cites the correlated load-address predictor of
[Beke99]; here the stand-in is the stride/last-address predictor of
:mod:`repro.predictors.address` — same accuracy class on strided and
stack traffic, abstains on stride-unstable loads.
"""

from __future__ import annotations

from typing import Optional

from repro.bank.base import ABSTAIN, BankPredictor, BankPrediction
from repro.predictors.address import StrideAddressPredictor


class AddressBankPredictor(BankPredictor):
    """Derive the bank bit from a predicted effective address."""

    def __init__(self, n_banks: int = 2, line_bytes: int = 64,
                 address_predictor: Optional[StrideAddressPredictor] = None
                 ) -> None:
        if n_banks < 2 or n_banks & (n_banks - 1):
            raise ValueError("n_banks must be a power of two >= 2")
        self.n_banks = n_banks
        self.line_bytes = line_bytes
        self.inner = (address_predictor if address_predictor is not None
                      else StrideAddressPredictor())

    def _bank_of(self, address: int) -> int:
        return (address // self.line_bytes) % self.n_banks

    def predict(self, pc: int) -> BankPrediction:
        address = self.inner.predict(pc)
        if address is None:
            return ABSTAIN
        return BankPrediction(bank=self._bank_of(address),
                              confidence=self.inner.confidence(pc))

    def update(self, pc: int, bank: int,
               address: Optional[int] = None) -> None:
        if address is None:
            raise ValueError("address-based predictor trains on addresses")
        self.inner.update(pc, address)

    def reset(self) -> None:
        self.inner.reset()

    @property
    def storage_bits(self) -> int:
        return self.inner.storage_bits

    def __repr__(self) -> str:
        return f"AddressBankPredictor(banks={self.n_banks})"
