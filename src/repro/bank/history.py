"""Bank predictors built from binary predictors over bank history.

"With two banks, almost all binary predictors may be adapted to deliver
bank predictions" (section 2.3).  The binary outcome is "the access goes
to bank 1"; history registers record the bank stream instead of branch
outcomes.  The three configurations of Figure 12:

* Predictor A = local + gshare + gskew         (majority vote)
* Predictor B = local + gshare + bimodal       (majority vote)
* Predictor C = local + 2·gshare + gskew       (gshare weight 2)

with the component geometries the paper gives: local — 512 untagged
entries, 8-bit history (0.5 KB); gshare — 11-bit history (0.5 KB);
gskew — 17-bit history, three 1024-entry tables (0.75 KB).

Each configuration also carries an abstain threshold on the combined
confidence, which is how the paper trades prediction rate for accuracy
(predictors A/B predict ~50 % of loads at ~97-98 %; C predicts ~70 %).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bank.base import ABSTAIN, BankPredictor, BankPrediction
from repro.predictors.base import BinaryPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.chooser import WeightedChooser
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.local import LocalPredictor


class HistoryBankPredictor(BankPredictor):
    """Two-bank predictor: weighted vote of binary components.

    Parameters
    ----------
    components / weights:
        The binary predictors and their vote weights.
    abstain_threshold:
        Minimum absolute normalised vote sum required to predict; below
        it the predictor abstains (load duplicated to both pipes).
    """

    n_banks = 2

    def __init__(self, components: Sequence[BinaryPredictor],
                 weights: Optional[Sequence[float]] = None,
                 abstain_threshold: float = 0.0,
                 backend: Optional[str] = None) -> None:
        self._chooser = WeightedChooser(components, weights,
                                        threshold=0.0,
                                        confidence_scaled=True,
                                        backend=backend)
        self.abstain_threshold = abstain_threshold
        self.backend = self._chooser.backend

    def predict(self, pc: int) -> BankPrediction:
        p = self._chooser.predict(pc)
        if not p.valid or p.confidence < self.abstain_threshold:
            return ABSTAIN
        return BankPrediction(bank=1 if p.outcome else 0,
                              confidence=p.confidence)

    def update(self, pc: int, bank: int,
               address: Optional[int] = None) -> None:
        if bank not in (0, 1):
            raise ValueError("history bank predictors support two banks")
        self._chooser.update(pc, bank == 1)

    def reset(self) -> None:
        self._chooser.reset()

    @property
    def storage_bits(self) -> int:
        return self._chooser.storage_bits


def _local(backend: Optional[str] = None) -> LocalPredictor:
    return LocalPredictor(n_entries=512, history_bits=8, backend=backend)


def _gshare(backend: Optional[str] = None) -> GSharePredictor:
    return GSharePredictor(history_bits=11, backend=backend)


def _gskew(backend: Optional[str] = None) -> GSkewPredictor:
    return GSkewPredictor(history_bits=17, bank_entries=1024,
                          backend=backend)


def make_predictor_a(abstain_threshold: float = 0.9,
                     backend: Optional[str] = None) -> HistoryBankPredictor:
    """Predictor A = local + gshare + gskew (equal weights)."""
    return HistoryBankPredictor(
        [_local(backend), _gshare(backend), _gskew(backend)],
        abstain_threshold=abstain_threshold, backend=backend)


def make_predictor_b(abstain_threshold: float = 0.6,
                     backend: Optional[str] = None) -> HistoryBankPredictor:
    """Predictor B = local + gshare + bimodal (equal weights)."""
    return HistoryBankPredictor(
        [_local(backend), _gshare(backend),
         BimodalPredictor(n_entries=1024, backend=backend)],
        abstain_threshold=abstain_threshold, backend=backend)


def make_predictor_c(abstain_threshold: float = 0.65,
                     backend: Optional[str] = None) -> HistoryBankPredictor:
    """Predictor C = local + 2*gshare + gskew (gshare double weight).

    The heavier gshare weight plus a lower abstain threshold gives C the
    higher prediction rate (~70 %) Figure 12 reports, at accuracy
    comparable to A.
    """
    return HistoryBankPredictor(
        [_local(backend), _gshare(backend), _gskew(backend)],
        weights=[1.0, 2.0, 1.0],
        abstain_threshold=abstain_threshold, backend=backend)
