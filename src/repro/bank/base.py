"""Bank predictor protocol and evaluation accounting.

A bank predictor may *abstain* (no prediction) — section 2.3's policies
explicitly trade prediction rate against accuracy, and Figure 12's
metric is parameterised by both.  Abstention maps onto "duplicate the
load to all pipes" in the sliced design.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BankPrediction:
    """A predicted bank with a confidence level, or an abstention."""

    bank: Optional[int]
    confidence: float = 1.0

    @property
    def predicted(self) -> bool:
        return self.bank is not None


ABSTAIN = BankPrediction(bank=None, confidence=0.0)


class BankPredictor(abc.ABC):
    """Per-load bank prediction for an ``n_banks``-way banked cache."""

    n_banks: int = 2

    #: Optional :class:`repro.obs.events.EventBus`; when attached,
    #: :meth:`observed_update` reports every training step.
    obs = None

    @abc.abstractmethod
    def predict(self, pc: int) -> BankPrediction:
        """Predict the bank of the next access by the load at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, bank: int, address: Optional[int] = None) -> None:
        """Train with the resolved bank (and address, if available)."""

    def observed_update(self, pc: int, bank: int,
                        address: Optional[int] = None,
                        now: int = -1) -> None:
        """:meth:`update`, plus a ``predictor-update`` event when an
        event bus is attached (the engine's hook point)."""
        self.update(pc, bank, address)
        if self.obs is not None:
            self.obs.emit("predictor-update", now, pc=pc, family="bank",
                          predictor=type(self).__name__, outcome=bank)

    def reset(self) -> None:
        raise NotImplementedError

    @property
    def storage_bits(self) -> int:
        raise NotImplementedError


@dataclass
class BankStats:
    """Prediction-rate / accuracy accounting for Figure 12.

    ``prediction_rate`` is the fraction of loads for which a prediction
    was made (P in the metric); ``accuracy`` is the fraction of made
    predictions that were correct, and ``ratio`` is R = correct/wrong.
    """

    loads: int = 0
    predicted: int = 0
    correct: int = 0

    def record(self, prediction: BankPrediction, actual_bank: int) -> None:
        self.loads += 1
        if not prediction.predicted:
            return
        self.predicted += 1
        if prediction.bank == actual_bank:
            self.correct += 1

    @property
    def prediction_rate(self) -> float:
        return self.predicted / self.loads if self.loads else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.predicted if self.predicted else 0.0

    @property
    def wrong(self) -> int:
        return self.predicted - self.correct

    @property
    def ratio(self) -> float:
        """R = correct predictions / wrong predictions (section 4.3)."""
        if not self.wrong:
            return float("inf")
        return self.correct / self.wrong

    def merge(self, other: "BankStats") -> None:
        self.loads += other.loads
        self.predicted += other.predicted
        self.correct += other.correct

    def as_dict(self) -> dict:
        return {
            "loads": self.loads,
            "prediction_rate": self.prediction_rate,
            "accuracy": self.accuracy,
            "ratio": self.ratio if self.wrong else None,
        }
