"""Empirical comparison of the four Figure 4 memory pipelines.

:mod:`repro.memory.pipelines` models the organisations analytically;
this simulator replays an actual load stream through each organisation,
cycle by cycle, so the comparison reflects real bank sequences (and a
real bank predictor for the sliced pipe) rather than assumed rates:

* **truly multi-ported** — up to two loads per cycle, any banks;
* **conventional multi-banked** — two loads picked obliviously; a bank
  conflict re-executes the younger load; every load pays the crossbar
  latency;
* **dual-scheduled** — the second-level scheduler picks conflict-free
  pairs (oracle banks) at the cost of the same extra latency;
* **sliced** — loads are steered by a bank predictor at schedule time;
  a wrong steer flushes and re-executes; abstentions duplicate across
  both pipes (occupying them all).

Each load costs one pipe-occupancy slot; the figure of merit is the
total cycles to drain the stream plus the per-load average latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple
from collections import deque

from repro.bank.base import BankPredictor
from repro.memory.pipelines import (
    CONVENTIONAL_BANKED,
    DUAL_SCHEDULED,
    MemoryPipelineModel,
    PipelineKind,
    SLICED_BANKED,
    TRULY_MULTIPORTED,
)

N_PIPES = 2
LINE_BYTES = 64


@dataclass
class PipeSimResult:
    """Drain statistics of one organisation over one load stream."""

    kind: PipelineKind
    loads: int = 0
    cycles: int = 0
    conflicts: int = 0
    flushes: int = 0
    duplicated: int = 0
    total_latency: int = 0

    @property
    def loads_per_cycle(self) -> float:
        return self.loads / self.cycles if self.cycles else 0.0

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.loads if self.loads else 0.0


def _bank_of(address: int) -> int:
    return (address // LINE_BYTES) % N_PIPES


def simulate_pipeline(model: MemoryPipelineModel,
                      accesses: Sequence[Tuple[int, int]],
                      base_latency: int = 5,
                      predictor: Optional[BankPredictor] = None,
                      lookahead: int = 8) -> PipeSimResult:
    """Drain ``(pc, address)`` loads through one pipeline organisation.

    ``lookahead`` bounds how deep the sliced pipe's scheduler scans its
    window for a load predicted onto a free pipe.
    """
    if model.needs_bank_predictor and predictor is None:
        raise ValueError(f"{model.kind.value} requires a bank predictor")
    result = PipeSimResult(kind=model.kind)
    if model.kind == PipelineKind.SLICED_BANKED:
        assert predictor is not None
        # Predictions are made per dynamic load at fetch, in program
        # order, with training interleaved — so two instances of the
        # same static load get distinct (stride-advanced) predictions.
        annotated: List[Tuple[int, Optional[int]]] = []
        for pc, address in accesses:
            prediction = predictor.predict(pc)
            annotated.append((address,
                              prediction.bank if prediction.predicted
                              else None))
            predictor.update(pc, _bank_of(address), address)
        queue: Deque = deque(annotated)
    else:
        queue = deque(accesses)
    result.loads = len(queue)
    latency = model.load_latency(base_latency)

    while queue:
        result.cycles += 1
        if model.kind == PipelineKind.TRULY_MULTIPORTED:
            for _ in range(min(N_PIPES, len(queue))):
                queue.popleft()
                result.total_latency += latency

        elif model.kind == PipelineKind.DUAL_SCHEDULED:
            # The second-level scheduler picks a conflict-free pair from
            # the head of the queue (it knows real banks).
            first = queue.popleft()
            result.total_latency += latency
            partner_idx = None
            for idx, candidate in enumerate(queue):
                if _bank_of(candidate[1]) != _bank_of(first[1]):
                    partner_idx = idx
                    break
            if partner_idx is not None:
                del queue[partner_idx]
                result.total_latency += latency

        elif model.kind == PipelineKind.CONVENTIONAL_BANKED:
            first = queue.popleft()
            result.total_latency += latency
            if queue:
                second = queue[0]
                if _bank_of(second[1]) == _bank_of(first[1]):
                    # Bank conflict: the younger access re-executes.
                    result.conflicts += 1
                    result.total_latency += model.conflict_penalty
                else:
                    queue.popleft()
                    result.total_latency += latency

        else:  # SLICED
            taken_pipes: Dict[int, int] = {}
            issued: List[Tuple[int, Optional[int]]] = []
            # The scheduler looks a few entries into its window for
            # loads predicted onto free pipes (real schedulers are not
            # head-of-queue bound).
            scan = 0
            while (queue and len(taken_pipes) < N_PIPES
                   and scan < min(len(queue), lookahead)):
                address, steered = queue[scan]
                if steered is None:
                    if issued:
                        scan += 1
                        continue
                    # Duplicate across every pipe; it issues alone.
                    del queue[scan]
                    result.duplicated += 1
                    result.total_latency += latency
                    taken_pipes = {0: address, 1: address}
                    issued.append((address, None))
                    break
                if steered in taken_pipes:
                    scan += 1
                    continue
                del queue[scan]
                taken_pipes[steered] = address
                issued.append((address, steered))
            for address, steered in issued:
                if steered is None:
                    continue  # duplicated: always correct
                if steered == _bank_of(address):
                    result.total_latency += latency
                else:
                    # Wrong pipe: flush and re-execute.
                    result.flushes += 1
                    result.total_latency += (latency
                                             + model.mispredict_penalty)

    return result


def compare_pipelines(accesses: Sequence[Tuple[int, int]],
                      predictor_factory,
                      base_latency: int = 5) -> Dict[str, PipeSimResult]:
    """Run the same stream through all four organisations."""
    out: Dict[str, PipeSimResult] = {}
    for model in (TRULY_MULTIPORTED, CONVENTIONAL_BANKED, DUAL_SCHEDULED,
                  SLICED_BANKED):
        predictor = (predictor_factory()
                     if model.needs_bank_predictor else None)
        out[model.kind.value] = simulate_pipeline(
            model, list(accesses), base_latency, predictor)
    return out
