"""Cache-bank prediction (section 2.3).

Predicting which bank a load will access lets the scheduler avoid
co-issuing bank-conflicting loads (conventional multi-banked cache) or
steer loads into hard-wired single-bank pipes (the proposed *sliced*
pipeline).  With two banks, any binary predictor adapts to the task;
the strongest variant derives the bank bit from a predicted effective
address.

The predictors of Figure 12:

* Predictor A — local + gshare + gskew, majority vote;
* Predictor B — local + gshare + bimodal, majority vote;
* Predictor C — local + 2·gshare + gskew (gshare double-weighted);
* Addr — the address-predictor-based bank predictor.

:mod:`repro.bank.metric` implements the section 4.3 analytic metric
relating prediction rate, accuracy and misprediction penalty to the
fraction of ideal dual-ported gain achieved.
"""

from repro.bank.base import BankPredictor, BankPrediction, BankStats
from repro.bank.history import (
    HistoryBankPredictor,
    make_predictor_a,
    make_predictor_b,
    make_predictor_c,
)
from repro.bank.address_based import AddressBankPredictor
from repro.bank.multibit import BitwiseBankPredictor, expected_pipes_occupied
from repro.bank.policy import DuplicationPolicy, SlicedPipeSimulator
from repro.bank.pipeline_sim import PipeSimResult, compare_pipelines, simulate_pipeline
from repro.bank.metric import (
    gain_per_load,
    load_execution_time,
    metric,
    metric_curve,
)

__all__ = [
    "BankPredictor",
    "BankPrediction",
    "BankStats",
    "HistoryBankPredictor",
    "make_predictor_a",
    "make_predictor_b",
    "make_predictor_c",
    "AddressBankPredictor",
    "BitwiseBankPredictor",
    "expected_pipes_occupied",
    "DuplicationPolicy",
    "SlicedPipeSimulator",
    "PipeSimResult",
    "compare_pipelines",
    "simulate_pipeline",
    "gain_per_load",
    "load_execution_time",
    "metric",
    "metric_curve",
]
