"""ExecutionPolicy: one value object for "how should this run".

Three execution paths now coexist — the scalar reference loops, the
vectorized numpy kernels (PR 7), and the hot-trace memoized replay
(:mod:`repro.fastpath.hottrace`) — and before this module the choice
was scattered across ``backend=`` strings, the ``REPRO_BACKEND``
environment variable and the ``REPRO_CHECK_INVARIANTS`` oracle switch.
:class:`ExecutionPolicy` bundles the whole decision into a frozen,
JSON-round-trippable, picklable object accepted end-to-end::

    from repro.api import ExecutionPolicy

    policy = ExecutionPolicy(backend="vectorized", hottrace=True)
    machine.run(trace, policy=policy)                  # engine
    ServeConfig(policy=policy)                         # serve tier
    python -m repro.serve bench --policy '{"backend": "auto"}'

Legacy spellings keep working through deprecation shims (the PR 5
pattern): ``backend="vectorized"`` string arguments route through
:func:`legacy_policy` (which warns and names the replacement), and the
environment variables stay authoritative for the *deferred* modes —
``backend="auto"`` resolves through :func:`repro.fastpath.backend.
resolve_backend` (``set_default_backend()`` / ``REPRO_BACKEND`` /
``"reference"``) and ``check_invariants="auto"`` consults
``REPRO_CHECK_INVARIANTS`` — so a default-constructed policy is
behaviour-identical to the pre-policy code paths.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, replace
from typing import Dict, Optional

#: Accepted ``backend`` values.  ``"auto"`` defers to the process-wide
#: default of :mod:`repro.fastpath.backend` at use time.
POLICY_BACKENDS = ("reference", "vectorized", "auto")

#: Accepted ``check_invariants`` modes.  ``"auto"`` defers to the
#: ``REPRO_CHECK_INVARIANTS`` environment variable at use time.
INVARIANT_MODES = ("off", "on", "auto")


@dataclass(frozen=True)
class ExecutionPolicy:
    """Frozen bundle of execution choices.

    Attributes
    ----------
    backend:
        ``"reference"`` | ``"vectorized"`` | ``"auto"``.  ``"auto"``
        resolves through the process default (``set_default_backend``
        / ``REPRO_BACKEND`` / ``"reference"``); an explicit
        ``"vectorized"`` still degrades to reference when numpy is
        missing (the fast path is an accelerator, not a capability).
    hottrace:
        Enable the memoized-replay speculative fast path
        (:mod:`repro.fastpath.hottrace`) in the serve tier.
    hot_threshold:
        Occurrences of a (session, window) pattern before it is
        considered hot and captured.  Must be >= 1.
    min_trace_len:
        Shortest step window worth memoizing; shorter runs never enter
        the heat table (capture/guard bookkeeping would cost more than
        the replay saves).
    max_traces:
        Per-session cap on captured traces; oldest entries are evicted
        first.
    check_invariants:
        ``"on"`` arms the shadow oracles unconditionally, ``"off"``
        disarms them, ``"auto"`` defers to ``REPRO_CHECK_INVARIANTS``.
    """

    backend: str = "auto"
    hottrace: bool = False
    hot_threshold: int = 3
    min_trace_len: int = 8
    max_traces: int = 512
    check_invariants: str = "auto"

    def __post_init__(self) -> None:
        # Values arrive from JSON (--policy on the CLIs) as well as
        # code, so types are validated, not assumed: a str never passes
        # for a bool ('{"hottrace": "no"}' must not enable the fast
        # path via truthiness) and thresholds must be real ints so the
        # ordering comparisons below mean what they say.
        if self.backend not in POLICY_BACKENDS:
            raise ValueError(
                f"unknown policy backend {self.backend!r}; expected one "
                f"of {POLICY_BACKENDS}")
        if self.check_invariants not in INVARIANT_MODES:
            raise ValueError(
                f"unknown invariant mode {self.check_invariants!r}; "
                f"expected one of {INVARIANT_MODES}")
        if isinstance(self.hottrace, int) and not isinstance(self.hottrace,
                                                             bool):
            # 0/1 from hand-written JSON: coerce, anything else rejects.
            if self.hottrace not in (0, 1):
                raise ValueError(
                    f"hottrace must be a bool, got {self.hottrace!r}")
            object.__setattr__(self, "hottrace", bool(self.hottrace))
        elif not isinstance(self.hottrace, bool):
            raise ValueError(
                f"hottrace must be a bool, got {self.hottrace!r}")
        for name in ("hot_threshold", "min_trace_len", "max_traces"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"{name} must be an int, got {value!r}")
            if value < 1:
                raise ValueError(f"{name} must be >= 1")

    # -- resolution ------------------------------------------------------

    def resolved_backend(self) -> str:
        """The concrete backend name ("reference"/"vectorized") this
        policy selects *right now* (env + numpy availability applied)."""
        from repro.fastpath.backend import resolve_backend
        return resolve_backend(
            None if self.backend == "auto" else self.backend)

    def invariants_active(self) -> bool:
        """Whether the shadow oracles are armed under this policy."""
        if self.check_invariants == "on":
            return True
        if self.check_invariants == "off":
            return False
        import os
        return os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")

    def replace(self, **changes: object) -> "ExecutionPolicy":
        """A copy with fields replaced (frozen-dataclass convenience)."""
        return replace(self, **changes)

    # -- JSON round trip -------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {"backend": self.backend,
                "hottrace": self.hottrace,
                "hot_threshold": self.hot_threshold,
                "min_trace_len": self.min_trace_len,
                "max_traces": self.max_traces,
                "check_invariants": self.check_invariants}

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "ExecutionPolicy":
        known = {f: data[f] for f in
                 ("backend", "hottrace", "hot_threshold", "min_trace_len",
                  "max_traces", "check_invariants") if f in data}
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown ExecutionPolicy fields: {sorted(unknown)}")
        return cls(**known)  # type: ignore[arg-type]

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPolicy":
        return cls.from_json_dict(json.loads(text))

    # -- legacy mapping (pure half of the shim) --------------------------

    @classmethod
    def from_legacy(cls, backend: Optional[str] = None,
                    check_invariants: Optional[bool] = None,
                    ) -> "ExecutionPolicy":
        """Map the pre-policy spellings onto a policy, without warning.

        ``backend=None`` (the legacy "defer to env/process default")
        becomes ``"auto"``; an explicit legacy string is kept verbatim.
        ``check_invariants=None`` becomes ``"auto"`` (defer to
        ``REPRO_CHECK_INVARIANTS``).  Pickle/equality contract: the
        mapping is pure, so two calls with equal legacy inputs produce
        equal (and pickle-equal) policies.
        """
        return cls(
            backend="auto" if backend is None else backend,
            check_invariants=("auto" if check_invariants is None
                              else ("on" if check_invariants else "off")))


def legacy_policy(backend: Optional[str],
                  owner: str, stacklevel: int = 3) -> ExecutionPolicy:
    """The warning half of the ``backend=`` string shim.

    Called by policy-accepting entry points (``Machine.run``, the serve
    constructors, the bench CLIs) when a caller still passes the
    deprecated ``backend=`` string: warns once per call site, naming
    the replacement, and returns the equivalent policy.
    """
    warnings.warn(
        f"{owner}: backend= strings are deprecated; pass "
        f"policy=ExecutionPolicy(backend={backend!r}) instead",
        DeprecationWarning, stacklevel=stacklevel)
    return ExecutionPolicy.from_legacy(backend=backend)


def coerce_policy(policy: Optional[ExecutionPolicy],
                  backend: Optional[str], owner: str,
                  stacklevel: int = 4) -> ExecutionPolicy:
    """Resolve the (policy=, backend=) argument pair of a migrated API.

    Exactly one of the two may be given; a lone legacy ``backend``
    string routes through :func:`legacy_policy` (DeprecationWarning),
    and neither means the default policy (behaviour-identical to the
    pre-policy default resolution chain).
    """
    if policy is not None:
        if backend is not None:
            raise ValueError(
                f"{owner}: pass either policy= or the deprecated "
                f"backend=, not both")
        return policy
    if backend is not None:
        return legacy_policy(backend, owner, stacklevel=stacklevel)
    return ExecutionPolicy()
