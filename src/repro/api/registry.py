"""The predictor-kind catalogue behind :func:`repro.api.build_predictor`.

One :func:`~repro.api.spec.register` call per organisation, grouped by
family.  The canonical parameter vocabulary is deliberately small:

``size``
    Number of table entries (``bank_entries`` for gskew's banks,
    because that is the quantity the paper sweeps).
``bits``
    Saturating-counter width.
``history``
    History length in bits/loads.
``ways`` / ``tag_bits`` / ``track_distance`` / ``mode``
    Tagged-table geometry and CHT options.
``abstain``
    Bank-predictor confidence threshold below which the predictor
    abstains (load duplicated to both pipes).

Builders receive ``(params, backend)`` where ``params`` is the fully
normalised parameter dict and ``backend`` the
``reference``/``vectorized`` fast-path switch (``None`` = process
default); constructors without a fast path ignore it.
"""

from __future__ import annotations

from repro.api.spec import register
from repro.bank.address_based import AddressBankPredictor
from repro.bank.history import (
    make_predictor_a,
    make_predictor_b,
    make_predictor_c,
)
from repro.cht.base import AlwaysCollides, NeverCollides
from repro.cht.combined import CombinedCHT
from repro.cht.full import FullCHT
from repro.cht.storesets import StoreSetPredictor
from repro.cht.tagged import TaggedOnlyCHT
from repro.cht.tagless import TaglessCHT
from repro.hitmiss.binary import BinaryHMP
from repro.hitmiss.hybrid import HybridHMP
from repro.hitmiss.local import LocalHMP
from repro.hitmiss.oracle import AlwaysHitHMP, AlwaysMissHMP
from repro.predictors.base import AlwaysPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.local import LocalPredictor

# --------------------------------------------------------------------------
# Binary predictor substrate
# --------------------------------------------------------------------------


@register("binary.always", "binary", outcome=False)
def _build_binary_always(params, backend):
    return AlwaysPredictor(outcome=bool(params["outcome"]))


@register("binary.bimodal", "binary", size=2048, bits=2)
def _build_binary_bimodal(params, backend):
    return BimodalPredictor(n_entries=params["size"],
                            counter_bits=params["bits"], backend=backend)


@register("binary.local", "binary", size=2048, history=8, bits=2)
def _build_binary_local(params, backend):
    return LocalPredictor(n_entries=params["size"],
                          history_bits=params["history"],
                          counter_bits=params["bits"], backend=backend)


@register("binary.gshare", "binary", history=11, bits=2)
def _build_binary_gshare(params, backend):
    return GSharePredictor(history_bits=params["history"],
                           counter_bits=params["bits"], backend=backend)


@register("binary.gskew", "binary", history=20, size=1024, bits=2)
def _build_binary_gskew(params, backend):
    return GSkewPredictor(history_bits=params["history"],
                          bank_entries=params["size"],
                          counter_bits=params["bits"], backend=backend)


# --------------------------------------------------------------------------
# Collision history tables (memory-dependence prediction)
# --------------------------------------------------------------------------


@register("cht.never", "cht")
def _build_cht_never(params, backend):
    return NeverCollides()


@register("cht.always", "cht")
def _build_cht_always(params, backend):
    return AlwaysCollides()


@register("cht.tagless", "cht", size=4096, bits=1, track_distance=False)
def _build_cht_tagless(params, backend):
    return TaglessCHT(n_entries=params["size"], counter_bits=params["bits"],
                      track_distance=params["track_distance"],
                      backend=backend)


@register("cht.tagged", "cht", size=2048, ways=4, track_distance=False,
          tag_bits=16)
def _build_cht_tagged(params, backend):
    return TaggedOnlyCHT(n_entries=params["size"], ways=params["ways"],
                         track_distance=params["track_distance"],
                         tag_bits=params["tag_bits"])


@register("cht.full", "cht", size=2048, ways=4, bits=2,
          track_distance=False)
def _build_cht_full(params, backend):
    return FullCHT(n_entries=params["size"], ways=params["ways"],
                   counter_bits=params["bits"],
                   track_distance=params["track_distance"])


@register("cht.combined", "cht", tagged_size=2048, ways=4,
          tagless_size=4096, mode="safe", track_distance=False)
def _build_cht_combined(params, backend):
    return CombinedCHT(tagged_entries=params["tagged_size"],
                       ways=params["ways"],
                       tagless_entries=params["tagless_size"],
                       mode=params["mode"],
                       track_distance=params["track_distance"])


@register("cht.storesets", "storesets", ssit_size=4096, lfst_size=1024)
def _build_cht_storesets(params, backend):
    return StoreSetPredictor(ssit_entries=params["ssit_size"],
                             lfst_entries=params["lfst_size"])


# --------------------------------------------------------------------------
# Hit-miss predictors
# --------------------------------------------------------------------------


@register("hmp.always-hit", "hitmiss")
def _build_hmp_always_hit(params, backend):
    return AlwaysHitHMP()


@register("hmp.always-miss", "hitmiss")
def _build_hmp_always_miss(params, backend):
    return AlwaysMissHMP()


@register("hmp.local", "hitmiss", size=2048, history=8, bits=2)
def _build_hmp_local(params, backend):
    return LocalHMP(n_entries=params["size"], history_bits=params["history"],
                    counter_bits=params["bits"], backend=backend)


@register("hmp.gshare", "hitmiss", history=11, bits=2)
def _build_hmp_gshare(params, backend):
    return BinaryHMP(GSharePredictor(history_bits=params["history"],
                                     counter_bits=params["bits"],
                                     backend=backend))


@register("hmp.gskew", "hitmiss", history=20, size=1024, bits=2)
def _build_hmp_gskew(params, backend):
    return BinaryHMP(GSkewPredictor(history_bits=params["history"],
                                    bank_entries=params["size"],
                                    counter_bits=params["bits"],
                                    backend=backend))


@register("hmp.hybrid", "hitmiss", local_size=512, local_history=8,
          gshare_history=5, gskew_history=8, gskew_size=1024)
def _build_hmp_hybrid(params, backend):
    return HybridHMP(local_entries=params["local_size"],
                     local_history=params["local_history"],
                     gshare_history=params["gshare_history"],
                     gskew_history=params["gskew_history"],
                     gskew_entries=params["gskew_size"],
                     backend=backend)


# --------------------------------------------------------------------------
# Bank predictors
# --------------------------------------------------------------------------


@register("bank.a", "bank", abstain=0.9)
def _build_bank_a(params, backend):
    return make_predictor_a(abstain_threshold=params["abstain"],
                            backend=backend)


@register("bank.b", "bank", abstain=0.6)
def _build_bank_b(params, backend):
    return make_predictor_b(abstain_threshold=params["abstain"],
                            backend=backend)


@register("bank.c", "bank", abstain=0.65)
def _build_bank_c(params, backend):
    return make_predictor_c(abstain_threshold=params["abstain"],
                            backend=backend)


@register("bank.address", "bank", banks=2, line_bytes=64)
def _build_bank_address(params, backend):
    return AddressBankPredictor(n_banks=params["banks"],
                                line_bytes=params["line_bytes"])
