"""Deprecated construction shims: old per-class kwargs → specs.

Before :mod:`repro.api`, call sites constructed predictors through each
class's own keyword vocabulary (``TaglessCHT(n_entries=...,
counter_bits=...)``, ``make_predictor_a(abstain_threshold=...)``, …).
The shims here keep that vocabulary importable — one factory per legacy
constructor, accepting exactly the old keywords — while funnelling
every construction through :func:`repro.api.build_predictor` and
emitting a :class:`DeprecationWarning` naming the replacement spec.

The mapping is table-driven (:data:`LEGACY_KINDS`) so the equivalence
is testable: for every shim, ``tests/api/test_shims.py`` asserts
``shim(**old_kwargs).spec == legacy_spec(name, old_kwargs)`` and that
the warning fires.  :func:`legacy_spec` is the pure (non-warning) half,
mirrored by the migration table in ``docs/api.md``.

In-repo code must not call these — CI runs the migrated harnesses with
``-W error::DeprecationWarning`` so a regression onto a shim fails the
build.
"""

from __future__ import annotations

import warnings
from typing import Dict, Mapping, Optional, Tuple

from repro.api.spec import PredictorSpec, build_predictor, spec_for

#: legacy constructor name -> (spec kind, old kwarg -> spec param).
LEGACY_KINDS: Dict[str, Tuple[str, Dict[str, str]]] = {
    "AlwaysPredictor": ("binary.always", {"outcome": "outcome"}),
    "BimodalPredictor": ("binary.bimodal",
                         {"n_entries": "size", "counter_bits": "bits"}),
    "LocalPredictor": ("binary.local",
                       {"n_entries": "size", "history_bits": "history",
                        "counter_bits": "bits"}),
    "GSharePredictor": ("binary.gshare",
                        {"history_bits": "history", "counter_bits": "bits"}),
    "GSkewPredictor": ("binary.gskew",
                       {"history_bits": "history", "bank_entries": "size",
                        "counter_bits": "bits"}),
    "TaglessCHT": ("cht.tagless",
                   {"n_entries": "size", "counter_bits": "bits",
                    "track_distance": "track_distance"}),
    "TaggedOnlyCHT": ("cht.tagged",
                      {"n_entries": "size", "ways": "ways",
                       "track_distance": "track_distance",
                       "tag_bits": "tag_bits"}),
    "FullCHT": ("cht.full",
                {"n_entries": "size", "ways": "ways",
                 "counter_bits": "bits",
                 "track_distance": "track_distance"}),
    "CombinedCHT": ("cht.combined",
                    {"tagged_entries": "tagged_size", "ways": "ways",
                     "tagless_entries": "tagless_size", "mode": "mode",
                     "track_distance": "track_distance"}),
    "StoreSetPredictor": ("cht.storesets",
                          {"ssit_entries": "ssit_size",
                           "lfst_entries": "lfst_size"}),
    "LocalHMP": ("hmp.local",
                 {"n_entries": "size", "history_bits": "history",
                  "counter_bits": "bits"}),
    "HybridHMP": ("hmp.hybrid",
                  {"local_entries": "local_size",
                   "local_history": "local_history",
                   "gshare_history": "gshare_history",
                   "gskew_history": "gskew_history",
                   "gskew_entries": "gskew_size"}),
    "make_predictor_a": ("bank.a", {"abstain_threshold": "abstain"}),
    "make_predictor_b": ("bank.b", {"abstain_threshold": "abstain"}),
    "make_predictor_c": ("bank.c", {"abstain_threshold": "abstain"}),
    "AddressBankPredictor": ("bank.address",
                             {"n_banks": "banks",
                              "line_bytes": "line_bytes"}),
}


def legacy_spec(name: str, kwargs: Mapping[str, object]) -> PredictorSpec:
    """The spec equivalent of ``name(**kwargs)`` — pure, no warning."""
    try:
        kind, kwarg_map = LEGACY_KINDS[name]
    except KeyError:
        known = ", ".join(sorted(LEGACY_KINDS))
        raise KeyError(f"no legacy mapping for {name!r}; known: {known}"
                       ) from None
    params = {}
    for old_name, value in kwargs.items():
        if old_name not in kwarg_map:
            raise TypeError(f"{name}() got an unexpected keyword argument "
                            f"{old_name!r}")
        params[kwarg_map[old_name]] = value
    return spec_for(kind, **params)


def _shimmed(name: str, backend: Optional[str] = None, **kwargs: object):
    spec = legacy_spec(name, kwargs)
    warnings.warn(
        f"repro.api.shims.{_SHIM_NAMES[name]}() is deprecated; construct "
        f"through repro.api instead: build_predictor(spec_for("
        f"{spec.kind!r}, ...))",
        DeprecationWarning, stacklevel=3)
    return build_predictor(spec, backend=backend)


#: legacy constructor name -> the shim function name exported here.
_SHIM_NAMES = {
    "AlwaysPredictor": "always_predictor",
    "BimodalPredictor": "bimodal_predictor",
    "LocalPredictor": "local_predictor",
    "GSharePredictor": "gshare_predictor",
    "GSkewPredictor": "gskew_predictor",
    "TaglessCHT": "tagless_cht",
    "TaggedOnlyCHT": "tagged_only_cht",
    "FullCHT": "full_cht",
    "CombinedCHT": "combined_cht",
    "StoreSetPredictor": "store_set_predictor",
    "LocalHMP": "local_hmp",
    "HybridHMP": "hybrid_hmp",
    "make_predictor_a": "bank_predictor_a",
    "make_predictor_b": "bank_predictor_b",
    "make_predictor_c": "bank_predictor_c",
    "AddressBankPredictor": "address_bank_predictor",
}


def _make_shim(legacy_name: str):
    def shim(backend: Optional[str] = None, **kwargs: object):
        return _shimmed(legacy_name, backend=backend, **kwargs)

    shim.__name__ = _SHIM_NAMES[legacy_name]
    shim.__qualname__ = shim.__name__
    shim.__doc__ = (f"Deprecated: ``{legacy_name}(**old_kwargs)`` by way of "
                    f"the spec API (kind ``{LEGACY_KINDS[legacy_name][0]}``).")
    shim.legacy_name = legacy_name
    return shim


always_predictor = _make_shim("AlwaysPredictor")
bimodal_predictor = _make_shim("BimodalPredictor")
local_predictor = _make_shim("LocalPredictor")
gshare_predictor = _make_shim("GSharePredictor")
gskew_predictor = _make_shim("GSkewPredictor")
tagless_cht = _make_shim("TaglessCHT")
tagged_only_cht = _make_shim("TaggedOnlyCHT")
full_cht = _make_shim("FullCHT")
combined_cht = _make_shim("CombinedCHT")
store_set_predictor = _make_shim("StoreSetPredictor")
local_hmp = _make_shim("LocalHMP")
hybrid_hmp = _make_shim("HybridHMP")
bank_predictor_a = _make_shim("make_predictor_a")
bank_predictor_b = _make_shim("make_predictor_b")
bank_predictor_c = _make_shim("make_predictor_c")
address_bank_predictor = _make_shim("AddressBankPredictor")

#: Every shim function, keyed by legacy constructor name (test surface).
SHIMS = {name: globals()[shim_name]
         for name, shim_name in _SHIM_NAMES.items()}
