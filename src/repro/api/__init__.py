"""Unified predictor construction: specs, registry, protocol adapters.

The one construction path every consumer shares::

    from repro.api import spec_for, build_predictor

    spec = spec_for("hmp.hybrid", gshare_history=11, gskew_history=20)
    hmp = build_predictor(spec, backend="vectorized")
    assert hmp.spec == spec                      # round-trips
    again = spec.from_json(spec.to_json())       # JSON-stable
    key = spec.cache_key()                       # SHA-256, version-scoped

* :mod:`repro.api.spec` — :class:`PredictorSpec` and the registry core;
* :mod:`repro.api.policy` — :class:`ExecutionPolicy`, the frozen
  backend / hot-trace / invariant-mode bundle accepted by
  ``Machine.run``, the serve tier and the bench CLIs;
* :mod:`repro.api.registry` — the kind catalogue (importing this
  package registers every kind);
* :mod:`repro.api.adapters` — family APIs projected onto the
  :class:`~repro.common.types.LoadPredictor` protocol;
* :mod:`repro.api.shims` — deprecated per-class-kwargs factories for
  out-of-tree callers (in-repo code is warning-clean by CI decree).
"""

from repro.api.policy import (
    ExecutionPolicy,
    INVARIANT_MODES,
    POLICY_BACKENDS,
    coerce_policy,
    legacy_policy,
)
from repro.api.spec import (
    PredictorSpec,
    RegisteredKind,
    SERVABLE_FAMILIES,
    UnknownKindError,
    build_predictor,
    kind_info,
    register,
    registered_kinds,
    spec_for,
)
from repro.api import registry as _registry  # noqa: F401 - populates kinds
from repro.api.adapters import (
    BankLoadPredictor,
    CollisionLoadPredictor,
    HitMissLoadPredictor,
    as_load_predictor,
)

__all__ = [
    "ExecutionPolicy",
    "INVARIANT_MODES",
    "POLICY_BACKENDS",
    "coerce_policy",
    "legacy_policy",
    "PredictorSpec",
    "RegisteredKind",
    "SERVABLE_FAMILIES",
    "UnknownKindError",
    "build_predictor",
    "kind_info",
    "register",
    "registered_kinds",
    "spec_for",
    "BankLoadPredictor",
    "CollisionLoadPredictor",
    "HitMissLoadPredictor",
    "as_load_predictor",
]
