"""Family-specific predictors as :class:`~repro.common.types.LoadPredictor`.

:class:`~repro.predictors.base.BinaryPredictor` already satisfies the
protocol verbatim.  The CHT, hit-miss and bank families speak richer
native dialects (``lookup``/``train``, ``predict_hit``,
``BankPrediction``); the wrappers here project each onto the protocol's
binary (pc → outcome) shape:

========== ============================ ==========================
family     ``predict(pc)`` outcome      ``update(pc, outcome)``
========== ============================ ==========================
cht        load will collide            resolved collision
hitmiss    load will *miss* L1          resolved miss
bank (2)   access goes to bank 1        resolved bank == 1
========== ============================ ==========================

:func:`as_load_predictor` picks the right wrapper (or returns the
object unchanged when it already conforms).
"""

from __future__ import annotations

from repro.bank.base import BankPredictor
from repro.cht.base import CollisionPredictor
from repro.common.types import LoadPredictor
from repro.hitmiss.base import HitMissPredictor
from repro.predictors.base import NO_PREDICTION, Prediction


class CollisionLoadPredictor:
    """A :class:`CollisionPredictor` through the protocol lens."""

    def __init__(self, inner: CollisionPredictor) -> None:
        self.inner = inner

    def predict(self, pc: int) -> Prediction:
        p = self.inner.lookup(pc)
        return Prediction(outcome=p.colliding)

    def update(self, pc: int, outcome: bool) -> None:
        self.inner.train(pc, outcome)

    def __repr__(self) -> str:
        return f"CollisionLoadPredictor({self.inner!r})"


class HitMissLoadPredictor:
    """A :class:`HitMissPredictor` through the protocol lens.

    The protocol outcome is the *miss* event (the rare, interesting
    one), matching the internal convention of :mod:`repro.hitmiss`.
    """

    def __init__(self, inner: HitMissPredictor) -> None:
        self.inner = inner

    def predict(self, pc: int) -> Prediction:
        return Prediction(outcome=not self.inner.predict_hit(pc))

    def update(self, pc: int, outcome: bool) -> None:
        self.inner.update(pc, not outcome)

    def __repr__(self) -> str:
        return f"HitMissLoadPredictor({self.inner!r})"


class BankLoadPredictor:
    """A two-bank :class:`BankPredictor` through the protocol lens.

    An abstention maps to :data:`~repro.predictors.base.NO_PREDICTION`
    (invalid, zero confidence), mirroring the chooser convention.
    """

    def __init__(self, inner: BankPredictor) -> None:
        if inner.n_banks != 2:
            raise ValueError("the binary protocol covers two-bank "
                             f"predictors; got n_banks={inner.n_banks}")
        self.inner = inner

    def predict(self, pc: int) -> Prediction:
        p = self.inner.predict(pc)
        if not p.predicted:
            return NO_PREDICTION
        return Prediction(outcome=p.bank == 1, confidence=p.confidence)

    def update(self, pc: int, outcome: bool) -> None:
        self.inner.update(pc, 1 if outcome else 0)

    def __repr__(self) -> str:
        return f"BankLoadPredictor({self.inner!r})"


def as_load_predictor(obj: object) -> LoadPredictor:
    """Project any predictor-family object onto the protocol.

    Objects that already conform (every ``BinaryPredictor``, or a
    previously wrapped adapter) pass through unchanged.
    """
    if isinstance(obj, CollisionPredictor):
        return CollisionLoadPredictor(obj)
    if isinstance(obj, HitMissPredictor):
        return HitMissLoadPredictor(obj)
    if isinstance(obj, BankPredictor):
        return BankLoadPredictor(obj)
    if isinstance(obj, LoadPredictor):
        return obj
    raise TypeError(f"{type(obj).__name__} does not map onto LoadPredictor")
