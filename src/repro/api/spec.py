"""Typed predictor specifications — the unified construction API.

Every predictor family in the repository (CHT collision predictors,
hit-miss predictors, bank predictors, and the binary-predictor
substrate they share) historically grew its own constructor vocabulary:
``n_entries`` here, ``bank_entries`` there, ``local_entries`` /
``gshare_history`` on the hybrids.  A :class:`PredictorSpec` replaces
that zoo with one value type — a *kind* string naming the registered
organisation plus a flat mapping of canonical parameters
(``size`` / ``bits`` / ``history`` / ``ways`` …) — that is

* **JSON-stable**: :meth:`PredictorSpec.to_json` /
  :meth:`PredictorSpec.from_json` round-trip exactly, with key order
  normalised, so specs can travel over the :mod:`repro.serve` wire
  protocol and live inside run manifests;
* **cache-key-stable**: :meth:`PredictorSpec.cache_key` reuses the
  SHA-256 key-material rules of :mod:`repro.parallel.cache` (schema +
  package version prepended, dataclasses carried with their qualified
  type name), so a spec can address cached results and service
  snapshots;
* **normalised**: construction through :func:`spec_for` merges the
  registered defaults, so two spellings of the same configuration
  compare — and hash — equal.

Builders register themselves through :func:`register` (see
:mod:`repro.api.registry` for the catalogue); :func:`build_predictor`
instantiates a spec and stamps the built object with its spec
(``predictor.spec``) so anything constructed through this API can be
re-serialised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

#: Parameter values are restricted to JSON scalars so that every spec
#: is trivially serialisable and hashable.
ParamValue = object  # bool | int | float | str | None
_SCALARS = (bool, int, float, str, type(None))


class UnknownKindError(KeyError):
    """Raised for a kind string with no registered builder."""

    def __init__(self, kind: str) -> None:
        known = ", ".join(sorted(_REGISTRY))
        super().__init__(f"unknown predictor kind {kind!r}; "
                         f"registered kinds: {known}")
        self.kind = kind


@dataclass(frozen=True)
class RegisteredKind:
    """One entry of the construction registry."""

    kind: str
    family: str  #: "binary" | "cht" | "hitmiss" | "bank" | "storesets"
    defaults: Tuple[Tuple[str, ParamValue], ...]
    builder: Callable[..., object] = field(compare=False)

    @property
    def defaults_dict(self) -> Dict[str, ParamValue]:
        return dict(self.defaults)


_REGISTRY: Dict[str, RegisteredKind] = {}

#: Families with a serving adapter in :mod:`repro.serve` (storesets has
#: an event-driven API that does not reduce to predict/update).
SERVABLE_FAMILIES = ("binary", "cht", "hitmiss", "bank")


def register(kind: str, family: str,
             **defaults: ParamValue) -> Callable[[Callable], Callable]:
    """Class decorator registering a builder under ``kind``.

    ``defaults`` double as the parameter schema: :func:`spec_for`
    rejects parameter names outside it, and normalisation merges the
    default values in.
    """
    for name, value in defaults.items():
        if not isinstance(value, _SCALARS):
            raise TypeError(f"default {name}={value!r} is not a JSON scalar")

    def _decorate(builder: Callable) -> Callable:
        if kind in _REGISTRY:
            raise ValueError(f"predictor kind {kind!r} already registered")
        _REGISTRY[kind] = RegisteredKind(
            kind=kind, family=family,
            defaults=tuple(sorted(defaults.items())), builder=builder)
        return builder

    return _decorate


def registered_kinds() -> Tuple[str, ...]:
    """Every registered kind string, sorted."""
    return tuple(sorted(_REGISTRY))


def kind_info(kind: str) -> RegisteredKind:
    """The registry entry for ``kind`` (raises :class:`UnknownKindError`)."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise UnknownKindError(kind) from None


@dataclass(frozen=True)
class PredictorSpec:
    """A complete, normalised description of one predictor instance.

    Use :func:`spec_for` rather than the raw constructor: it validates
    parameter names and merges registered defaults so equal
    configurations produce equal specs.
    """

    kind: str
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        for name, value in self.params:
            if not isinstance(value, _SCALARS):
                raise TypeError(
                    f"spec parameter {name}={value!r} is not a JSON scalar")

    # -- parameter access ---------------------------------------------------

    @property
    def params_dict(self) -> Dict[str, ParamValue]:
        return dict(self.params)

    def param(self, name: str, default: ParamValue = None) -> ParamValue:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def family(self) -> str:
        """The predictor family ("binary"/"cht"/"hitmiss"/"bank"/…)."""
        return kind_info(self.kind).family

    # -- serialisation ------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": self.params_dict}

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, minimal separators."""
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "PredictorSpec":
        kind = payload.get("kind")
        params = payload.get("params", {})
        if not isinstance(kind, str) or not isinstance(params, Mapping):
            raise ValueError(f"malformed spec payload: {payload!r}")
        return spec_for(kind, **{str(k): v for k, v in params.items()})

    @classmethod
    def from_json(cls, text: str) -> "PredictorSpec":
        return cls.from_json_dict(json.loads(text))

    # -- cache addressing ---------------------------------------------------

    def cache_material(self) -> str:
        """The canonical key material (schema + version prepended),
        per the envelope rules of :mod:`repro.parallel.cache`."""
        from repro.parallel.cache import key_material
        return key_material("predictor-spec", self.to_json_dict())

    def cache_key(self) -> str:
        """SHA-256 content address of this spec."""
        from repro.parallel.cache import content_key
        return content_key(self.cache_material())

    # -- construction -------------------------------------------------------

    def build(self, backend: Optional[str] = None) -> object:
        """Shorthand for :func:`build_predictor`."""
        return build_predictor(self, backend=backend)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"


def spec_for(kind: str, **params: ParamValue) -> PredictorSpec:
    """Build a normalised :class:`PredictorSpec` for ``kind``.

    Unknown parameter names raise immediately (catching typos at spec
    construction, not at build time); omitted parameters take the
    registered defaults, so the returned spec is always complete.
    """
    info = kind_info(kind)
    merged = info.defaults_dict
    for name, value in params.items():
        if name not in merged:
            known = ", ".join(sorted(merged)) or "<none>"
            raise TypeError(
                f"unknown parameter {name!r} for predictor kind {kind!r}; "
                f"accepted parameters: {known}")
        merged[name] = value
    return PredictorSpec(kind=kind, params=tuple(sorted(merged.items())))


def build_predictor(spec: PredictorSpec,
                    backend: Optional[str] = None) -> object:
    """Instantiate the predictor a spec describes.

    ``backend`` is forwarded to constructors that accept the
    ``reference``/``vectorized`` fast-path switch
    (:mod:`repro.fastpath.backend`); ``None`` defers to the process
    default.  The built object is stamped with ``predictor.spec`` so it
    can be re-serialised (the round-trip contract pinned by
    ``tests/api/test_spec.py``).
    """
    info = kind_info(spec.kind)
    # Re-normalise, so hand-rolled PredictorSpec instances with missing
    # defaults still build the same object as spec_for would describe.
    normalised = spec_for(spec.kind, **spec.params_dict)
    predictor = info.builder(normalised.params_dict, backend)
    try:
        predictor.spec = normalised
    except AttributeError:  # pragma: no cover - __slots__ classes
        pass
    return predictor
