"""Per-session predictor state.

A session is one isolated predictor instance plus its bookkeeping; it
lives entirely inside one shard (single writer), so nothing here is
locked.  Sessions are what snapshot/restore moves around.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api import PredictorSpec, SERVABLE_FAMILIES, build_predictor


class Session:
    """One client's predictor, built from its spec."""

    __slots__ = ("session_id", "spec", "family", "predictor", "served",
                 "hottrace")

    def __init__(self, session_id: str, spec: PredictorSpec,
                 backend: Optional[str] = None,
                 predictor: Optional[object] = None,
                 served: int = 0) -> None:
        if spec.family not in SERVABLE_FAMILIES:
            raise ValueError(
                f"family {spec.family!r} ({spec.kind}) has no serving "
                f"adapter; servable families: {SERVABLE_FAMILIES}")
        self.session_id = session_id
        self.spec = spec
        self.family = spec.family
        self.predictor = (predictor if predictor is not None
                          else build_predictor(spec, backend=backend))
        self.served = served
        #: Hot-trace recording state (:class:`repro.fastpath.hottrace.
        #: SessionTraceState`), lazily attached by the shard's engine.
        #: Deliberately *not* part of ``state_dict``: captures are
        #: process-local speculation state, re-learned after restore or
        #: migration rather than trusted across a move.
        self.hottrace = None

    def state_dict(self) -> Dict[str, object]:
        """The picklable snapshot payload of this session."""
        return {"spec": self.spec.to_json_dict(),
                "predictor": self.predictor,
                "served": self.served}

    @classmethod
    def from_state_dict(cls, session_id: str,
                        state: Dict[str, object]) -> "Session":
        spec = PredictorSpec.from_json_dict(state["spec"])
        return cls(session_id, spec, predictor=state["predictor"],
                   served=int(state["served"]))

    def __repr__(self) -> str:
        return (f"Session({self.session_id!r}, {self.spec.kind}, "
                f"served={self.served})")
