"""JSONL transport: the service over TCP sockets or stdio.

One JSON request per line in, one JSON response per line out (see
:mod:`repro.serve.protocol`).  Responses to pipelined requests come
back in completion order — clients correlate by ``seq`` — except that
per-session ordering is still the service's admission order.

The transport is deliberately thin: framing, decode errors in-band,
``open``'s spec parsing.  Everything interesting (batching,
backpressure, sharding) lives behind
:class:`~repro.serve.service.PredictionService`.
"""

from __future__ import annotations

import sys
from typing import Optional

import asyncio

from repro.api import PredictorSpec
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    PredictRequest,
    PredictResponse,
    ProtocolError,
)
from repro.serve.service import PredictionService


def _decode_span(service: PredictionService, request: PredictRequest):
    """Mint the request's span at protocol decode (or ``None`` when
    telemetry is off / this request is not sampled)."""
    tracer = service.tracer
    if tracer is None:
        return None
    span = tracer.start(request.session_id, request.seq)
    if span is not None:
        span.mark("decode")
    return span


async def _dispatch(service: PredictionService, request: PredictRequest,
                    span=None) -> PredictResponse:
    """Map one decoded request onto the service API."""
    sid = request.session_id
    try:
        if request.op == "ping":
            response = PredictResponse(session_id=sid, seq=request.seq)
        elif request.op == "open":
            if request.spec is None:
                response = PredictResponse(
                    session_id=sid, seq=request.seq, ok=False,
                    error=f"{ERR_BAD_REQUEST}: open requires spec")
            else:
                spec = PredictorSpec.from_json_dict(request.spec)
                await service.open_session(sid, spec)
                response = PredictResponse(session_id=sid,
                                           seq=request.seq)
        elif request.op == "close":
            served = await service.close_session(sid)
            response = PredictResponse(session_id=sid, seq=request.seq,
                                       result=served)
        else:
            # Data path: the span rides the queue with the request and
            # the owning shard closes it at reply time.
            return await service.request(request, span=span)
    except asyncio.CancelledError:
        # Connection teardown mid-request: propagate — turning the
        # cancellation into an in-band error would both hide it from
        # the handler task and write to a dying socket.
        raise
    except Exception as exc:
        detail = f"{type(exc).__name__}: {exc}"
        cause = exc.__cause__
        if cause is not None:
            detail += f" (caused by {type(cause).__name__}: {cause})"
        response = PredictResponse(
            session_id=sid, seq=request.seq, ok=False,
            error=f"{ERR_BAD_REQUEST}: {detail}")
    # Control ops never reach a shard; close their spans here.
    if span is not None and service.tracer is not None:
        span.mark("reply")
        service.tracer.finish(span)
    return response


async def handle_connection(service: PredictionService,
                            reader: "asyncio.StreamReader",
                            writer: "asyncio.StreamWriter") -> None:
    """Serve one JSONL peer until EOF."""
    write_lock = asyncio.Lock()
    pending = set()

    async def _respond(request: PredictRequest, span=None) -> None:
        response = await _dispatch(service, request, span=span)
        async with write_lock:
            writer.write((response.to_json() + "\n").encode("utf-8"))
            await writer.drain()

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                request = PredictRequest.from_json(text)
            except ProtocolError as exc:
                async with write_lock:
                    writer.write((PredictResponse(
                        session_id="?", ok=False,
                        error=f"{ERR_BAD_REQUEST}: {exc}").to_json()
                        + "\n").encode("utf-8"))
                    await writer.drain()
                continue
            # Pipelining: don't await the response before reading the
            # next line, or a single slow batch would stall the socket.
            task = asyncio.ensure_future(
                _respond(request, _decode_span(service, request)))
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass


async def serve_tcp(service: PredictionService, host: str,
                    port: int) -> "asyncio.AbstractServer":
    """Start (and return) a TCP server bound to ``host:port``."""

    async def _handler(reader, writer):
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(_handler, host, port)


async def serve_stdio(service: PredictionService,
                      stdin=None, stdout=None) -> None:
    """Serve JSONL over stdin/stdout until EOF (for pipes/tests)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    loop = asyncio.get_running_loop()
    while True:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            break
        text = line.strip()
        if not text:
            continue
        try:
            request = PredictRequest.from_json(text)
            response = await _dispatch(service, request,
                                       span=_decode_span(service,
                                                         request))
        except ProtocolError as exc:
            response = PredictResponse(session_id="?", ok=False,
                                       error=f"{ERR_BAD_REQUEST}: {exc}")
        stdout.write(response.to_json() + "\n")
        stdout.flush()


class JsonlClient:
    """Minimal asyncio client for the JSONL transport (tests/tools).

    Sends requests and awaits responses one at a time; ``seq``
    correlation is the caller's business when pipelining by hand.
    """

    def __init__(self, reader: "asyncio.StreamReader",
                 writer: "asyncio.StreamWriter") -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "JsonlClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def roundtrip(self, request: PredictRequest) -> PredictResponse:
        self.writer.write((request.to_json() + "\n").encode("utf-8"))
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return PredictResponse.from_json(line.decode("utf-8"))

    async def close(self) -> None:
        self.writer.close()
        await self.writer.wait_closed()
