"""Closed-loop load generator for the prediction service.

``python -m repro.serve bench`` drives service instances over the same
deterministic workload and writes ``BENCH_serve.json``:

* **scalar** — ``max_batch=1`` on the reference backend: every request
  is executed individually, the per-request baseline;
* **vectorized** — micro-batching on the vectorized backend: requests
  coalesce into batches and same-session step runs execute on the
  :mod:`repro.fastpath` kernels;
* **vectorized_no_telemetry** — the vectorized side again with span
  tracing disabled, so the report carries an explicit telemetry
  on/off throughput comparison (``telemetry_overhead``).

Each of the ``clients`` keeps a *window* of pipelined step requests
outstanding against its own session (closed loop: a new window is
submitted only when the previous one completed), which is what lets
micro-batches fill: a client submits its whole window back-to-back
without yielding, so the window lands contiguously in the shard queue
and becomes one same-session kernel run.  Window size therefore *is*
the kernel run length — the default (1024) sits where the
:mod:`repro.fastpath` kernels have amortised their setup.
``retry-after`` rejections are honoured with the advertised backoff
and retried — backpressure is part of the measured protocol, not an
error.

Latency accounting (the report's JSON schema, ``schema: 2``):

* ``latency_us`` — client-observed submit→response on the asyncio
  clock, sampled 1-in-16 into a bounded
  :class:`~repro.common.stats.StreamingHistogram` (memory stays
  O(buckets) however many requests complete; quantiles carry the
  histogram's 1% relative-error bound).  **Closed-loop caveat**: under
  saturation this number is almost entirely *queue sojourn* — time
  spent waiting in the shard queue behind the caller's own outstanding
  window — not execution time.  Treat it as a load-level indicator,
  not a service-speed headline.
* ``queue_us`` / ``service_us`` — the two components separated, from
  the per-request tracer's stage histograms: ``queue_us`` is admission
  →flush sojourn, ``service_us`` is kernel/predict execution alone.
* Samples completing inside the ``warmup_seconds`` window (default
  10% of the run) are excluded from all reported quantiles — cold
  predictor tables and interpreter warm-up would otherwise pollute the
  tail.
"""

from __future__ import annotations

import json
import random
import statistics
import time
from typing import Dict, List, Optional

import asyncio

from repro.api import spec_for
from repro.common.stats import StreamingHistogram
from repro.obs.provenance import collect_provenance
from repro.serve.config import ServeConfig
from repro.serve.protocol import ERR_RETRY, PredictRequest
from repro.serve.service import PredictionService

#: Report schema: 2 adds queue/service separation, warmup exclusion,
#: provenance and the telemetry on/off comparison.
BENCH_SCHEMA = 2

#: Distinct load PCs per client session (enough to exercise tables,
#: few enough that predictors warm up within a short run).
N_PCS = 48

#: Fraction of "rare" outcomes (misses / collisions / bank 1).
RARE_RATE = 0.25


def _request_stream(session_id: str, family: str, seed: int):
    """Deterministic infinite step-request stream for one client."""
    rng = random.Random(seed)
    seq = 0
    while True:
        pc = 0x1000 + 4 * rng.randrange(N_PCS)
        rare = rng.random() < RARE_RATE
        if family == "hitmiss":
            outcome = 0 if rare else 1  # outcome lane is "hit"
        else:  # binary / cht / bank share the 0/1 coding
            outcome = 1 if rare else 0
        distance = 1 + rng.randrange(4) if (family == "cht" and rare) else None
        yield PredictRequest(session_id=session_id, op="step", pc=pc,
                             outcome=outcome, distance=distance, seq=seq)
        seq += 1


#: Latency sample rate: 1 request in ``1 << _SAMPLE_SHIFT``.
_SAMPLE_SHIFT = 4


def make_windows(session_id: str, family: str, seed: int,
                 window: int, n_windows: int = 4
                 ) -> List[List[PredictRequest]]:
    """Deterministic request windows for one client, built before the
    clock starts — request construction stays off the measured path."""
    stream = _request_stream(session_id, family, seed)
    return [[next(stream) for _ in range(window)]
            for _ in range(n_windows)]


async def _client(service: PredictionService,
                  windows: List[List[PredictRequest]], deadline: float,
                  latencies: StreamingHistogram, warmup_until: float,
                  counters: Dict[str, int]) -> None:
    loop = asyncio.get_running_loop()
    loop_time = loop.time
    submit = service.submit
    sample_mask = (1 << _SAMPLE_SHIFT) - 1
    sent = 0

    def _submit_sampled(request: PredictRequest) -> "asyncio.Future":
        t0 = loop_time()

        def _record(f: "asyncio.Future") -> None:
            t1 = loop_time()
            if t1 >= warmup_until:  # cold-start samples stay out
                latencies.record(t1 - t0)

        future = submit(request)
        future.add_done_callback(_record)
        return future

    while loop_time() < deadline:
        batch = windows[sent % len(windows)]
        sent += 1
        outstanding = []
        for i, request in enumerate(batch):
            if i & sample_mask == 0:
                outstanding.append(_submit_sampled(request))
            else:
                outstanding.append(submit(request))
        # Await sequentially rather than gather(): responses resolve in
        # admission order per session, so after the first await the
        # rest are done futures — no per-future wakeup callbacks.
        responses = [await f for f in outstanding]
        # Honour the backpressure contract: back off and retry rejects.
        retries = [req for req, resp in zip(batch, responses)
                   if resp.error == ERR_RETRY]
        while retries and loop_time() < deadline:
            counters["rejected"] += len(retries)
            await asyncio.sleep(service.config.retry_after_us / 1e6)
            redone = [await f for f in [submit(r) for r in retries]]
            retries = [req for req, resp in zip(retries, redone)
                       if resp.error == ERR_RETRY]
        counters["completed"] += sum(
            1 for resp in responses if resp.ok)


def _quantiles_us(hist: StreamingHistogram) -> Dict[str, float]:
    """p50/p90/p99/p999 of a seconds-valued histogram, in µs."""
    return {name: round(value * 1e6, 1)
            for name, value in hist.percentiles().items()}


def _stage_us(summary: Dict[str, Dict[str, float]],
              stages: List[str]) -> Optional[Dict[str, float]]:
    """Tracer stage quantiles (already µs) for the first present stage."""
    for stage in stages:
        stats = summary.get(stage)
        if stats and stats.get("count"):
            return {"stage": stage,
                    "count": int(stats["count"]),
                    "mean": round(stats["mean"], 1),
                    "p50": round(stats["p50"], 1),
                    "p90": round(stats["p90"], 1),
                    "p99": round(stats["p99"], 1),
                    "p999": round(stats["p999"], 1)}
    return None


async def run_side(label: str, config: ServeConfig, spec_kind: str,
                   seconds: float, clients: int, window: int,
                   warmup_frac: float = 0.1) -> Dict[str, object]:
    """Run one bench side; returns its report dict."""
    spec = spec_for(spec_kind)
    family = spec.family
    latencies = StreamingHistogram("client_latency_s")
    counters = {"completed": 0, "rejected": 0}
    workloads = [make_windows(f"bench-{i}", family, seed=9000 + i,
                              window=window) for i in range(clients)]
    service = PredictionService(config)
    await service.start()
    try:
        for i in range(clients):
            await service.open_session(f"bench-{i}", spec)
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        deadline = t0 + seconds
        warmup_seconds = max(0.0, warmup_frac) * seconds
        await asyncio.gather(*(
            _client(service, workloads[i], deadline=deadline,
                    latencies=latencies,
                    warmup_until=t0 + warmup_seconds,
                    counters=counters)
            for i in range(clients)))
        elapsed = loop.time() - t0
    finally:
        await service.stop()
    from repro.fastpath.backend import resolve_backend
    stats = service.stats()
    side: Dict[str, object] = {
        "label": label,
        "requested_backend": config.backend,
        "effective_backend": resolve_backend(config.backend),
        "max_batch": config.max_batch,
        "max_delay_us": config.max_delay_us,
        "n_shards": config.n_shards,
        "clients": clients,
        "window": window,
        "seconds": round(elapsed, 3),
        "warmup_seconds": round(warmup_seconds, 3),
        "completed": counters["completed"],
        "rejected": counters["rejected"],
        "throughput_rps": (counters["completed"] / elapsed
                           if elapsed > 0 else 0.0),
        "latency_us": _quantiles_us(latencies),
        "latency_samples": latencies.count,
        "latency_note": ("closed-loop submit->response including queue "
                         "sojourn; see queue_us/service_us for the "
                         "separated components"),
        "telemetry": config.telemetry,
        "service": stats["totals"],
    }
    if service.tracer is not None:
        summary = service.tracer.summary()
        side["queue_us"] = _stage_us(summary, ["queue"])
        side["service_us"] = _stage_us(summary, ["kernel", "predict"])
        side["trace"] = service.tracer.counters()
    return side


def run_bench(seconds: float = 10.0, clients: int = 64,
              window: int = 1024, spec_kind: str = "hmp.hybrid",
              n_shards: int = 2, max_batch: int = 4096,
              max_delay_us: int = 2000, queue_depth: int = 65536,
              sides: str = "both", warmup_frac: float = 0.1,
              telemetry_compare: bool = True) -> Dict[str, object]:
    """Run the configured sides and assemble the report.

    ``sides``: ``"both"`` (default), ``"reference"`` (scalar baseline
    only) or ``"vectorized"`` (micro-batching side only).  With
    ``telemetry_compare`` (and a vectorized side), the vectorized
    configuration runs once more with telemetry off and the report
    gains a ``telemetry_overhead`` on/off comparison.
    """
    report: Dict[str, object] = {
        "bench": "repro.serve",
        "schema": BENCH_SCHEMA,
        "spec": spec_for(spec_kind).to_json_dict(),
        "generated_unix": int(time.time()),
        "provenance": collect_provenance(),
        "sides": {},
    }
    if sides in ("both", "reference"):
        scalar_config = ServeConfig(
            n_shards=n_shards, max_batch=1, max_delay_us=0,
            queue_depth=queue_depth, backend="reference")
        report["sides"]["scalar"] = asyncio.run(run_side(
            "scalar per-request", scalar_config, spec_kind, seconds,
            clients, window, warmup_frac))
    if sides in ("both", "vectorized"):
        vector_config = ServeConfig(
            n_shards=n_shards, max_batch=max_batch,
            max_delay_us=max_delay_us, queue_depth=queue_depth,
            backend="vectorized")
        report["sides"]["vectorized"] = asyncio.run(run_side(
            "vectorized micro-batching", vector_config, spec_kind,
            seconds, clients, window, warmup_frac))
        if telemetry_compare:
            # Machine drift between two back-to-back multi-second runs
            # can exceed the effect being measured (this box drifts by
            # double-digit percents between adjacent runs), so the
            # on/off comparison runs as short paired rounds in ABBA
            # order — the arm that goes first alternates per round, so
            # linear drift and run-position effects hit both arms
            # equally — and pools each arm's completions.
            dark_config = ServeConfig(
                n_shards=n_shards, max_batch=max_batch,
                max_delay_us=max_delay_us, queue_depth=queue_depth,
                backend="vectorized", telemetry=False)
            rounds = 9
            round_seconds = max(seconds / rounds, 0.05)
            arms = {"on": vector_config, "off": dark_config}
            per_round = []
            dark_side = None
            for i in range(rounds):
                order = ("on", "off") if i % 2 == 0 else ("off", "on")
                rps = {}
                for arm in order:
                    side = asyncio.run(run_side(
                        f"vectorized, telemetry {arm}", arms[arm],
                        spec_kind, round_seconds, clients, window,
                        warmup_frac))
                    rps[arm] = side["throughput_rps"]
                    if arm == "off":
                        dark_side = side
                per_round.append(rps)
            report["sides"]["vectorized_no_telemetry"] = dark_side
            # Each round's arms are adjacent in time, so the per-round
            # ratio is drift-immune; the median across rounds then
            # discards the outlier rounds this box produces.
            fracs = sorted(1.0 - r["on"] / r["off"] for r in per_round
                           if r["off"] > 0)
            overhead = fracs[len(fracs) // 2] if fracs else 0.0
            report["telemetry_overhead"] = {
                "on_rps": statistics.median(r["on"] for r in per_round),
                "off_rps": statistics.median(r["off"] for r in per_round),
                # Positive = telemetry costs throughput.
                "overhead_frac": overhead,
                "rounds": rounds,
                "round_seconds": round_seconds,
                "per_round": [
                    {"on_rps": round(r["on"], 1),
                     "off_rps": round(r["off"], 1)} for r in per_round],
                "sample_shift": ServeConfig().trace_sample_shift,
                "note": ("median of per-round on/off ratios, arms "
                         "paired in ABBA order; immune to machine "
                         "drift between rounds"),
            }
    if "scalar" in report["sides"] and "vectorized" in report["sides"]:
        scalar_rps = report["sides"]["scalar"]["throughput_rps"]
        vector_rps = report["sides"]["vectorized"]["throughput_rps"]
        report["speedup"] = (vector_rps / scalar_rps
                             if scalar_rps > 0 else 0.0)
    return report


def write_report(report: Dict[str, object],
                 path: str = "BENCH_serve.json") -> str:
    """Write the bench report as sorted, indented JSON; return *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
