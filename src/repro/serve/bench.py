"""Closed-loop load generator for the prediction service.

``python -m repro.serve bench`` drives two service instances over the
same deterministic workload and writes ``BENCH_serve.json``:

* **scalar** — ``max_batch=1`` on the reference backend: every request
  is executed individually, the per-request baseline;
* **vectorized** — micro-batching on the vectorized backend: requests
  coalesce into batches and same-session step runs execute on the
  :mod:`repro.fastpath` kernels.

Each of the ``clients`` keeps a *window* of pipelined step requests
outstanding against its own session (closed loop: a new window is
submitted only when the previous one completed), which is what lets
micro-batches fill: a client submits its whole window back-to-back
without yielding, so the window lands contiguously in the shard queue
and becomes one same-session kernel run.  Window size therefore *is*
the kernel run length — the default (1024) sits where the
:mod:`repro.fastpath` kernels have amortised their setup.
``retry-after`` rejections are honoured with the advertised backoff
and retried — backpressure is part of the measured protocol, not an
error.

Latency is sampled (1 request in 16), submit→response on the asyncio
clock, so measurement cost doesn't distort the throughput being
measured; the report carries p50/p90/p99 and throughput (completed
requests per second), plus the service's own batch statistics.
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, List

import asyncio

from repro.api import spec_for
from repro.serve.config import ServeConfig
from repro.serve.protocol import ERR_RETRY, PredictRequest
from repro.serve.service import PredictionService

#: Distinct load PCs per client session (enough to exercise tables,
#: few enough that predictors warm up within a short run).
N_PCS = 48

#: Fraction of "rare" outcomes (misses / collisions / bank 1).
RARE_RATE = 0.25


def _request_stream(session_id: str, family: str, seed: int):
    """Deterministic infinite step-request stream for one client."""
    rng = random.Random(seed)
    seq = 0
    while True:
        pc = 0x1000 + 4 * rng.randrange(N_PCS)
        rare = rng.random() < RARE_RATE
        if family == "hitmiss":
            outcome = 0 if rare else 1  # outcome lane is "hit"
        else:  # binary / cht / bank share the 0/1 coding
            outcome = 1 if rare else 0
        distance = 1 + rng.randrange(4) if (family == "cht" and rare) else None
        yield PredictRequest(session_id=session_id, op="step", pc=pc,
                             outcome=outcome, distance=distance, seq=seq)
        seq += 1


#: Latency sample rate: 1 request in ``1 << _SAMPLE_SHIFT``.
_SAMPLE_SHIFT = 4


def make_windows(session_id: str, family: str, seed: int,
                 window: int, n_windows: int = 4
                 ) -> List[List[PredictRequest]]:
    """Deterministic request windows for one client, built before the
    clock starts — request construction stays off the measured path."""
    stream = _request_stream(session_id, family, seed)
    return [[next(stream) for _ in range(window)]
            for _ in range(n_windows)]


async def _client(service: PredictionService,
                  windows: List[List[PredictRequest]], deadline: float,
                  latencies: List[float],
                  counters: Dict[str, int]) -> None:
    loop = asyncio.get_running_loop()
    loop_time = loop.time
    submit = service.submit
    sample_mask = (1 << _SAMPLE_SHIFT) - 1
    sent = 0

    def _submit_sampled(request: PredictRequest) -> "asyncio.Future":
        t0 = loop_time()
        future = submit(request)
        future.add_done_callback(
            lambda f: latencies.append(loop_time() - t0))
        return future

    while loop_time() < deadline:
        batch = windows[sent % len(windows)]
        sent += 1
        outstanding = []
        for i, request in enumerate(batch):
            if i & sample_mask == 0:
                outstanding.append(_submit_sampled(request))
            else:
                outstanding.append(submit(request))
        # Await sequentially rather than gather(): responses resolve in
        # admission order per session, so after the first await the
        # rest are done futures — no per-future wakeup callbacks.
        responses = [await f for f in outstanding]
        # Honour the backpressure contract: back off and retry rejects.
        retries = [req for req, resp in zip(batch, responses)
                   if resp.error == ERR_RETRY]
        while retries and loop_time() < deadline:
            counters["rejected"] += len(retries)
            await asyncio.sleep(service.config.retry_after_us / 1e6)
            redone = [await f for f in [submit(r) for r in retries]]
            retries = [req for req, resp in zip(retries, redone)
                       if resp.error == ERR_RETRY]
        counters["completed"] += sum(
            1 for resp in responses if resp.ok)


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[index]


async def run_side(label: str, config: ServeConfig, spec_kind: str,
                   seconds: float, clients: int,
                   window: int) -> Dict[str, object]:
    """Run one bench side; returns its report dict."""
    spec = spec_for(spec_kind)
    family = spec.family
    latencies: List[float] = []
    counters = {"completed": 0, "rejected": 0}
    workloads = [make_windows(f"bench-{i}", family, seed=9000 + i,
                              window=window) for i in range(clients)]
    service = PredictionService(config)
    await service.start()
    try:
        for i in range(clients):
            await service.open_session(f"bench-{i}", spec)
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        deadline = t0 + seconds
        await asyncio.gather(*(
            _client(service, workloads[i], deadline=deadline,
                    latencies=latencies, counters=counters)
            for i in range(clients)))
        elapsed = loop.time() - t0
    finally:
        await service.stop()
    from repro.fastpath.backend import resolve_backend
    latencies.sort()
    stats = service.stats()
    return {
        "label": label,
        "requested_backend": config.backend,
        "effective_backend": resolve_backend(config.backend),
        "max_batch": config.max_batch,
        "max_delay_us": config.max_delay_us,
        "n_shards": config.n_shards,
        "clients": clients,
        "window": window,
        "seconds": round(elapsed, 3),
        "completed": counters["completed"],
        "rejected": counters["rejected"],
        "throughput_rps": (counters["completed"] / elapsed
                           if elapsed > 0 else 0.0),
        "latency_us": {
            "p50": round(_percentile(latencies, 0.50) * 1e6, 1),
            "p90": round(_percentile(latencies, 0.90) * 1e6, 1),
            "p99": round(_percentile(latencies, 0.99) * 1e6, 1),
        },
        "service": stats["totals"],
    }


def run_bench(seconds: float = 10.0, clients: int = 64,
              window: int = 1024, spec_kind: str = "hmp.hybrid",
              n_shards: int = 2, max_batch: int = 4096,
              max_delay_us: int = 2000, queue_depth: int = 65536,
              sides: str = "both") -> Dict[str, object]:
    """Run the configured sides and assemble the report.

    ``sides``: ``"both"`` (default), ``"reference"`` (scalar baseline
    only) or ``"vectorized"`` (micro-batching side only).
    """
    report: Dict[str, object] = {
        "bench": "repro.serve",
        "spec": spec_for(spec_kind).to_json_dict(),
        "generated_unix": int(time.time()),
        "sides": {},
    }
    if sides in ("both", "reference"):
        scalar_config = ServeConfig(
            n_shards=n_shards, max_batch=1, max_delay_us=0,
            queue_depth=queue_depth, backend="reference")
        report["sides"]["scalar"] = asyncio.run(run_side(
            "scalar per-request", scalar_config, spec_kind, seconds,
            clients, window))
    if sides in ("both", "vectorized"):
        vector_config = ServeConfig(
            n_shards=n_shards, max_batch=max_batch,
            max_delay_us=max_delay_us, queue_depth=queue_depth,
            backend="vectorized")
        report["sides"]["vectorized"] = asyncio.run(run_side(
            "vectorized micro-batching", vector_config, spec_kind,
            seconds, clients, window))
    if "scalar" in report["sides"] and "vectorized" in report["sides"]:
        scalar_rps = report["sides"]["scalar"]["throughput_rps"]
        vector_rps = report["sides"]["vectorized"]["throughput_rps"]
        report["speedup"] = (vector_rps / scalar_rps
                             if scalar_rps > 0 else 0.0)
    return report


def write_report(report: Dict[str, object],
                 path: str = "BENCH_serve.json") -> str:
    """Write the bench report as sorted, indented JSON; return *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
