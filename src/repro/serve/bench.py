"""Closed-loop load generator for the prediction service.

``python -m repro.serve bench`` drives service instances over the same
deterministic workload and writes ``BENCH_serve.json``:

* **scalar** — ``max_batch=1`` on the reference backend: every request
  is executed individually, the per-request baseline;
* **vectorized** — micro-batching on the vectorized backend: requests
  coalesce into batches and same-session step runs execute on the
  :mod:`repro.fastpath` kernels;
* **vectorized_no_telemetry** — the vectorized side again with span
  tracing disabled, so the report carries an explicit telemetry
  on/off throughput comparison (``telemetry_overhead``).

Each of the ``clients`` keeps a *window* of pipelined step requests
outstanding against its own session (closed loop: a new window is
submitted only when the previous one completed), which is what lets
micro-batches fill: a client submits its whole window back-to-back
without yielding, so the window lands contiguously in the shard queue
and becomes one same-session kernel run.  Window size therefore *is*
the kernel run length — the default (1024) sits where the
:mod:`repro.fastpath` kernels have amortised their setup.
``retry-after`` rejections are honoured with the advertised backoff
and retried — backpressure is part of the measured protocol, not an
error.

Latency accounting (the report's JSON schema, ``schema: 2``):

* ``latency_us`` — client-observed submit→response on the asyncio
  clock, sampled 1-in-16 into a bounded
  :class:`~repro.common.stats.StreamingHistogram` (memory stays
  O(buckets) however many requests complete; quantiles carry the
  histogram's 1% relative-error bound).  **Closed-loop caveat**: under
  saturation this number is almost entirely *queue sojourn* — time
  spent waiting in the shard queue behind the caller's own outstanding
  window — not execution time.  Treat it as a load-level indicator,
  not a service-speed headline.
* ``queue_us`` / ``service_us`` — the two components separated, from
  the per-request tracer's stage histograms: ``queue_us`` is admission
  →flush sojourn, ``service_us`` is kernel/predict execution alone.
* Samples completing inside the ``warmup_seconds`` window (default
  10% of the run) are excluded from all reported quantiles — cold
  predictor tables and interpreter warm-up would otherwise pollute the
  tail.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time
from typing import Dict, List, Optional

import asyncio

from repro.api import spec_for
from repro.common.stats import StreamingHistogram
from repro.obs.provenance import collect_provenance
from repro.serve.config import ServeConfig
from repro.serve.protocol import ERR_RETRY, PredictRequest
from repro.serve.service import PredictionService

#: Report schema: 2 adds queue/service separation, warmup exclusion,
#: provenance and the telemetry on/off comparison; 3 adds the
#: multi-process ``fleet`` section (open-loop scenarios: steady /
#: overload / rebalance / chaos-kill, and the fleet-vs-single-process
#: aggregate comparison); 4 adds the ``hottrace`` section (guarded
#: hot-trace replay on/off per workload profile: hit rate, abort
#: counters, steps/s speedup).
BENCH_SCHEMA = 4

#: Distinct load PCs per client session (enough to exercise tables,
#: few enough that predictors warm up within a short run).
N_PCS = 48

#: Fraction of "rare" outcomes (misses / collisions / bank 1).
RARE_RATE = 0.25


def _request_stream(session_id: str, family: str, seed: int):
    """Deterministic infinite step-request stream for one client."""
    rng = random.Random(seed)
    seq = 0
    while True:
        pc = 0x1000 + 4 * rng.randrange(N_PCS)
        rare = rng.random() < RARE_RATE
        if family == "hitmiss":
            outcome = 0 if rare else 1  # outcome lane is "hit"
        else:  # binary / cht / bank share the 0/1 coding
            outcome = 1 if rare else 0
        distance = 1 + rng.randrange(4) if (family == "cht" and rare) else None
        yield PredictRequest(session_id=session_id, op="step", pc=pc,
                             outcome=outcome, distance=distance, seq=seq)
        seq += 1


#: Latency sample rate: 1 request in ``1 << _SAMPLE_SHIFT``.
_SAMPLE_SHIFT = 4


def make_windows(session_id: str, family: str, seed: int,
                 window: int, n_windows: int = 4
                 ) -> List[List[PredictRequest]]:
    """Deterministic request windows for one client, built before the
    clock starts — request construction stays off the measured path."""
    stream = _request_stream(session_id, family, seed)
    return [[next(stream) for _ in range(window)]
            for _ in range(n_windows)]


async def _client(service: PredictionService,
                  windows: List[List[PredictRequest]], deadline: float,
                  latencies: StreamingHistogram, warmup_until: float,
                  counters: Dict[str, int]) -> None:
    loop = asyncio.get_running_loop()
    loop_time = loop.time
    submit = service.submit
    sample_mask = (1 << _SAMPLE_SHIFT) - 1
    sent = 0

    def _submit_sampled(request: PredictRequest) -> "asyncio.Future":
        t0 = loop_time()

        def _record(f: "asyncio.Future") -> None:
            t1 = loop_time()
            if t1 >= warmup_until:  # cold-start samples stay out
                latencies.record(t1 - t0)

        future = submit(request)
        future.add_done_callback(_record)
        return future

    while loop_time() < deadline:
        batch = windows[sent % len(windows)]
        sent += 1
        outstanding = []
        for i, request in enumerate(batch):
            if i & sample_mask == 0:
                outstanding.append(_submit_sampled(request))
            else:
                outstanding.append(submit(request))
        # Await sequentially rather than gather(): responses resolve in
        # admission order per session, so after the first await the
        # rest are done futures — no per-future wakeup callbacks.
        responses = [await f for f in outstanding]
        # Honour the backpressure contract: back off and retry rejects.
        retries = [req for req, resp in zip(batch, responses)
                   if resp.error == ERR_RETRY]
        while retries and loop_time() < deadline:
            counters["rejected"] += len(retries)
            await asyncio.sleep(service.config.retry_after_us / 1e6)
            redone = [await f for f in [submit(r) for r in retries]]
            retries = [req for req, resp in zip(retries, redone)
                       if resp.error == ERR_RETRY]
        counters["completed"] += sum(
            1 for resp in responses if resp.ok)


def _quantiles_us(hist: StreamingHistogram) -> Dict[str, float]:
    """p50/p90/p99/p999 of a seconds-valued histogram, in µs."""
    return {name: round(value * 1e6, 1)
            for name, value in hist.percentiles().items()}


def _stage_us(summary: Dict[str, Dict[str, float]],
              stages: List[str]) -> Optional[Dict[str, float]]:
    """Tracer stage quantiles (already µs) for the first present stage."""
    for stage in stages:
        stats = summary.get(stage)
        if stats and stats.get("count"):
            return {"stage": stage,
                    "count": int(stats["count"]),
                    "mean": round(stats["mean"], 1),
                    "p50": round(stats["p50"], 1),
                    "p90": round(stats["p90"], 1),
                    "p99": round(stats["p99"], 1),
                    "p999": round(stats["p999"], 1)}
    return None


async def run_side(label: str, config: ServeConfig, spec_kind: str,
                   seconds: float, clients: int, window: int,
                   warmup_frac: float = 0.1) -> Dict[str, object]:
    """Run one bench side; returns its report dict."""
    spec = spec_for(spec_kind)
    family = spec.family
    latencies = StreamingHistogram("client_latency_s")
    counters = {"completed": 0, "rejected": 0}
    workloads = [make_windows(f"bench-{i}", family, seed=9000 + i,
                              window=window) for i in range(clients)]
    service = PredictionService(config)
    await service.start()
    try:
        for i in range(clients):
            await service.open_session(f"bench-{i}", spec)
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        deadline = t0 + seconds
        warmup_seconds = max(0.0, warmup_frac) * seconds
        await asyncio.gather(*(
            _client(service, workloads[i], deadline=deadline,
                    latencies=latencies,
                    warmup_until=t0 + warmup_seconds,
                    counters=counters)
            for i in range(clients)))
        elapsed = loop.time() - t0
    finally:
        await service.stop()
    from repro.fastpath.backend import resolve_backend
    stats = service.stats()
    side: Dict[str, object] = {
        "label": label,
        "requested_backend": config.backend,
        "effective_backend": resolve_backend(config.backend),
        "max_batch": config.max_batch,
        "max_delay_us": config.max_delay_us,
        "n_shards": config.n_shards,
        "clients": clients,
        "window": window,
        "seconds": round(elapsed, 3),
        "warmup_seconds": round(warmup_seconds, 3),
        "completed": counters["completed"],
        "rejected": counters["rejected"],
        "throughput_rps": (counters["completed"] / elapsed
                           if elapsed > 0 else 0.0),
        "latency_us": _quantiles_us(latencies),
        "latency_samples": latencies.count,
        "latency_note": ("closed-loop submit->response including queue "
                         "sojourn; see queue_us/service_us for the "
                         "separated components"),
        "telemetry": config.telemetry,
        "service": stats["totals"],
    }
    if service.tracer is not None:
        summary = service.tracer.summary()
        side["queue_us"] = _stage_us(summary, ["queue"])
        side["service_us"] = _stage_us(summary, ["kernel", "predict"])
        side["trace"] = service.tracer.counters()
    return side


def run_bench(seconds: float = 10.0, clients: int = 64,
              window: int = 1024, spec_kind: str = "hmp.hybrid",
              n_shards: int = 2, max_batch: int = 4096,
              max_delay_us: int = 2000, queue_depth: int = 65536,
              sides: str = "both", warmup_frac: float = 0.1,
              telemetry_compare: bool = True) -> Dict[str, object]:
    """Run the configured sides and assemble the report.

    ``sides``: ``"both"`` (default), ``"reference"`` (scalar baseline
    only) or ``"vectorized"`` (micro-batching side only).  With
    ``telemetry_compare`` (and a vectorized side), the vectorized
    configuration runs once more with telemetry off and the report
    gains a ``telemetry_overhead`` on/off comparison.
    """
    report: Dict[str, object] = {
        "bench": "repro.serve",
        "schema": BENCH_SCHEMA,
        "spec": spec_for(spec_kind).to_json_dict(),
        "generated_unix": int(time.time()),
        "provenance": collect_provenance(),
        "sides": {},
    }
    if sides in ("both", "reference"):
        scalar_config = ServeConfig(
            n_shards=n_shards, max_batch=1, max_delay_us=0,
            queue_depth=queue_depth, backend="reference")
        report["sides"]["scalar"] = asyncio.run(run_side(
            "scalar per-request", scalar_config, spec_kind, seconds,
            clients, window, warmup_frac))
    if sides in ("both", "vectorized"):
        vector_config = ServeConfig(
            n_shards=n_shards, max_batch=max_batch,
            max_delay_us=max_delay_us, queue_depth=queue_depth,
            backend="vectorized")
        report["sides"]["vectorized"] = asyncio.run(run_side(
            "vectorized micro-batching", vector_config, spec_kind,
            seconds, clients, window, warmup_frac))
        if telemetry_compare:
            # Machine drift between two back-to-back multi-second runs
            # can exceed the effect being measured (this box drifts by
            # double-digit percents between adjacent runs), so the
            # on/off comparison runs as short paired rounds in ABBA
            # order — the arm that goes first alternates per round, so
            # linear drift and run-position effects hit both arms
            # equally — and pools each arm's completions.
            dark_config = ServeConfig(
                n_shards=n_shards, max_batch=max_batch,
                max_delay_us=max_delay_us, queue_depth=queue_depth,
                backend="vectorized", telemetry=False)
            rounds = 9
            round_seconds = max(seconds / rounds, 0.05)
            arms = {"on": vector_config, "off": dark_config}
            per_round = []
            dark_side = None
            for i in range(rounds):
                order = ("on", "off") if i % 2 == 0 else ("off", "on")
                rps = {}
                for arm in order:
                    side = asyncio.run(run_side(
                        f"vectorized, telemetry {arm}", arms[arm],
                        spec_kind, round_seconds, clients, window,
                        warmup_frac))
                    rps[arm] = side["throughput_rps"]
                    if arm == "off":
                        dark_side = side
                per_round.append(rps)
            report["sides"]["vectorized_no_telemetry"] = dark_side
            # Each round's arms are adjacent in time, so the per-round
            # ratio is drift-immune; the median across rounds then
            # discards the outlier rounds this box produces.
            fracs = sorted(1.0 - r["on"] / r["off"] for r in per_round
                           if r["off"] > 0)
            overhead = fracs[len(fracs) // 2] if fracs else 0.0
            report["telemetry_overhead"] = {
                "on_rps": statistics.median(r["on"] for r in per_round),
                "off_rps": statistics.median(r["off"] for r in per_round),
                # Positive = telemetry costs throughput.
                "overhead_frac": overhead,
                "rounds": rounds,
                "round_seconds": round_seconds,
                "per_round": [
                    {"on_rps": round(r["on"], 1),
                     "off_rps": round(r["off"], 1)} for r in per_round],
                "sample_shift": ServeConfig().trace_sample_shift,
                "note": ("median of per-round on/off ratios, arms "
                         "paired in ABBA order; immune to machine "
                         "drift between rounds"),
            }
    if "scalar" in report["sides"] and "vectorized" in report["sides"]:
        scalar_rps = report["sides"]["scalar"]["throughput_rps"]
        vector_rps = report["sides"]["vectorized"]["throughput_rps"]
        report["speedup"] = (vector_rps / scalar_rps
                             if scalar_rps > 0 else 0.0)
    return report


# --------------------------------------------------------------------------
# The fleet section (schema 3)
# --------------------------------------------------------------------------


def _loadgen_summary(rep: Dict[str, object]) -> Dict[str, object]:
    """The open-loop numbers worth keeping per scenario."""
    latency = dict(rep["latency_us"])
    for key, value in list(latency.items()):
        if isinstance(value, float):
            latency[key] = round(value, 1)
    out = {
        "arrivals": rep["arrivals"],
        "sessions_touched": rep["sessions_touched"],
        "ok": rep["ok"],
        "rejected": rep["rejected"],
        "errors": rep["errors"],
        "lost": rep["lost"],
        "offered_rps": round(rep["offered_rps"], 1),
        "achieved_rps": round(rep["achieved_rps"], 1),
        "latency_us": latency,
    }
    if rep.get("chunk_steps", 1) != 1:
        out["chunk_steps"] = rep["chunk_steps"]
        out["achieved_steps_rps"] = round(rep["achieved_steps_rps"], 1)
    return out


async def _run_fleet_comparison(workers: int, seconds: float,
                                clients: int, n_shards: int,
                                max_batch: int, max_delay_us: int,
                                seed: int, state_dir: str,
                                chunk_steps: int,
                                comparison_spec: str
                                ) -> Dict[str, object]:
    """The acceptance comparison: single-process scalar per-request
    serving vs the N-worker fleet, identical trace-window workload.

    Arrivals are ``replay`` windows of ``chunk_steps`` consecutive
    steps (the unit trace-driven clients produce); the scalar baseline
    pays the full per-step scalar cost while the fleet's vectorized
    workers execute each window as one kernel run — which is the whole
    point being measured: micro-batch amortisation surviving the hop
    across process boundaries.  Everything shares this machine's
    cores, so the speedup is per-request CPU efficiency, not
    parallelism (see provenance.cpu_count)."""
    from repro.serve.fleet import ServeFleet
    from repro.serve.loadgen import (
        LoadModel,
        run_closed_loop,
        run_open_loop,
    )

    worker_config = ServeConfig(
        n_shards=n_shards, max_batch=max_batch,
        max_delay_us=max_delay_us, backend="vectorized")
    scalar_config = ServeConfig(
        n_shards=n_shards, max_batch=1, max_delay_us=0,
        queue_depth=65536, backend="reference")

    def model(rate: float, slice_seconds: float, tag: int) -> LoadModel:
        return LoadModel(
            n_sessions=2000, zipf_s=1.1, spec_kind=comparison_spec,
            chunk_steps=chunk_steps, arrival="poisson", rate_rps=rate,
            seconds=slice_seconds, clients=clients, seed=seed + tag)

    async with PredictionService(scalar_config) as probe:
        probe_rep = await run_closed_loop(
            probe, model(100.0, min(seconds, 1.0), tag=90), window=2)
    capacity = max(probe_rep["achieved_rps"], 10.0)
    overload_rate = 4.0 * capacity

    async with PredictionService(scalar_config) as single:
        single_rep = await run_open_loop(
            single, model(overload_rate, seconds, tag=91))

    async with ServeFleet(n_workers=workers, config=worker_config,
                          state_dir=state_dir,
                          outstanding_limit=4096,
                          wal_limit=400_000) as fleet:
        fleet_rep = await run_open_loop(
            fleet, model(overload_rate, seconds, tag=91))

    single_steps = max(single_rep["achieved_steps_rps"], 1e-9)
    return {
        "spec": spec_for(comparison_spec).to_json_dict(),
        "chunk_steps": chunk_steps,
        "n_sessions": 2000,
        "single_process_capacity_rps": round(capacity, 1),
        "offered_rps": round(overload_rate, 1),
        "single_process": _loadgen_summary(single_rep),
        "fleet": _loadgen_summary(fleet_rep),
        "aggregate_steps_rps": round(fleet_rep["achieved_steps_rps"], 1),
        "speedup_vs_single_process": round(
            fleet_rep["achieved_steps_rps"] / single_steps, 3),
        "comparison_note": (
            "speedup compares the fleet (vectorized micro-batching "
            "workers) against the single-process scalar per-request "
            "service, in steps/s, under identical open-loop trace-"
            "window overload; all processes share this machine's "
            "cores (see provenance.cpu_count)"),
    }


async def _run_fleet_section(workers: int, seconds: float, clients: int,
                             spec_kind: str, spec_params,
                             n_shards: int,
                             max_batch: int, max_delay_us: int,
                             seed: int, state_dir: Optional[str],
                             metrics_jsonl: Optional[str],
                             chunk_steps: int = 512,
                             comparison_spec: str = "hmp.hybrid"
                             ) -> Dict[str, object]:
    import tempfile

    from repro.obs.timeseries import TimeSeriesExporter
    from repro.serve.fleet import ServeFleet
    from repro.serve.loadgen import (
        LoadModel,
        run_closed_loop,
        run_open_loop,
    )

    worker_config = ServeConfig(
        n_shards=n_shards, max_batch=max_batch,
        max_delay_us=max_delay_us, backend="vectorized")
    state_dir = state_dir or tempfile.mkdtemp(prefix="bench-fleet-")
    slice_s = max(seconds / 5.0, 0.2)

    def model(rate: float, slice_seconds: float, tag: int,
              arrival: str = "poisson") -> LoadModel:
        return LoadModel(
            n_sessions=1_000_000, zipf_s=1.1, spec_kind=spec_kind,
            spec_params=spec_params, arrival=arrival, rate_rps=rate,
            seconds=slice_seconds, clients=clients, seed=seed + tag)

    section: Dict[str, object] = {
        "workers": workers,
        "worker_config": {
            "n_shards": n_shards, "max_batch": max_batch,
            "max_delay_us": max_delay_us, "backend": "vectorized"},
        "spec": spec_for(spec_kind, **dict(spec_params)).to_json_dict(),
        "clients": clients,
        "seed": seed,
        "scenarios": {},
    }

    # The acceptance comparison runs against its own fleet instance so
    # its (heavier-state) sessions never bloat the scenario snapshots.
    section["comparison"] = await _run_fleet_comparison(
        workers, max(slice_s, 2.0), clients, n_shards, max_batch,
        max_delay_us, seed, os.path.join(state_dir, "cmp"),
        chunk_steps, comparison_spec)

    fleet = ServeFleet(n_workers=workers, config=worker_config,
                       state_dir=os.path.join(state_dir, "scen"),
                       outstanding_limit=4096,
                       wal_limit=65536)
    await fleet.start(recover=False)
    exporter = None
    if metrics_jsonl is not None:
        exporter = TimeSeriesExporter(fleet.metrics_snapshot,
                                      interval_ms=250,
                                      jsonl_path=metrics_jsonl)
        exporter.start()
    try:
        # Calibrate scenario rates against the *fleet's* own capacity
        # (closed-loop probe) so "steady" really is under the knee and
        # "overload" really is past it.
        probe_rep = await run_closed_loop(
            fleet, model(1000.0, min(slice_s, 1.0), tag=99), window=64)
        fleet_capacity = max(probe_rep["achieved_rps"], 500.0)
        steady_rate = 0.6 * fleet_capacity
        overload_rate = 3.0 * fleet_capacity
        section["fleet_capacity_rps"] = round(fleet_capacity, 1)

        steady = await run_open_loop(
            fleet, model(steady_rate, slice_s, tag=2))
        section["scenarios"]["steady"] = _loadgen_summary(steady)

        overload = await run_open_loop(
            fleet, model(overload_rate, slice_s, tag=3,
                         arrival="bursty"))
        section["scenarios"]["overload"] = _loadgen_summary(overload)

        # Rebalance under load: resize mid-run; admission pauses show
        # up as retry-after, never as lost requests.
        resize_task = None

        async def _resize_mid_run() -> Dict[str, int]:
            await asyncio.sleep(slice_s / 3.0)
            return await fleet.resize(workers + 1)

        resize_task = asyncio.ensure_future(_resize_mid_run())
        rebalance = await run_open_loop(
            fleet, model(steady_rate, slice_s, tag=4))
        moves = await resize_task
        summary = _loadgen_summary(rebalance)
        summary["resize"] = moves
        section["scenarios"]["rebalance"] = summary

        # Kill-a-worker chaos under load: recovery replays the WAL and
        # every accepted request still gets its answer (lost == 0).
        async def _kill_mid_run() -> str:
            await asyncio.sleep(slice_s / 3.0)
            victim = fleet.worker_names[0]
            await fleet.kill_worker(victim)
            return victim

        kill_task = asyncio.ensure_future(_kill_mid_run())
        chaos = await run_open_loop(
            fleet, model(steady_rate, slice_s, tag=5))
        victim = await kill_task
        await fleet.wait_all_live()
        summary = _loadgen_summary(chaos)
        summary["killed_worker"] = victim
        section["scenarios"]["chaos_kill"] = summary

        section["fleet_stats"] = fleet.stats()["totals"]
    finally:
        if exporter is not None:
            exporter.stop()
        await fleet.stop()

    section["aggregate_rps"] = section["comparison"]["fleet"][
        "achieved_rps"]
    section["aggregate_steps_rps"] = section["comparison"][
        "aggregate_steps_rps"]
    section["speedup_vs_single_process"] = section["comparison"][
        "speedup_vs_single_process"]
    return section


def run_fleet_bench(workers: int = 4, seconds: float = 10.0,
                    clients: int = 64, spec_kind: str = "hmp.gshare",
                    spec_params=(("history", 7),),
                    n_shards: int = 2, max_batch: int = 4096,
                    max_delay_us: int = 2000, seed: int = 2024,
                    state_dir: Optional[str] = None,
                    metrics_jsonl: Optional[str] = None,
                    chunk_steps: int = 512,
                    comparison_spec: str = "hmp.hybrid"
                    ) -> Dict[str, object]:
    """The schema-3 ``fleet`` section: the acceptance comparison plus
    open-loop scenarios against an N-worker
    :class:`~repro.serve.fleet.ServeFleet`.

    Two workloads, deliberately different:

    * The **comparison** (``comparison_spec``/``chunk_steps``) offers
      trace windows — ``replay`` requests of ``chunk_steps``
      consecutive steps — to both the single-process scalar
      per-request service and the fleet, and reports the steps/s
      speedup.  It defaults to the bench's headline ``hmp.hybrid``
      spec, whose scalar step is expensive and whose kernel amortises
      hard, because that is the serving regime the fleet exists for.
    * The **scenarios** (``spec_kind``/``spec_params``) stress routing
      and recovery: a Zipf model over a million nameable sessions,
      per-step requests, steady/overload/rebalance/kill-a-worker.
      The default spec is a *compact* hit-miss gshare (~4 KB of
      pickled state per session, vs ~100 KB for ``hmp.hybrid``): the
      model touches tens of thousands of sessions per slice and
      snapshot/rebalance cost scales with state size, so per-session
      compactness is part of the scenario, not a shortcut.

    ``seconds`` is split across the probes, the comparison arms and
    the four scenarios."""
    return asyncio.run(_run_fleet_section(
        workers, seconds, clients, spec_kind, tuple(spec_params),
        n_shards, max_batch, max_delay_us, seed, state_dir,
        metrics_jsonl, chunk_steps=chunk_steps,
        comparison_spec=comparison_spec))


# --------------------------------------------------------------------------
# The hottrace section (schema 4)
# --------------------------------------------------------------------------


async def _hottrace_arm_round(fleet, model) -> float:
    """One measured slice against one arm; returns steps/s."""
    from repro.serve.loadgen import run_closed_loop
    rep = await run_closed_loop(fleet, model, window=8)
    return rep["achieved_steps_rps"]


async def _run_hottrace_profile(name: str, workers: int,
                                slice_s: float, clients: int,
                                n_shards: int, seed: int,
                                state_dir: str, phase_windows: int,
                                rounds: int,
                                warmup_rounds: int = 1
                                ) -> Dict[str, object]:
    """One workload profile, hottrace on vs off.

    Both arms run ``backend="reference"`` — the hot-trace layer's
    question is *speculative replay vs actually executing the window*,
    so the off arm is the scalar interpreter the memo short-circuits
    (``sides.vectorized`` already covers kernel-vs-scalar).  Arms are
    measured in ABBA-paired rounds against two persistent fleets so
    machine drift hits both equally and the on arm's captured traces
    stay warm across rounds, like a long-lived deployment.

    The churn profile (``phase_windows=0``) reseeds its schedule every
    round: the closed loop laps its schedule and the rounds would
    otherwise re-offer last round's "fresh" windows, which is exactly
    the recurrence churn exists to exclude."""
    import dataclasses

    from repro.api import ExecutionPolicy
    from repro.serve.fleet import ServeFleet
    from repro.serve.loadgen import LoadModel

    chunk = 2048
    base_model = LoadModel(
        n_sessions=32, zipf_s=1.3, spec_kind="binary.gshare",
        spec_params=(("history", 8),), arrival="poisson",
        rate_rps=600.0 if phase_windows else 4000.0,
        seconds=slice_s, clients=min(clients, 16),
        seed=seed, pc_space=48, chunk_steps=chunk,
        phase_windows=phase_windows)

    def model(tag: int) -> "LoadModel":
        if phase_windows:
            # Recurring banks: the same schedule every round *is* the
            # workload (sessions re-running their phase repertoire).
            return base_model
        return dataclasses.replace(base_model, seed=seed + 100 + tag)

    config = ServeConfig(n_shards=n_shards, max_batch=1024,
                         max_delay_us=1000, queue_depth=65536)
    arms: Dict[str, Dict[str, object]] = {}
    policies = {
        "off": ExecutionPolicy(backend="reference"),
        "on": ExecutionPolicy(backend="reference", hottrace=True,
                              hot_threshold=2),
    }
    fleets = {}
    try:
        for arm, policy in policies.items():
            fleet = ServeFleet(
                n_workers=workers, config=config.with_policy(policy),
                state_dir=os.path.join(state_dir, f"{name}-{arm}"),
                outstanding_limit=4096, wal_limit=400_000)
            await fleet.start(recover=False)
            fleets[arm] = fleet
            # Unrecorded warmup laps: predictor tables fill, the on
            # arm's hot windows cross the heat threshold, capture, and
            # converge to their steady pre-state fixed points.
            for w in range(warmup_rounds):
                await _hottrace_arm_round(fleet, model(-1 - w))
        per_round: List[Dict[str, float]] = []
        for i in range(rounds):
            order = ("on", "off") if i % 2 == 0 else ("off", "on")
            rps = {}
            for arm in order:
                rps[arm] = await _hottrace_arm_round(fleets[arm],
                                                     model(i))
            per_round.append(rps)
        for arm, fleet in fleets.items():
            await fleet.poll_stats()
            totals = fleet.stats()["totals"]
            arms[arm] = {
                "steps_rps": round(statistics.median(
                    r[arm] for r in per_round), 1),
                "degraded": totals["degraded"],
            }
            if "hottrace" in totals:
                arms[arm]["hottrace"] = totals["hottrace"]
    finally:
        for fleet in fleets.values():
            await fleet.stop()
    ht = arms["on"].get("hottrace", {})
    windows = max(int(ht.get("windows", 0)), 1)
    off_rps = max(arms["off"]["steps_rps"], 1e-9)
    return {
        "phase_windows": phase_windows,
        "chunk_steps": chunk,
        "model": {"n_sessions": base_model.n_sessions,
                  "zipf_s": base_model.zipf_s,
                  "spec": spec_for(base_model.spec_kind,
                                   **dict(base_model.spec_params))
                          .to_json_dict()},
        "rounds": len(per_round),
        "per_round": [{a: round(r[a], 1) for a in r}
                      for r in per_round],
        "arms": arms,
        "hit_rate": round(int(ht.get("hits", 0)) / windows, 4),
        "steps_saved": int(ht.get("steps_saved", 0)),
        "aborts": int(ht.get("aborts", 0)),
        "abort_mismatch": int(ht.get("abort_mismatch", 0)),
        "speedup": round(arms["on"]["steps_rps"] / off_rps, 3),
    }


async def _run_hottrace_section(workers: int, seconds: float,
                                clients: int, n_shards: int, seed: int,
                                state_dir: Optional[str]
                                ) -> Dict[str, object]:
    import tempfile
    state_dir = state_dir or tempfile.mkdtemp(prefix="bench-hottrace-")
    slice_s = max(seconds / 12.0, 0.6)
    section: Dict[str, object] = {
        "workers": workers,
        "backend": "reference",
        "note": ("hot-trace guarded replay on vs off, identical "
                 "closed-loop Zipf trace-window workload per arm; "
                 "steady_zipf cycles a per-session bank of recurring "
                 "windows (the regime speculation targets), churn "
                 "draws every window fresh (the adversarial bound on "
                 "speculation overhead — hit rate stays 0)"),
        "profiles": {},
    }
    section["profiles"]["steady_zipf"] = await _run_hottrace_profile(
        "steady", workers, slice_s, clients, n_shards, seed + 11,
        state_dir, phase_windows=3, rounds=3, warmup_rounds=3)
    section["profiles"]["churn"] = await _run_hottrace_profile(
        "churn", workers, slice_s, clients, n_shards, seed + 12,
        state_dir, phase_windows=0, rounds=2)
    steady = section["profiles"]["steady_zipf"]
    section["speedup"] = steady["speedup"]
    section["hit_rate"] = steady["hit_rate"]
    section["abort_mismatch"] = (
        steady["abort_mismatch"]
        + section["profiles"]["churn"]["abort_mismatch"])
    section["churn_overhead_frac"] = round(
        1.0 - section["profiles"]["churn"]["speedup"], 3)
    return section


def run_hottrace_bench(workers: int = 2, seconds: float = 8.0,
                       clients: int = 32, n_shards: int = 2,
                       seed: int = 2024,
                       state_dir: Optional[str] = None
                       ) -> Dict[str, object]:
    """The schema-4 ``hottrace`` section: guarded hot-trace replay
    measured on/off over two fleet workload profiles.

    * **steady_zipf** — sessions re-run a small bank of phase windows
      (``phase_windows=4``) under Zipf popularity: the recurrence the
      recorder speculates on.  Headline ``speedup`` (steps/s, on/off)
      and ``hit_rate`` come from here.
    * **churn** — every window is drawn fresh, so nothing ever gets
      hot: hit rate pins at 0 and the profile's inverted speedup is
      the *overhead bound* of heat bookkeeping on the miss path.

    ``abort_mismatch`` aggregates the zero-tolerance counter (a
    speculative commit whose shadow re-execution disagreed) across
    both profiles — any nonzero value is a correctness bug, and the
    CI gate treats it as such."""
    return asyncio.run(_run_hottrace_section(
        workers, seconds, clients, n_shards, seed, state_dir))


def write_report(report: Dict[str, object],
                 path: str = "BENCH_serve.json") -> str:
    """Write the bench report as sorted, indented JSON; return *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
