"""Consistent-hash ring: stable session → worker placement.

The fleet router (:mod:`repro.serve.fleet`) places sessions on worker
processes with a classic consistent-hash ring rather than the
single-process service's ``hash % n`` rule, because the fleet resizes:
``hash % n`` remaps almost every session when ``n`` changes, while a
ring with virtual nodes moves only the ``1/n`` of keys adjacent to the
added (or removed) node's points — the *minimal movement* property the
rebalance protocol and its property tests rely on.

Every hash is the SHA-256-derived :func:`~repro.serve.service.
stable_shard_hash` (never the salted builtin ``hash``), so the mapping
is identical across processes and across restarts — a snapshot taken
by one router instance restores under another with the same node set
and every session lands back on its home worker.

The ring is a plain sorted list of ``(point, node)`` pairs; lookups
are one :func:`bisect.bisect_right`.  Mutation (`add_node` /
`remove_node`) rebuilds the sorted list — node churn is rare and
O(nodes × replicas · log) is nothing next to the process spawn it
accompanies.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.serve.service import stable_shard_hash

#: Virtual points per node.  128 keeps the max/mean key-load ratio of a
#: uniform keyset under ~1.35 for small fleets (the bound the property
#: tests assert) at a memory cost of one (int, str) pair per point.
DEFAULT_REPLICAS = 128


class HashRing:
    """A consistent-hash ring over named nodes (module docstring)."""

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: List[str] = []
        self._points: List[Tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    # -- membership ---------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current members, sorted (stable for iteration/tests)."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        self._points.extend(
            (stable_shard_hash(f"{node}#{replica}"), node)
            for replica in range(self.replicas))
        self._points.sort()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        self._points = [(point, owner) for point, owner in self._points
                        if owner != node]

    # -- lookup -------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The owning node of ``key`` — first ring point clockwise of
        the key's hash (wrapping past the top)."""
        if not self._points:
            raise ValueError("ring has no nodes")
        index = bisect_right(self._points,
                             (stable_shard_hash(key), "￿"))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Key count per node — the balance diagnostic the property
        tests (and ``fleet.stats``) use."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
