"""One fleet worker process: a PredictionService behind a frame link.

Spawned by :class:`repro.serve.fleet.ServeFleet` as ``python -m
repro.serve.worker --connect HOST:PORT --token T --name wN``, the
worker dials back to the router's loopback listener, authenticates
with the spawn token, receives its :class:`~repro.serve.config.
ServeConfig` (and optional :class:`~repro.robust.faults.
FleetFaultPlan`) over the link, and then serves frames
(:func:`repro.serve.protocol.read_frame` framing, module docstring of
:mod:`repro.serve.wal` for the record vocabulary):

====================  =====================================================
router → worker        worker → router
====================  =====================================================
``("batch", wires)``   ``("results", wires)`` when the batch completes
``("open", sid, spec)`` ``("ctl", None)`` / ``("ctl_err", message)``
``("close", sid)``     ``("ctl", served_count)``
``("evict", sids)``    ``("ctl", n_closed)`` (rebalance handoff)
``("restore", chunk)`` ``("ctl", n_sessions)``
``("snapshot", tok)``  ``("snap_part", tok, sessions)``… then
                       ``("snap_done", tok, schema)`` — state ships in
                       bounded chunks; one frame per ~1k sessions
``("ping",)``          ``("pong",)``
``("stats",)``         ``("ctl", totals)`` — live service totals (the
                       hottrace / degrade counters ``fleet.stats`` and
                       ``serve top`` surface without waiting for drain)
``("drain",)``         ``("bye",)`` then a clean exit
====================  =====================================================

Ordering contract: the worker submits every request of a ``batch``
frame, in frame order, from the single reader task before touching the
next frame — so per-session admission order at the router *is*
per-session execution order at the worker, and control frames are
barriers exactly like the single-process service's controls.  Batch
*responses* are gathered and sent by detached tasks, so a slow batch
never stalls the link.

The fault plan runs here, deliberately in the middle of that loop: a
doomed worker ``os._exit``\\ s after submitting its ``kill_after_served``-th
request — mid-batch, unflushed responses and all — which is precisely
the crash the router's WAL replay must make unobservable.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Set

import asyncio

from repro.api import PredictorSpec
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    ERR_RETRY,
    PredictRequest,
    encode_frame,
    read_frame,
    request_from_wire,
    response_to_wire,
)
from repro.serve.service import PredictionService

#: Sessions per snapshot chunk frame.  Bounds any single frame well
#: under MAX_FRAME_BYTES however many sessions a worker holds (the
#: million-session load model makes "all of them in one frame" a
#: non-starter).
SNAP_CHUNK_SESSIONS = 1024


class _WriteGate:
    """Serialise frame writes from the reader loop and the detached
    batch-sender tasks onto one StreamWriter."""

    def __init__(self, writer: "asyncio.StreamWriter") -> None:
        self.writer = writer
        self.lock = asyncio.Lock()

    async def send(self, payload: object) -> None:
        async with self.lock:
            self.writer.write(encode_frame(payload))
            await self.writer.drain()


class _Doom:
    """Evaluates the fault plan on the worker's hot path."""

    def __init__(self, plan, index: int) -> None:
        self.kill_point: Optional[int] = (
            plan.kill_point(index) if plan is not None else None)
        self.stall_s: float = (plan.stall_seconds(index)
                               if plan is not None else 0.0)
        self.submitted = 0

    def tick(self) -> None:
        """One request is about to be submitted; die on schedule."""
        self.submitted += 1
        if self.kill_point is not None and self.submitted > self.kill_point:
            # A mid-batch hard death: no drain, no flush, no goodbye.
            os._exit(86)


async def _run_batch(service: PredictionService, gate: _WriteGate,
                     requests: List[PredictRequest], doom: _Doom) -> None:
    """Submit one batch in order (caller context: the reader task),
    then gather + reply from a detached task."""
    futures = []
    for request in requests:
        doom.tick()
        future = service.submit(request)
        futures.append(future)
    responses = [await f for f in futures]
    for response in responses:
        # The router sizes our queues so admission never rejects; a
        # retry-after here means that invariant broke and silently
        # skipping the state update would corrupt WAL-replay recovery.
        assert response.error != ERR_RETRY, (
            "worker shard rejected an accepted request — router "
            "outstanding cap exceeds worker queue depth")
    await gate.send(("results", [response_to_wire(r)
                                 for r in responses]))


async def _worker(host: str, port: int, token: str, name: str) -> int:
    reader, writer = await asyncio.open_connection(host, port)
    gate = _WriteGate(writer)
    await gate.send(("hello", token, name, os.getpid()))
    kind, *rest = await read_frame(reader)
    if kind != "config":
        raise RuntimeError(f"expected config frame, got {kind!r}")
    config, plan, index = rest
    assert isinstance(config, ServeConfig)
    doom = _Doom(plan, index)
    service = PredictionService(config)
    await service.start()
    pending: Set["asyncio.Task"] = set()
    try:
        while True:
            try:
                frame = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                break  # router gone: nothing to answer to
            kind = frame[0]
            if kind == "batch":
                if doom.stall_s:
                    await asyncio.sleep(doom.stall_s)
                requests = [request_from_wire(w) for w in frame[1]]
                task = asyncio.ensure_future(
                    _run_batch(service, gate, requests, doom))
                pending.add(task)
                task.add_done_callback(pending.discard)
                # _run_batch submits synchronously up to its first
                # await; yield so submission happens before the next
                # frame is parsed, preserving admission order.
                await asyncio.sleep(0)
            elif kind == "open":
                _, session_id, spec_dict = frame
                try:
                    await service.open_session(
                        session_id, PredictorSpec.from_json_dict(spec_dict))
                    await gate.send(("ctl", None))
                except Exception as exc:
                    await gate.send(("ctl_err",
                                     f"{type(exc).__name__}: {exc}"))
            elif kind == "close":
                served = await service.close_session(frame[1])
                await gate.send(("ctl", served))
            elif kind == "evict":
                closed = 0
                for session_id in frame[1]:
                    if await service.close_session(session_id) is not None:
                        closed += 1
                await gate.send(("ctl", closed))
            elif kind == "restore":
                count = await service.restore_payload(frame[1])
                await gate.send(("ctl", count))
            elif kind == "snapshot":
                # Controls are shard barriers: the payload reflects
                # every request submitted before this frame.
                payload = await service.snapshot_payload()
                items = list(payload["sessions"].items())
                token = frame[1]
                for i in range(0, len(items), SNAP_CHUNK_SESSIONS):
                    chunk = dict(items[i:i + SNAP_CHUNK_SESSIONS])
                    await gate.send(("snap_part", token, chunk))
                await gate.send(("snap_done", token,
                                 payload.get("schema", 1)))
            elif kind == "ping":
                await gate.send(("pong",))
            elif kind == "stats":
                await gate.send(("ctl", service.stats()["totals"]))
            elif kind == "drain":
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
                await service.stop()
                await gate.send(("bye", service.stats()["totals"]))
                break
            else:
                raise RuntimeError(f"unknown frame kind {kind!r}")
    finally:
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if service.accepting:
            await service.stop()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass
    return 0


def main(argv=None) -> int:
    """Entry point for ``python -m repro.serve.worker``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.worker",
        description="Fleet worker process (spawned by repro.serve.fleet)")
    parser.add_argument("--connect", required=True,
                        help="router listener as HOST:PORT")
    parser.add_argument("--token", required=True,
                        help="spawn token expected by the router")
    parser.add_argument("--name", required=True, help="worker name")
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    return asyncio.run(_worker(host, int(port), args.token, args.name))


if __name__ == "__main__":
    sys.exit(main())
