"""repro.serve — async micro-batching prediction service.

An asyncio front end over the predictor families: sessions are sharded
across single-writer workers (no locks), requests coalesce into
micro-batches executed on the :mod:`repro.fastpath` kernels with a
scalar reference fallback, bounded queues reject with ``retry-after``
under load, and session state snapshots/restores through the
:mod:`repro.parallel.cache` envelope machinery.

Past one process, :class:`ServeFleet` consistent-hashes sessions onto
N worker subprocesses (each a full ``PredictionService``) behind a
router with a write-ahead log: worker death recovers by snapshot +
WAL replay, ``resize`` migrates only the sessions whose ring owner
changes, and :mod:`repro.serve.loadgen` offers Zipf/Poisson open-loop
traffic to either topology.

Entry points::

    from repro.serve import PredictionService, ServeConfig
    from repro.serve import PredictRequest, PredictResponse

    async with PredictionService(ServeConfig(n_shards=4)) as svc:
        await svc.open_session("s", spec_for("hmp.hybrid"))
        r = await svc.request(PredictRequest("s", op="step",
                                             pc=0x40, outcome=1))

or from a shell: ``python -m repro.serve serve`` / ``bench``.
"""

from repro.serve.batch import ServeInvariantViolation, invariants_enabled
from repro.serve.config import ServeConfig
from repro.serve.fleet import FleetError, ServeFleet
from repro.serve.handle import (
    JsonlHandle,
    ServeHandle,
    as_handle,
    close_handle,
    connect_handle,
)
from repro.serve.loadgen import (
    LoadModel,
    build_schedule,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.net import JsonlClient, serve_stdio, serve_tcp
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_CLOSED,
    ERR_INTERNAL,
    ERR_RETRY,
    ERR_UNKNOWN_SESSION,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RetryAfter,
)
from repro.serve.ring import HashRing
from repro.serve.service import PredictionService, stable_shard_hash
from repro.serve.snapshot import load_snapshot, save_snapshot, snapshot_key
from repro.serve.wal import WriteAheadLog

__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_CLOSED",
    "ERR_INTERNAL",
    "ERR_RETRY",
    "ERR_UNKNOWN_SESSION",
    "FleetError",
    "HashRing",
    "JsonlClient",
    "JsonlHandle",
    "LoadModel",
    "ServeHandle",
    "as_handle",
    "close_handle",
    "connect_handle",
    "PredictRequest",
    "PredictResponse",
    "PredictionService",
    "ProtocolError",
    "RetryAfter",
    "ServeConfig",
    "ServeFleet",
    "ServeInvariantViolation",
    "WriteAheadLog",
    "build_schedule",
    "invariants_enabled",
    "run_closed_loop",
    "run_open_loop",
    "load_snapshot",
    "save_snapshot",
    "serve_stdio",
    "serve_tcp",
    "snapshot_key",
    "stable_shard_hash",
]
