"""repro.serve — async micro-batching prediction service.

An asyncio front end over the predictor families: sessions are sharded
across single-writer workers (no locks), requests coalesce into
micro-batches executed on the :mod:`repro.fastpath` kernels with a
scalar reference fallback, bounded queues reject with ``retry-after``
under load, and session state snapshots/restores through the
:mod:`repro.parallel.cache` envelope machinery.

Entry points::

    from repro.serve import PredictionService, ServeConfig
    from repro.serve import PredictRequest, PredictResponse

    async with PredictionService(ServeConfig(n_shards=4)) as svc:
        await svc.open_session("s", spec_for("hmp.hybrid"))
        r = await svc.request(PredictRequest("s", op="step",
                                             pc=0x40, outcome=1))

or from a shell: ``python -m repro.serve serve`` / ``bench``.
"""

from repro.serve.batch import ServeInvariantViolation, invariants_enabled
from repro.serve.config import ServeConfig
from repro.serve.net import JsonlClient, serve_stdio, serve_tcp
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_CLOSED,
    ERR_INTERNAL,
    ERR_RETRY,
    ERR_UNKNOWN_SESSION,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RetryAfter,
)
from repro.serve.service import PredictionService, stable_shard_hash
from repro.serve.snapshot import load_snapshot, save_snapshot, snapshot_key

__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_CLOSED",
    "ERR_INTERNAL",
    "ERR_RETRY",
    "ERR_UNKNOWN_SESSION",
    "JsonlClient",
    "PredictRequest",
    "PredictResponse",
    "PredictionService",
    "ProtocolError",
    "RetryAfter",
    "ServeConfig",
    "ServeInvariantViolation",
    "invariants_enabled",
    "load_snapshot",
    "save_snapshot",
    "serve_stdio",
    "serve_tcp",
    "snapshot_key",
    "stable_shard_hash",
]
