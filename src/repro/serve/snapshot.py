"""Durable service snapshots through the ResultCache envelope.

A snapshot is the quiesced session payload of
:meth:`~repro.serve.service.PredictionService.snapshot_payload`, stored
as a content-addressed pickle envelope with the exact machinery of
:mod:`repro.parallel.cache`: the SHA-256 key binds the snapshot label
and package version, writes are atomic renames, and loads re-verify
schema/version/material — a stale or corrupted snapshot degrades to
"not found" instead of feeding garbage predictor state back into a
service.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.parallel.cache import ResultCache, content_key, key_material


def snapshot_key(label: str) -> Tuple[str, str]:
    """(hex key, material) addressing one labelled snapshot."""
    material = key_material("serve-snapshot", label)
    return content_key(material), material


def save_snapshot(root: str, label: str,
                  payload: Dict[str, object]) -> str:
    """Store a snapshot payload under ``root``; returns its hex key."""
    cache = ResultCache(root)
    key, material = snapshot_key(label)
    cache.store(key, material, payload)
    return key


def load_snapshot(root: str, label: str) -> Optional[Dict[str, object]]:
    """The stored payload, or None when absent/stale/corrupt."""
    cache = ResultCache(root)
    key, material = snapshot_key(label)
    hit, payload = cache.load(key, material)
    return payload if hit else None
