"""ServeHandle: one client interface for every deployment topology.

Before this module the repo had two client entry points — in-process
submission against a :class:`~repro.serve.service.PredictionService` /
:class:`~repro.serve.fleet.ServeFleet` object, and the line-at-a-time
:class:`~repro.serve.net.JsonlClient` for the TCP transport — and
bench/loadgen/tests each picked one by hand.  :class:`ServeHandle` is
the shared protocol (structural, ``runtime_checkable``): anything that
can open sessions, submit data requests as futures, and await
responses.  The service and the fleet already satisfy it natively;
:class:`JsonlHandle` lifts the JSONL TCP transport to the same shape
(pipelined, futures correlated by ``(session_id, seq)``), so
:func:`repro.serve.loadgen.run_open_loop` — and anything else written
against the duck type — drives a remote server exactly like a local
object.

::

    handle = await connect_handle("127.0.0.1", 7073)   # remote
    handle = as_handle(service_or_fleet)               # local (no-op)
    report = await run_open_loop(handle, model)
    await close_handle(handle)
"""

from __future__ import annotations

from typing import Deque, Dict, Optional, Protocol, Tuple, runtime_checkable

import asyncio
from collections import deque

from repro.api import PredictorSpec
from repro.serve.protocol import (
    ERR_INTERNAL,
    PredictRequest,
    PredictResponse,
)


@runtime_checkable
class ServeHandle(Protocol):
    """The client surface bench/loadgen/tests target.

    :class:`~repro.serve.service.PredictionService` and
    :class:`~repro.serve.fleet.ServeFleet` conform as-is (``submit``
    returns an already-routed future; rejections resolve it in-band);
    :class:`JsonlHandle` conforms over a socket.
    """

    async def open_session(self, session_id: str,
                           spec: PredictorSpec) -> None: ...

    async def close_session(self, session_id: str) -> Optional[int]: ...

    def submit(self, request: PredictRequest
               ) -> "asyncio.Future[PredictResponse]": ...

    async def request(self, request: PredictRequest) -> PredictResponse: ...


class JsonlHandle:
    """A pipelined JSONL TCP client speaking the :class:`ServeHandle`
    protocol.

    Unlike :class:`~repro.serve.net.JsonlClient` (one in-flight
    round trip, caller-managed correlation), the handle keeps any
    number of requests in flight: responses come back in completion
    order and are matched to their futures by ``(session_id, seq)`` —
    per-key FIFO, matching the service's per-session admission-order
    guarantee.
    """

    def __init__(self, reader: "asyncio.StreamReader",
                 writer: "asyncio.StreamWriter") -> None:
        self.reader = reader
        self.writer = writer
        self._pending: Dict[Tuple[str, int],
                            Deque["asyncio.Future[PredictResponse]"]] = {}
        #: Responses whose (session_id, seq) matched no pending future
        #: (duplicate or misaddressed server replies).  They are
        #: counted, not silently dropped, and never touch the in-flight
        #: accounting — which is derived from the pending map so it
        #: cannot drift.
        self.unmatched = 0
        self._pump: Optional["asyncio.Task"] = None
        self._drainer: Optional["asyncio.Task"] = None
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "JsonlHandle":
        reader, writer = await asyncio.open_connection(host, port)
        handle = cls(reader, writer)
        handle._pump = asyncio.get_running_loop().create_task(
            handle._read_loop(), name="repro-serve-handle-pump")
        return handle

    # -- the ServeHandle surface ----------------------------------------

    def submit(self, request: PredictRequest
               ) -> "asyncio.Future[PredictResponse]":
        """Send one data request; never blocks.  The returned future
        resolves with the response (or an in-band transport error)."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[PredictResponse]" = loop.create_future()
        if self._closed:
            future.set_result(PredictResponse(
                session_id=request.session_id, seq=request.seq, ok=False,
                error=f"{ERR_INTERNAL}: handle closed"))
            return future
        key = (request.session_id, request.seq)
        self._pending.setdefault(key, deque()).append(future)
        self.writer.write((request.to_json() + "\n").encode("utf-8"))
        if self._drainer is None or self._drainer.done():
            # Backpressure without blocking submit: one lazy drainer
            # task flushes the socket buffer behind the pipeline.
            self._drainer = loop.create_task(self._drain())
        return future

    async def request(self, request: PredictRequest) -> PredictResponse:
        return await self.submit(request)

    async def open_session(self, session_id: str,
                           spec: PredictorSpec) -> None:
        response = await self.request(PredictRequest(
            session_id, op="open", spec=spec.to_json_dict()))
        if not response.ok:
            raise RuntimeError(
                f"open {session_id!r} failed: {response.error}")

    async def close_session(self, session_id: str) -> Optional[int]:
        response = await self.request(
            PredictRequest(session_id, op="close"))
        if not response.ok:
            raise RuntimeError(
                f"close {session_id!r} failed: {response.error}")
        return response.result

    async def ping(self) -> None:
        await self.request(PredictRequest("?", op="ping"))

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet answered — derived from the
        pending map, so no reply (matched, duplicate or misaddressed)
        can ever skew it."""
        return sum(len(queue) for queue in self._pending.values())

    # -- plumbing --------------------------------------------------------

    async def _drain(self) -> None:
        try:
            await self.writer.drain()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass

    async def _read_loop(self) -> None:
        error = "server closed the connection"
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                response = PredictResponse.from_json(
                    line.decode("utf-8"))
                queue = self._pending.get(
                    (response.session_id, response.seq))
                if queue:
                    future = queue.popleft()
                    if not queue:
                        del self._pending[(response.session_id,
                                           response.seq)]
                    if not future.done():
                        future.set_result(response)
                else:
                    self.unmatched += 1
        except asyncio.CancelledError:
            error = "handle closed"
        except Exception as exc:  # pragma: no cover - transport fault
            error = f"{type(exc).__name__}: {exc}"
        finally:
            self._fail_pending(error)

    def _fail_pending(self, error: str) -> None:
        """Resolve every in-flight future in-band on teardown: a lost
        connection must never strand an awaiter."""
        self._closed = True
        for (session_id, seq), queue in self._pending.items():
            for future in queue:
                if not future.done():
                    future.set_result(PredictResponse(
                        session_id=session_id, seq=seq, ok=False,
                        error=f"{ERR_INTERNAL}: {error}"))
        self._pending.clear()

    async def aclose(self) -> None:
        self._closed = True
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
        if self._drainer is not None and not self._drainer.done():
            self._drainer.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass


def as_handle(target) -> ServeHandle:
    """Adapt ``target`` to a :class:`ServeHandle`.

    Services, fleets and :class:`JsonlHandle` instances pass through
    unchanged (they already conform); anything else is a type error —
    loudly, at adaptation time, not deep inside a load loop.
    """
    if isinstance(target, ServeHandle):
        return target
    raise TypeError(
        f"{type(target).__name__} does not provide the ServeHandle "
        f"surface (open_session/close_session/submit/request)")


async def connect_handle(host: str, port: int) -> JsonlHandle:
    """Open a :class:`JsonlHandle` to a ``repro.serve serve`` TCP
    endpoint."""
    return await JsonlHandle.connect(host, port)


async def close_handle(handle: ServeHandle) -> None:
    """Release a handle's client-side resources (no-op for local
    service/fleet objects, which own their lifecycle)."""
    aclose = getattr(handle, "aclose", None)
    if aclose is not None:
        await aclose()
