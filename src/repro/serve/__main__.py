"""CLI for the prediction service.

``python -m repro.serve serve``  — run the JSONL service over TCP
(default) or stdio.  With ``--workers N`` (N > 1) the listener fronts
a multi-process :class:`~repro.serve.fleet.ServeFleet` instead of a
single in-process service.  With ``--metrics-dir DIR`` a background
:class:`~repro.obs.timeseries.TimeSeriesExporter` samples the live
metrics registry into ``DIR/metrics.jsonl`` (one JSON object per
sample) and ``DIR/metrics.prom`` (Prometheus text exposition).

``python -m repro.serve bench``  — load generator; writes
``BENCH_serve.json`` comparing scalar per-request execution against
vectorized micro-batching, with queue-sojourn/service-time separation
and a telemetry on/off overhead comparison (see
:mod:`repro.serve.bench`).  ``--fleet`` adds the schema-3 ``fleet``
section: open-loop Zipf/Poisson scenarios (steady, overload,
rebalance, kill-a-worker chaos) against an N-process fleet.
``--hottrace`` adds the schema-4 ``hottrace`` section: guarded
hot-trace replay measured on vs off (hit rate, abort counters,
steps/s speedup) over recurring-window and fresh-window profiles.

``python -m repro.serve top``    — live terminal dashboard over the
exported metrics stream (rps, queue depth, batch-size distribution,
per-stage latency); run it next to a ``serve --metrics-dir`` process.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import asyncio

from repro.serve.bench import run_bench, write_report
from repro.serve.config import ServeConfig
from repro.serve.service import PredictionService


def _add_config_flags(parser: "argparse.ArgumentParser") -> None:
    parser.add_argument("--shards", type=int, default=4,
                        help="number of single-writer worker shards")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="micro-batch flush size")
    parser.add_argument("--max-delay-us", type=int, default=500,
                        help="micro-batch flush deadline (µs)")
    parser.add_argument("--queue-depth", type=int, default=8192,
                        help="bounded per-shard queue depth")


async def _run_serve(args: "argparse.Namespace") -> int:
    config = ServeConfig(
        n_shards=args.shards, max_batch=args.max_batch,
        max_delay_us=args.max_delay_us, queue_depth=args.queue_depth,
        backend=args.backend, telemetry=not args.no_telemetry,
        trace_sample_shift=args.trace_sample_shift)
    if args.parsed_policy is not None:
        config = config.with_policy(args.parsed_policy)
    if args.workers and args.workers > 1:
        from repro.serve.fleet import ServeFleet
        service = ServeFleet(n_workers=args.workers, config=config,
                             state_dir=args.state_dir)
    else:
        service = PredictionService(config)
    exporter = None
    if args.metrics_dir:
        from repro.obs.timeseries import TimeSeriesExporter
        os.makedirs(args.metrics_dir, exist_ok=True)
        exporter = TimeSeriesExporter(
            service.metrics_snapshot,
            interval_ms=args.metrics_interval_ms,
            jsonl_path=os.path.join(args.metrics_dir, "metrics.jsonl"),
            prom_path=os.path.join(args.metrics_dir, "metrics.prom"))
        exporter.start()
        print(f"exporting metrics to {args.metrics_dir} every "
              f"{args.metrics_interval_ms}ms", file=sys.stderr)
    await service.start()
    try:
        if args.stdio:
            from repro.serve.net import serve_stdio
            await serve_stdio(service)
        else:
            from repro.serve.net import serve_tcp
            server = await serve_tcp(service, args.host, args.port)
            addrs = ", ".join(str(sock.getsockname())
                              for sock in server.sockets or [])
            print(f"repro.serve listening on {addrs}", file=sys.stderr)
            async with server:
                await server.serve_forever()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await service.stop()
        if exporter is not None:
            exporter.stop()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Micro-batching load-prediction service")
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="run the JSONL service")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7199)
    serve_p.add_argument("--stdio", action="store_true",
                        help="serve over stdin/stdout instead of TCP")
    serve_p.add_argument("--backend", default=None,
                        choices=("reference", "vectorized"),
                        help="fast-path backend (default: process default)")
    serve_p.add_argument("--policy", default=None, metavar="JSON",
                        help="ExecutionPolicy as JSON, e.g. "
                             "'{\"backend\": \"vectorized\", "
                             "\"hottrace\": true}' — supersedes "
                             "--backend (passing both is an error)")
    serve_p.add_argument("--no-telemetry", action="store_true",
                        help="disable per-request span tracing")
    serve_p.add_argument("--trace-sample-shift", type=int, default=6,
                        help="trace 1 request in 2**N (0 = all)")
    serve_p.add_argument("--metrics-dir", default=None,
                        help="export metrics.jsonl + metrics.prom here")
    serve_p.add_argument("--metrics-interval-ms", type=int, default=500,
                        help="time-series sampling period")
    serve_p.add_argument("--workers", type=int, default=1,
                        help="worker processes; >1 serves a ServeFleet "
                             "(consistent-hash routed, WAL-recovered)")
    serve_p.add_argument("--state-dir", default=None,
                        help="fleet durable state (WALs, snapshots, "
                             "manifest); default: a fresh temp dir")
    _add_config_flags(serve_p)

    bench_p = sub.add_parser("bench", help="closed-loop load generator")
    bench_p.add_argument("--seconds", type=float, default=10.0,
                         help="wall-clock duration per side")
    bench_p.add_argument("--clients", type=int, default=64,
                         help="concurrent closed-loop clients")
    bench_p.add_argument("--window", type=int, default=1024,
                         help="pipelined requests outstanding per client "
                              "(= kernel run length)")
    bench_p.add_argument("--spec", default="hmp.hybrid",
                         help="PredictorSpec kind each session serves")
    bench_p.add_argument("--shards", type=int, default=2)
    bench_p.add_argument("--max-batch", type=int, default=4096)
    bench_p.add_argument("--max-delay-us", type=int, default=2000)
    bench_p.add_argument("--queue-depth", type=int, default=65536)
    bench_p.add_argument("--backend", default="both",
                         choices=("both", "reference", "vectorized"),
                         help="which side(s) to run")
    bench_p.add_argument("--warmup", type=float, default=0.1,
                         help="fraction of the run excluded from "
                              "latency quantiles (cold start)")
    bench_p.add_argument("--no-telemetry-compare", action="store_true",
                         help="skip the extra telemetry-off side")
    bench_p.add_argument("--out", default="BENCH_serve.json",
                         help="report path")
    bench_p.add_argument("--fleet", action="store_true",
                         help="also run the multi-process fleet "
                              "scenarios (schema-3 `fleet` section)")
    bench_p.add_argument("--fleet-workers", type=int, default=4,
                         help="worker processes in the fleet section")
    bench_p.add_argument("--fleet-seconds", type=float, default=None,
                         help="wall-clock budget of the fleet section "
                              "(default: --seconds)")
    bench_p.add_argument("--fleet-only", action="store_true",
                         help="run only the fleet section (sides are "
                              "skipped; implies --fleet)")
    bench_p.add_argument("--fleet-metrics", default=None,
                         help="export fleet metrics.jsonl time series "
                              "to this path during the fleet run")
    bench_p.add_argument("--fleet-spec", default="hmp.gshare",
                         help="PredictorSpec kind for the fleet "
                              "scenarios (compact state recommended; "
                              "see repro.serve.bench.run_fleet_bench)")
    bench_p.add_argument("--hottrace", action="store_true",
                         help="also run the hot-trace replay on/off "
                              "profiles (schema-4 `hottrace` section)")
    bench_p.add_argument("--hottrace-workers", type=int, default=2,
                         help="worker processes per hottrace arm")
    bench_p.add_argument("--hottrace-seconds", type=float, default=None,
                         help="wall-clock budget of the hottrace "
                              "section (default: --seconds)")
    bench_p.add_argument("--hottrace-only", action="store_true",
                         help="run only the hottrace section (sides "
                              "are skipped)")

    top_p = sub.add_parser("top", help="live metrics dashboard")
    top_p.add_argument("--metrics-dir", default=None,
                       help="directory a serve --metrics-dir writes to")
    top_p.add_argument("--path", default=None,
                       help="explicit metrics.jsonl path (overrides "
                            "--metrics-dir)")
    top_p.add_argument("--interval", type=float, default=1.0,
                       help="refresh period (seconds)")
    top_p.add_argument("--once", action="store_true",
                       help="render a single frame and exit")

    args = parser.parse_args(argv)
    if args.command == "serve":
        if args.policy and args.backend:
            parser.error("--policy and --backend are mutually "
                         "exclusive (policy.backend wins)")
        if args.policy:
            # Usage-error contract (docs/robustness.md): malformed
            # JSON or bad field values exit 2 with a clean error line,
            # they never reach the service as a traceback.
            from repro.api import ExecutionPolicy
            try:
                args.parsed_policy = ExecutionPolicy.from_json(
                    args.policy)
            except ValueError as exc:
                parser.error(f"--policy: {exc}")
        else:
            args.parsed_policy = None
        return asyncio.run(_run_serve(args))
    if args.command == "top":
        from repro.serve.top import run_top
        path = args.path or os.path.join(args.metrics_dir or ".",
                                         "metrics.jsonl")
        return run_top(path, interval_s=args.interval, once=args.once)

    if args.fleet_only or args.hottrace_only:
        from repro.obs.provenance import collect_provenance
        from repro.serve.bench import BENCH_SCHEMA
        import time as _time
        report = {"bench": "repro.serve", "schema": BENCH_SCHEMA,
                  "generated_unix": int(_time.time()),
                  "provenance": collect_provenance(), "sides": {}}
    else:
        report = run_bench(
            seconds=args.seconds, clients=args.clients,
            window=args.window, spec_kind=args.spec,
            n_shards=args.shards, max_batch=args.max_batch,
            max_delay_us=args.max_delay_us,
            queue_depth=args.queue_depth, sides=args.backend,
            warmup_frac=args.warmup,
            telemetry_compare=not args.no_telemetry_compare)
    if args.fleet or args.fleet_only:
        from repro.serve.bench import run_fleet_bench
        fleet_params = ((("history", 7),)
                        if args.fleet_spec == "hmp.gshare" else ())
        report["fleet"] = run_fleet_bench(
            workers=args.fleet_workers,
            seconds=(args.fleet_seconds if args.fleet_seconds is not None
                     else args.seconds),
            clients=args.clients, spec_kind=args.fleet_spec,
            spec_params=fleet_params,
            n_shards=args.shards, max_batch=args.max_batch,
            max_delay_us=args.max_delay_us,
            metrics_jsonl=args.fleet_metrics)
    if args.hottrace or args.hottrace_only:
        from repro.serve.bench import run_hottrace_bench
        report["hottrace"] = run_hottrace_bench(
            workers=args.hottrace_workers,
            seconds=(args.hottrace_seconds
                     if args.hottrace_seconds is not None
                     else args.seconds),
            clients=args.clients, n_shards=args.shards)
    path = write_report(report, args.out)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
