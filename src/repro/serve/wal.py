"""Bounded write-ahead log of accepted fleet requests.

The router (:mod:`repro.serve.fleet`) appends every accepted record —
session opens/closes and data requests — to its target worker's WAL
*before* forwarding it.  That single ordering rule is the whole
durability story: a worker's in-memory predictor state is always
``last persisted snapshot + the WAL suffix``, so a dead worker is
rebuilt by restoring the snapshot and replaying the suffix, and a
restarted router recovers every worker the same way.  "Accepted"
therefore means *recorded*: an accepted request can be re-answered
after any crash, and zero accepted requests are ever lost.

The log is bounded by the snapshot protocol, not by dropping records:
when ``records`` grows past the fleet's ``wal_limit`` the router
snapshots the worker and calls :meth:`truncate` with the :meth:`mark`
taken at the snapshot barrier — every truncated record's effect is in
the snapshot, every surviving record's is not, so replay applies each
accepted update exactly once (the no-duplicate-training invariant the
chaos tests assert bit-for-bit).

On-disk format: length-prefixed pickled *batches* of records (the
:data:`~repro.serve.protocol.FRAME_HEADER` framing of the worker
link), appended and flushed per admission flush.  Records are plain
tuples::

    ("open",  session_id, spec_json_dict)
    ("close", session_id)
    ("req",   request_wire_tuple)       # protocol.request_to_wire

A torn final frame (a crash mid-append) is detected by the length
prefix and discarded on open — recovery never feeds a half-written
record to a worker.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Sequence, Tuple

from repro.serve.protocol import FRAME_HEADER, MAX_FRAME_BYTES

Record = Tuple


def _read_batches(path: str) -> Tuple[List[List[Record]], int]:
    """All complete record batches in ``path`` plus the byte offset of
    the first incomplete/corrupt frame (== file size when clean)."""
    batches: List[List[Record]] = []
    clean_end = 0
    if not os.path.exists(path):
        return batches, clean_end
    with open(path, "rb") as handle:
        while True:
            header = handle.read(FRAME_HEADER.size)
            if len(header) < FRAME_HEADER.size:
                break
            (length,) = FRAME_HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                break
            body = handle.read(length)
            if len(body) < length:
                break
            try:
                batch = pickle.loads(body)
            except Exception:
                break
            batches.append(list(batch))
            clean_end = handle.tell()
    return batches, clean_end


class WriteAheadLog:
    """Append-only record log for one worker (module docstring)."""

    def __init__(self, path: str) -> None:
        self.path = path
        batches, clean_end = _read_batches(path)
        if os.path.exists(path) and clean_end < os.path.getsize(path):
            # Torn tail from a crash mid-append: drop it before the
            # next append could concatenate garbage with a new frame.
            with open(path, "rb+") as handle:
                handle.truncate(clean_end)
        #: Records currently in the log (survivors of truncation).
        self.records = sum(len(batch) for batch in batches)
        self._handle = open(path, "ab")

    # -- writing ------------------------------------------------------------

    def append(self, records: Sequence[Record]) -> None:
        """Durably append one batch of records (write-ahead: callers
        must append before forwarding)."""
        if not records:
            return
        body = pickle.dumps(list(records),
                            protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.write(FRAME_HEADER.pack(len(body)))
        self._handle.write(body)
        self._handle.flush()
        self.records += len(records)

    def mark(self) -> int:
        """The current record count — take it at a snapshot barrier,
        hand it back to :meth:`truncate` once the snapshot persisted."""
        return self.records

    def truncate(self, upto: int) -> None:
        """Drop the first ``upto`` records (their effects are now in a
        persisted snapshot).  Atomic: rewrite-then-rename, so a crash
        mid-truncate leaves the old log, which merely replays more."""
        if upto <= 0:
            return
        self._handle.close()
        batches, _ = _read_batches(self.path)
        flat = [record for batch in batches for record in batch]
        survivors = flat[upto:]
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            if survivors:
                body = pickle.dumps(survivors,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                handle.write(FRAME_HEADER.pack(len(body)))
                handle.write(body)
        os.replace(tmp, self.path)
        self.records = len(survivors)
        self._handle = open(self.path, "ab")

    # -- reading ------------------------------------------------------------

    def replay(self) -> List[Record]:
        """Every surviving record, in append order."""
        self._handle.flush()
        batches, _ = _read_batches(self.path)
        return [record for batch in batches for record in batch]

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
