"""A single-writer worker shard: bounded queue → micro-batches.

Each shard owns the sessions hashed onto it and is the only task that
ever touches their predictor tables — the lock-free invariant the
sharding exists for.  Its loop:

1. block on the first queued item;
2. coalesce more items until ``max_batch`` or ``max_delay_us`` after
   the first item (the flush policy);
3. execute the batch: controls are barriers, data requests group by
   session with per-session order preserved, maximal ``step`` runs go
   to the fast-path kernels (:mod:`repro.serve.batch`);
4. resolve each item's future with its :class:`PredictResponse`.

Admission happens on the *caller's* side (:meth:`Shard.try_submit`):
a full queue returns a ``retry-after`` rejection instead of blocking,
which is the whole backpressure story — nothing in the service ever
buffers unboundedly.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from repro.common.stats import StreamingHistogram
from repro.fastpath.hottrace import HotTraceEngine
from repro.obs.events import EventKind
from repro.serve.batch import (
    VIA_HOTTRACE,
    VIA_KERNEL,
    VIA_SCALAR,
    apply_predict,
    apply_update,
    degrade_reason,
    execute_replay_ex,
    execute_steps_ex,
)
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_UNKNOWN_SESSION,
    PredictRequest,
    PredictResponse,
)
from repro.serve.session import Session


def _now_us() -> int:
    return time.monotonic_ns() // 1000


class _Item:
    """One queued request with its response future and (optional)
    trace span — the span rides the queue with the request so every
    stage mark lands on the right timeline."""

    __slots__ = ("request", "future", "span")

    def __init__(self, request: PredictRequest,
                 future: "asyncio.Future[PredictResponse]",
                 span=None) -> None:
        self.request = request
        self.future = future
        self.span = span


class _Control:
    """A barrier op executed by the shard task (open/close/snapshot/
    restore/drain).  ``payload`` is op-specific; the future resolves
    with the op's result."""

    __slots__ = ("op", "payload", "future")

    def __init__(self, op: str, payload: object,
                 future: "asyncio.Future") -> None:
        self.op = op
        self.payload = payload
        self.future = future


class Shard:
    """One worker shard (see module docstring)."""

    def __init__(self, index: int, config: ServeConfig, obs=None,
                 tracer=None) -> None:
        self.index = index
        self.config = config
        self.obs = obs
        self.tracer = tracer
        #: Micro-batch size distribution (one record per flush) for the
        #: live dashboard; bounded memory whatever the flush rate.
        self.batch_sizes = StreamingHistogram("batch_size")
        self.sessions: Dict[str, Session] = {}
        #: Created in :meth:`start`, inside the running loop — keeps
        #: construction loop-agnostic on every supported Python.
        self.queue: Optional["asyncio.Queue"] = None
        self.task: Optional["asyncio.Task"] = None
        self.served = 0
        self.batches = 0
        self.kernel_batches = 0
        self.rejected = 0
        self.max_batch_seen = 0
        #: The execution policy all runs on this shard follow; the
        #: hot-trace engine exists only when the policy enables it.
        self.policy = config.effective_policy()
        self.hottrace: Optional[HotTraceEngine] = (
            HotTraceEngine(self.policy) if self.policy.hottrace else None)
        self.hottrace_batches = 0
        #: Vectorized-eligible runs that landed on the scalar loop
        #: (satellite of docs/serving.md: capacity numbers must not be
        #: quietly off).  The obs event fires once per (session,
        #: reason); the counter counts every degraded run.
        self.degraded = 0
        self._degrade_announced: set = set()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.task is None:
            self.queue = asyncio.Queue(maxsize=self.config.queue_depth)
            self.task = asyncio.get_running_loop().create_task(
                self._run(), name=f"repro-serve-shard-{self.index}")

    async def drain(self) -> None:
        """Process everything already admitted, then stop the task."""
        if self.task is None:
            return
        future = asyncio.get_running_loop().create_future()
        await self.queue.put(_Control("drain", None, future))
        await future
        await self.task
        self.task = None
        if self.obs is not None:
            self.obs.emit(EventKind.SERVE_DRAIN, _now_us(),
                          shard=self.index, served=self.served)

    # -- admission (runs on the caller's task) ------------------------------

    def try_submit(self, request: PredictRequest,
                   future: "asyncio.Future[PredictResponse]",
                   span=None) -> bool:
        """Admit a data request, or reject with ``retry-after``."""
        try:
            self.queue.put_nowait(_Item(request, future, span))
        except asyncio.QueueFull:
            self.rejected += 1
            if self.obs is not None:
                self.obs.emit(EventKind.SERVE_REJECT, _now_us(),
                              shard=self.index, depth=self.queue.qsize())
            return False
        if self.obs is not None:
            self.obs.emit(EventKind.SERVE_ENQUEUE, _now_us(),
                          shard=self.index, depth=self.queue.qsize())
        return True

    async def control(self, op: str, payload: object = None) -> object:
        """Enqueue a barrier op and await its result.

        Controls use a (briefly) blocking put: they are rare,
        client-serialised, and must not be lost to backpressure.
        """
        future = asyncio.get_running_loop().create_future()
        await self.queue.put(_Control(op, payload, future))
        return await future

    # -- the single-writer loop ---------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        delay_s = self.config.max_delay_us / 1e6
        draining = False
        batch: List[object] = []
        try:
            while not draining:
                batch = [await self.queue.get()]
                if delay_s > 0 and self.config.max_batch > 1:
                    deadline = loop.time() + delay_s
                    while len(batch) < self.config.max_batch:
                        try:
                            batch.append(self.queue.get_nowait())
                            continue
                        except asyncio.QueueEmpty:
                            pass
                        remaining = deadline - loop.time()
                        if remaining <= 0:
                            break
                        try:
                            batch.append(await asyncio.wait_for(
                                self.queue.get(), remaining))
                        except asyncio.TimeoutError:
                            break
                draining = self._execute(batch)
                batch = []
            # Drain residue: everything admitted before the barrier.
            residue: List[object] = []
            while True:
                try:
                    residue.append(self.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if residue:
                self._execute(residue)
        except asyncio.CancelledError:
            # Hard cancellation (no drain barrier): every admitted
            # request — mid-coalesce or still queued — must still get
            # an answer, or its submitter awaits a future that can
            # never resolve.  Fail them all, then propagate.
            self._abort_pending(batch)
            raise

    def _abort_pending(self, batch: List[object]) -> None:
        """Resolve every in-flight future after a hard cancellation:
        data items get an in-band internal error, control barriers are
        cancelled so their awaiters see the cancellation."""
        pending = list(batch)
        if self.queue is not None:
            while True:
                try:
                    pending.append(self.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
        for entry in pending:
            if isinstance(entry, _Item):
                if not entry.future.done():
                    entry.future.set_result(PredictResponse(
                        session_id=entry.request.session_id,
                        seq=entry.request.seq, ok=False,
                        error=f"{ERR_INTERNAL}: shard cancelled"))
                self._finish_span(entry)
            elif not entry.future.done():
                entry.future.cancel()

    def _execute(self, batch: List[object]) -> bool:
        """Run one flushed batch; returns True when draining started."""
        self.batches += 1
        self.max_batch_seen = max(self.max_batch_seen, len(batch))
        self.batch_sizes.record(len(batch))
        # Coalescing is over: the queue stage of every traced request
        # in this flush ends here.
        for entry in batch:
            if isinstance(entry, _Item) and entry.span is not None:
                entry.span.mark("queue")
        draining = False
        used_kernel = False
        # Controls are barriers: flush accumulated data groups first.
        pending: List[_Item] = []
        for entry in batch:
            if isinstance(entry, _Item):
                pending.append(entry)
                continue
            used_kernel |= self._execute_data(pending)
            pending = []
            if entry.op == "drain":
                draining = True
                entry.future.set_result(None)
            else:
                self._execute_control(entry)
        used_kernel |= self._execute_data(pending)
        if used_kernel:
            self.kernel_batches += 1
        if self.obs is not None:
            self.obs.emit(EventKind.SERVE_FLUSH, _now_us(),
                          shard=self.index, batch=len(batch),
                          depth=self.queue.qsize(),
                          vectorized=used_kernel)
        return draining

    # -- data requests -------------------------------------------------------

    def _execute_data(self, items: List[_Item]) -> bool:
        """Group by session, execute, resolve futures.  Returns True
        when any group went through a fast-path kernel."""
        if not items:
            return False
        by_session: Dict[str, List[_Item]] = {}
        for item in items:
            by_session.setdefault(item.request.session_id, []).append(item)
        used_kernel = False
        backend = self._backend_name()
        for session_id, group in by_session.items():
            session = self.sessions.get(session_id)
            if session is None:
                for item in group:
                    item.future.set_result(PredictResponse(
                        session_id=session_id, seq=item.request.seq,
                        ok=False, error=ERR_UNKNOWN_SESSION))
                    self._finish_span(item)
                continue
            used_kernel |= self._execute_session(session, group, backend)
        return used_kernel

    def _backend_name(self) -> str:
        return self.policy.resolved_backend()

    def _note_degrade(self, session: Session, n: int,
                      backend: str) -> None:
        """Account a long-enough run that fell off the vectorized path
        (counter always, obs event once per (session, reason))."""
        if backend != "vectorized" or n < self.config.min_kernel_run:
            return
        reason = degrade_reason(session, backend)
        if reason is None:  # pragma: no cover - raced eligibility
            return
        self.degraded += 1
        key = (session.session_id, reason)
        if self.obs is not None and key not in self._degrade_announced:
            self._degrade_announced.add(key)
            self.obs.emit(EventKind.SERVE_DEGRADE, _now_us(),
                          shard=self.index, session=session.session_id,
                          reason=reason)

    def _note_hottrace(self) -> None:
        """Surface hot-trace guard aborts as obs events (the counters
        themselves live on the engine and flow out via stats).  The
        engine records one ``(session_id, guard)`` entry per abort, so
        every abort gets its own event, attributed to the session that
        actually aborted — not the session executing at drain time."""
        engine = self.hottrace
        if engine is None:
            return
        for session_id, guard in engine.drain_abort_events():
            if self.obs is not None:
                self.obs.emit(EventKind.HOTTRACE_ABORT, _now_us(),
                              shard=self.index, session=session_id,
                              guard=guard)

    def _execute_session(self, session: Session, group: List[_Item],
                         backend: str) -> bool:
        """Execute one session's slice of the batch, in arrival order,
        splitting maximal ``step`` runs out for the kernels."""
        used_kernel = False
        run: List[_Item] = []
        try:
            for item in group:
                if item.request.op == "step":
                    run.append(item)
                    continue
                used_kernel |= self._flush_run(session, run, backend)
                run = []
                if item.request.op == "replay":
                    used_kernel |= self._apply_replay(session, item)
                else:
                    self._apply_single(session, item)
            used_kernel |= self._flush_run(session, run, backend)
        except asyncio.CancelledError:
            # Never convert a cancellation into an in-band error: the
            # task-level handler resolves the outstanding futures and
            # the cancellation must keep propagating.
            raise
        except Exception as exc:  # surface, don't kill the shard
            detail = f"{type(exc).__name__}: {exc}"
            cause = exc.__cause__
            if cause is not None:
                # The in-band error string is all the client ever
                # sees — keep the causal chain instead of dropping it.
                detail += f" (caused by {type(cause).__name__}: {cause})"
            for item in group:
                if not item.future.done():
                    item.future.set_result(PredictResponse(
                        session_id=session.session_id,
                        seq=item.request.seq, ok=False,
                        error=f"{ERR_INTERNAL}: {detail}"))
                self._finish_span(item)
        return used_kernel

    def _finish_span(self, item: _Item) -> None:
        """Close a traced request's timeline (idempotent)."""
        if item.span is not None and not item.span.done:
            item.span.mark("reply")
            if self.tracer is not None:
                self.tracer.finish(item.span)

    def _flush_run(self, session: Session, run: List[_Item],
                   backend: str) -> bool:
        if not run:
            return False
        spans = [item.span for item in run if item.span is not None]
        for span in spans:
            span.mark("batch")
        results, via = execute_steps_ex(
            session, [item.request for item in run], backend,
            self.config.min_kernel_run, self.hottrace)
        used_kernel = via == VIA_KERNEL
        if via == VIA_SCALAR:
            self._note_degrade(session, len(run), backend)
        elif via == VIA_HOTTRACE:
            self.hottrace_batches += 1
        self._note_hottrace()
        stage = ("kernel" if used_kernel
                 else "hottrace" if via == VIA_HOTTRACE else "predict")
        for span in spans:
            span.mark(stage)
        session.served += len(run)
        self.served += len(run)
        sid = session.session_id
        for item, result in zip(run, results):
            item.future.set_result(PredictResponse(
                session_id=sid, seq=item.request.seq, result=result))
            self._finish_span(item)
        return used_kernel

    def _apply_single(self, session: Session, item: _Item) -> None:
        request = item.request
        if item.span is not None:
            item.span.mark("batch")
        if request.op == "predict":
            result: Optional[int] = apply_predict(
                session.family, session.predictor, request.pc)
        elif request.op == "update":
            if request.outcome is None:
                item.future.set_result(PredictResponse(
                    session_id=session.session_id, seq=request.seq,
                    ok=False,
                    error=f"{ERR_BAD_REQUEST}: update requires outcome"))
                self._finish_span(item)
                return
            apply_update(session.family, session.predictor, request.pc,
                         int(request.outcome), distance=request.distance,
                         address=request.address)
            if self.hottrace is not None:
                # Out-of-band mutation: break the hot-trace digest
                # chain so stale captures can never guard-pass.
                HotTraceEngine.note_mutation(session)
            result = None
        else:  # pragma: no cover - op validation happens at decode
            item.future.set_result(PredictResponse(
                session_id=session.session_id, seq=request.seq, ok=False,
                error=f"{ERR_BAD_REQUEST}: unexpected op {request.op!r}"))
            self._finish_span(item)
            return
        if item.span is not None:
            item.span.mark("predict")
        session.served += 1
        self.served += 1
        item.future.set_result(PredictResponse(
            session_id=session.session_id, seq=request.seq, result=result))
        self._finish_span(item)

    def _apply_replay(self, session: Session, item: _Item) -> bool:
        """One trace-window request: the whole window executes as a
        single run (kernel rules of :func:`~repro.serve.batch.
        execute_replay`); ``served`` counts its steps."""
        if item.span is not None:
            item.span.mark("batch")
        backend = self._backend_name()
        digest, n_steps, via = execute_replay_ex(
            session, item.request, backend,
            self.config.min_kernel_run, self.hottrace)
        used_kernel = via == VIA_KERNEL
        if via == VIA_SCALAR:
            self._note_degrade(session, n_steps, backend)
        elif via == VIA_HOTTRACE:
            self.hottrace_batches += 1
        self._note_hottrace()
        if item.span is not None:
            item.span.mark("kernel" if used_kernel
                           else "hottrace" if via == VIA_HOTTRACE
                           else "predict")
        session.served += n_steps
        self.served += n_steps
        item.future.set_result(PredictResponse(
            session_id=session.session_id, seq=item.request.seq,
            result=digest))
        self._finish_span(item)
        return used_kernel

    # -- control ops ---------------------------------------------------------

    def _execute_control(self, entry: _Control) -> None:
        try:
            if entry.op == "open":
                session_id, spec = entry.payload
                existing = self.sessions.get(session_id)
                if existing is not None and existing.spec != spec:
                    raise ValueError(
                        f"session {session_id!r} already open with a "
                        f"different spec ({existing.spec.kind})")
                if existing is None:
                    self.sessions[session_id] = Session(
                        session_id, spec,
                        backend=self.config.backend_arg())
                entry.future.set_result(None)
            elif entry.op == "close":
                session = self.sessions.pop(entry.payload, None)
                entry.future.set_result(
                    session.served if session is not None else None)
            elif entry.op == "snapshot":
                entry.future.set_result({
                    session_id: session.state_dict()
                    for session_id, session in self.sessions.items()})
            elif entry.op == "restore":
                for session_id, state in entry.payload.items():
                    self.sessions[session_id] = Session.from_state_dict(
                        session_id, state)
                entry.future.set_result(None)
            else:
                raise ValueError(f"unknown control op {entry.op!r}")
        except asyncio.CancelledError:
            raise  # cancellation is the task's to handle, not a result
        except Exception as exc:
            # set_exception keeps the full traceback chain for the
            # awaiter (unlike stringified in-band errors).
            entry.future.set_exception(exc)

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "sessions": len(self.sessions), "served": self.served,
            "batches": self.batches,
            "kernel_batches": self.kernel_batches,
            "rejected": self.rejected,
            "max_batch": self.max_batch_seen,
            "degraded": self.degraded,
            "depth": self.queue.qsize() if self.queue else 0}
        if self.hottrace is not None:
            out["hottrace"] = dict(self.hottrace.counters.as_dict(),
                                   batches=self.hottrace_batches)
        return out
