"""``python -m repro.serve top`` — a live text dashboard.

Reads the JSONL time-series stream that a running service exports
(``python -m repro.serve serve --metrics-dir DIR`` writes
``DIR/metrics.jsonl`` via :class:`repro.obs.timeseries.
TimeSeriesExporter`) and renders a refreshing terminal view:

* request throughput (rate of ``serve.served`` between samples);
* queue depth and rejection rate;
* the micro-batch size distribution (count / mean / p50 / p99);
* per-stage request latency quantiles from the span tracer.

The dashboard is a *reader* — it shares no process with the service
and costs it nothing.  Rendering is a pure function of two consecutive
samples (:func:`render_frame`), which is what the tests exercise;
the loop around it is just tail-the-file + ANSI clear.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.timeseries import read_timeseries

#: Stage rows shown in canonical pipeline order (present ones only).
_STAGE_ORDER = ("decode", "queue", "batch", "hottrace", "kernel",
                "predict", "reply")

#: ANSI: cursor home + clear to end of screen (not full clear — less
#: flicker than ``\x1b[2J`` on every refresh).
_CLEAR = "\x1b[H\x1b[J"


def _rate(prev: Optional[Dict[str, object]],
          curr: Dict[str, object], key: str) -> Optional[float]:
    """Per-second rate of a monotone counter between two samples.

    Sample spacing comes from the exporter's monotonic stamp (``mt``)
    so a backwards wall-clock step (NTP correction) cannot produce a
    negative or wildly inflated interval; the wall stamp ``t`` is only
    a fallback for streams recorded before ``mt`` existed.
    """
    if prev is None:
        return None
    p_mt, c_mt = prev.get("mt"), curr.get("mt")
    if p_mt is not None and c_mt is not None:
        dt = float(c_mt) - float(p_mt)
    else:
        dt = float(curr["t"]) - float(prev["t"])
    if dt <= 0:
        return None
    now = curr["metrics"].get(key)
    before = prev["metrics"].get(key)
    if now is None or before is None:
        return None
    return max(0.0, (float(now) - float(before)) / dt)


def _fmt(value: Optional[float], unit: str = "", width: int = 12) -> str:
    if value is None:
        return "-".rjust(width)
    if abs(value) >= 1000:
        text = f"{value:,.0f}{unit}"
    else:
        text = f"{value:.1f}{unit}"
    return text.rjust(width)


def _stage_rows(metrics: Dict[str, float]) -> List[Tuple[str, Dict[str, float]]]:
    """Collect ``trace.stage_us.<stage>.*`` leaves into per-stage dicts."""
    stages: Dict[str, Dict[str, float]] = {}
    for path, value in metrics.items():
        if not path.startswith("trace.stage_us."):
            continue
        rest = path[len("trace.stage_us."):]
        if "." not in rest:
            continue
        stage, leaf = rest.split(".", 1)
        stages.setdefault(stage, {})[leaf] = value
    ordered = [(s, stages[s]) for s in _STAGE_ORDER if s in stages]
    ordered.extend(sorted(
        (s, d) for s, d in stages.items() if s not in _STAGE_ORDER))
    return ordered


def _worker_rows(metrics: Dict[str, float]) -> List[Tuple[str, Dict[str, float]]]:
    """Collect ``fleet.workers.<index>.*`` leaves into per-worker
    dicts, ordered by worker index."""
    workers: Dict[str, Dict[str, float]] = {}
    for path, value in metrics.items():
        if not path.startswith("fleet.workers."):
            continue
        rest = path[len("fleet.workers."):]
        if "." not in rest:
            continue
        index, leaf = rest.split(".", 1)
        workers.setdefault(index, {})[leaf] = value
    def _order(item: Tuple[str, Dict[str, float]]):
        index = item[0]
        return (0, int(index)) if index.isdigit() else (1, index)
    return sorted(workers.items(), key=_order)


def render_frame(prev: Optional[Dict[str, object]],
                 curr: Dict[str, object]) -> str:
    """Render one dashboard frame from two consecutive samples.

    ``prev`` may be ``None`` (first frame: rates show ``-``).  Pure —
    no I/O, no clock — so it is directly unit-testable.  Single-process
    streams render the ``serve.*`` view; fleet streams additionally get
    the per-worker table from the ``fleet.workers.*`` tree.
    """
    metrics = curr["metrics"]
    lines: List[str] = []
    stamp = time.strftime("%H:%M:%S", time.localtime(float(curr["t"])))
    lines.append(f"repro.serve top    sample @ {stamp}")
    lines.append("")
    lines.append("  throughput  "
                 + _fmt(_rate(prev, curr, "serve.served"), " rps"))
    lines.append("  rejects     "
                 + _fmt(_rate(prev, curr, "serve.rejected"), " /s"))
    lines.append("  queue depth "
                 + _fmt(metrics.get("serve.queue_depth")))
    lines.append("  sessions    "
                 + _fmt(metrics.get("serve.sessions")))
    lines.append("  served total"
                 + _fmt(metrics.get("serve.served")))
    batch = {leaf: metrics[f"serve.batch_size.{leaf}"]
             for leaf in ("count", "mean", "p50", "p99")
             if f"serve.batch_size.{leaf}" in metrics}
    if batch:
        lines.append("")
        lines.append("  batch size   count"
                     + _fmt(batch.get("count"), "", 10)
                     + "   mean" + _fmt(batch.get("mean"), "", 8)
                     + "   p50" + _fmt(batch.get("p50"), "", 8)
                     + "   p99" + _fmt(batch.get("p99"), "", 8))
    # Speculation + degrade health (single-process serve.* stream or
    # the fleet.* aggregate, whichever is present).
    prefix = None
    for candidate in ("serve.hottrace", "fleet.hottrace"):
        if f"{candidate}.windows" in metrics:
            prefix = candidate
            break
    if prefix is not None:
        windows_rate = _rate(prev, curr, f"{prefix}.windows")
        hits_rate = _rate(prev, curr, f"{prefix}.hits")
        hit_pct = (100.0 * hits_rate / windows_rate
                   if hits_rate is not None and windows_rate else None)
        lines.append("")
        lines.append(
            "  hottrace      hits" + _fmt(hits_rate, "/s", 10)
            + "   hit%" + _fmt(hit_pct, "", 8)
            + "   aborts" + _fmt(metrics.get(f"{prefix}.aborts"), "", 8)
            + "   mismatch"
            + _fmt(metrics.get(f"{prefix}.abort_mismatch"), "", 4)
            + "   saved"
            + _fmt(_rate(prev, curr, f"{prefix}.steps_saved"), "/s"))
    degraded = metrics.get("serve.degraded",
                           metrics.get("fleet.degraded"))
    if degraded:
        # Only shown when nonzero: a vectorized/hottrace policy that
        # is silently running scalar should be loud, not a log line.
        lines.append("")
        lines.append("  DEGRADED batches (backend fell back to scalar)"
                     + _fmt(degraded, "", 8))
    stages = _stage_rows(metrics)
    if stages:
        lines.append("")
        lines.append("  stage         count        mean         p50"
                     "         p99")
        for stage, leaves in stages:
            lines.append(
                f"  {stage:<10}"
                + _fmt(leaves.get("count"), "", 8)
                + _fmt(leaves.get("mean"), "us")
                + _fmt(leaves.get("p50"), "us")
                + _fmt(leaves.get("p99"), "us"))
    if "fleet.workers" in metrics or any(
            k.startswith("fleet.") for k in metrics):
        lines.append("")
        lines.append(
            "  fleet        workers"
            + _fmt(metrics.get("fleet.workers_alive"), "", 6)
            + "/" + str(int(metrics.get("fleet.workers", 0)))
            + "   deaths" + _fmt(metrics.get("fleet.worker_deaths"), "", 4)
            + "   rebalances"
            + _fmt(metrics.get("fleet.rebalances"), "", 4)
            + "   moved"
            + _fmt(metrics.get("fleet.sessions_moved"), "", 8))
        workers = _worker_rows(metrics)
        if workers:
            lines.append("  worker   alive         rps  outstanding"
                         "     sessions          wal       deaths")
            for index, leaves in workers:
                alive = leaves.get("alive")
                lines.append(
                    f"  w{index:<6} "
                    + ("  up " if alive else " DOWN").rjust(6)
                    + _fmt(_rate(prev, curr,
                                 f"fleet.workers.{index}.served"))
                    + _fmt(leaves.get("outstanding"))
                    + _fmt(leaves.get("sessions"))
                    + _fmt(leaves.get("wal_records"))
                    + _fmt(leaves.get("deaths")))
    lines.append("")
    return "\n".join(lines)


def run_top(path: str, interval_s: float = 1.0, once: bool = False,
            out=None, clear: bool = True) -> int:
    """Tail *path* (a metrics JSONL stream) and render frames.

    ``once`` renders a single frame from the file's current tail and
    returns — used by tests and for scripting.  Returns nonzero when
    the file does not exist yet (and ``once`` is set).
    """
    import sys
    out = out if out is not None else sys.stdout

    def _tail() -> List[Dict[str, object]]:
        if not os.path.exists(path):
            return []
        return read_timeseries(path)[-2:]

    if once:
        samples = _tail()
        if not samples:
            print(f"no samples at {path}", file=sys.stderr)
            return 1
        prev = samples[0] if len(samples) == 2 else None
        out.write(render_frame(prev, samples[-1]) + "\n")
        return 0

    last_t: Optional[float] = None
    try:
        while True:
            samples = _tail()
            if samples:
                curr = samples[-1]
                if last_t != curr["t"]:
                    last_t = curr["t"]
                    prev = samples[0] if len(samples) == 2 else None
                    frame = render_frame(prev, curr)
                    out.write((_CLEAR if clear else "") + frame + "\n")
                    out.flush()
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
