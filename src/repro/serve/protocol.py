"""Wire protocol of the prediction service: typed requests/responses.

One JSON object per line, both over TCP and stdio.  A request addresses
a *session* (an isolated predictor instance, built from a
:class:`~repro.api.spec.PredictorSpec`) and names one of the ops:

``open``
    Create the session; ``spec`` carries the predictor spec as its
    JSON dict.  Idempotent for an identical spec.
``close``
    Tear the session down (response carries the served count).
``predict``
    Pure lookup for ``pc``; no training.
``update``
    Train with the resolved ``outcome`` for ``pc``; no result.
``step``
    predict-then-update — the per-load streaming op the paper's
    predictors live on, and the one micro-batches coalesce onto the
    :mod:`repro.fastpath` kernels.
``ping``
    Liveness/roundtrip probe.

``outcome``/``result`` use the family-coded int64 lanes documented in
:mod:`repro.fastpath.batchapi` (hit-miss speaks in terms of *hit*;
bank results use ``-1`` for an abstention).  ``distance`` is the CHT
collision distance (``None``/-1 = none); ``address`` feeds
address-based bank predictors.

Failures are in-band: ``ok=false`` with an ``error`` string.  The
admission-control rejection (``error="retry-after"``) additionally
carries ``retry_after_us`` — the backpressure contract clients must
honour (see ``docs/serving.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

#: Ops that address predictor state through a pc.
DATA_OPS = ("predict", "update", "step")
#: Session/service control ops.
CONTROL_OPS = ("open", "close", "ping")
OPS = DATA_OPS + CONTROL_OPS

#: ``error`` strings the service emits.
ERR_RETRY = "retry-after"
ERR_UNKNOWN_SESSION = "unknown-session"
ERR_BAD_REQUEST = "bad-request"
ERR_CLOSED = "closed"
ERR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A malformed request/response line."""


@dataclass(frozen=True)
class PredictRequest:
    """One client request.

    ``seq`` is a client-chosen correlation id, echoed verbatim in the
    response; the service imposes no meaning on it (ordering is by
    arrival, per session).
    """

    session_id: str
    op: str = "step"
    pc: int = 0
    outcome: Optional[int] = None
    distance: Optional[int] = None
    address: Optional[int] = None
    spec: Optional[Mapping] = field(default=None, compare=False)
    seq: int = -1

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(f"unknown op {self.op!r}; expected one "
                                f"of {OPS}")
        if not self.session_id:
            raise ProtocolError("session_id must be non-empty")

    def to_json_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"session_id": self.session_id,
                                  "op": self.op, "seq": self.seq}
        if self.op in DATA_OPS:
            out["pc"] = self.pc
        for name in ("outcome", "distance", "address"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.spec is not None:
            out["spec"] = dict(self.spec)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]
                       ) -> "PredictRequest":
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"request must be an object, "
                                f"got {type(payload).__name__}")
        try:
            return cls(
                session_id=str(payload["session_id"]),
                op=str(payload.get("op", "step")),
                pc=int(payload.get("pc", 0)),
                outcome=_opt_int(payload.get("outcome")),
                distance=_opt_int(payload.get("distance")),
                address=_opt_int(payload.get("address")),
                spec=payload.get("spec"),
                seq=int(payload.get("seq", -1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed request {payload!r}: {exc}"
                                ) from None

    @classmethod
    def from_json(cls, text: str) -> "PredictRequest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request is not JSON: {exc}") from None
        return cls.from_json_dict(payload)


@dataclass(frozen=True)
class PredictResponse:
    """The service's answer to one request."""

    session_id: str
    seq: int = -1
    ok: bool = True
    result: Optional[int] = None
    error: Optional[str] = None
    retry_after_us: Optional[int] = None

    def to_json_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"session_id": self.session_id,
                                  "seq": self.seq, "ok": self.ok}
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.retry_after_us is not None:
            out["retry_after_us"] = self.retry_after_us
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]
                       ) -> "PredictResponse":
        try:
            return cls(
                session_id=str(payload["session_id"]),
                seq=int(payload.get("seq", -1)),
                ok=bool(payload.get("ok", True)),
                result=_opt_int(payload.get("result")),
                error=payload.get("error"),
                retry_after_us=_opt_int(payload.get("retry_after_us")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed response {payload!r}: {exc}"
                                ) from None

    @classmethod
    def from_json(cls, text: str) -> "PredictResponse":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"response is not JSON: {exc}") from None
        return cls.from_json_dict(payload)


def _opt_int(value: object) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)) and int(value) == value:
        return int(value)
    raise ProtocolError(f"expected an integer, got {value!r}")


class RetryAfter(Exception):
    """Raised (in-process) / signalled (on the wire) by admission
    control when a shard queue is full: back off ``retry_after_us``
    microseconds and resubmit."""

    def __init__(self, retry_after_us: int) -> None:
        super().__init__(f"shard queue full; retry after "
                         f"{retry_after_us} us")
        self.retry_after_us = retry_after_us
