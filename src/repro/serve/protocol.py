"""Wire protocol of the prediction service: typed requests/responses.

One JSON object per line, both over TCP and stdio.  A request addresses
a *session* (an isolated predictor instance, built from a
:class:`~repro.api.spec.PredictorSpec`) and names one of the ops:

``open``
    Create the session; ``spec`` carries the predictor spec as its
    JSON dict.  Idempotent for an identical spec.
``close``
    Tear the session down (response carries the served count).
``predict``
    Pure lookup for ``pc``; no training.
``update``
    Train with the resolved ``outcome`` for ``pc``; no result.
``step``
    predict-then-update — the per-load streaming op the paper's
    predictors live on, and the one micro-batches coalesce onto the
    :mod:`repro.fastpath` kernels.
``replay``
    A *trace window*: ``pcs``/``outcomes`` (and optionally
    ``distances``) carry one run of consecutive steps for the session
    in a single request, the unit trace-driven clients naturally
    produce.  Semantically identical to submitting the steps one by
    one; the response's ``result`` is the order-sensitive digest of
    the per-step results (:func:`repro.serve.batch.replay_digest`), so
    two topologies serving the same window must answer the same digest.
    One replay request pays one admission + one WAL record + one wire
    round trip for the whole window — the batched-RPC form that keeps
    kernel amortisation alive across process boundaries.
``ping``
    Liveness/roundtrip probe.

``outcome``/``result`` use the family-coded int64 lanes documented in
:mod:`repro.fastpath.batchapi` (hit-miss speaks in terms of *hit*;
bank results use ``-1`` for an abstention).  ``distance`` is the CHT
collision distance (``None``/-1 = none); ``address`` feeds
address-based bank predictors.

Failures are in-band: ``ok=false`` with an ``error`` string.  The
admission-control rejection (``error="retry-after"``) additionally
carries ``retry_after_us`` — the backpressure contract clients must
honour (see ``docs/serving.md``).
"""

from __future__ import annotations

import json
import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Ops that address predictor state through a pc.
DATA_OPS = ("predict", "update", "step", "replay")
#: Session/service control ops.
CONTROL_OPS = ("open", "close", "ping")
OPS = DATA_OPS + CONTROL_OPS

#: ``error`` strings the service emits.
ERR_RETRY = "retry-after"
ERR_UNKNOWN_SESSION = "unknown-session"
ERR_BAD_REQUEST = "bad-request"
ERR_CLOSED = "closed"
ERR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A malformed request/response line."""


@dataclass(frozen=True)
class PredictRequest:
    """One client request.

    ``seq`` is a client-chosen correlation id, echoed verbatim in the
    response; the service imposes no meaning on it (ordering is by
    arrival, per session).
    """

    session_id: str
    op: str = "step"
    pc: int = 0
    outcome: Optional[int] = None
    distance: Optional[int] = None
    address: Optional[int] = None
    spec: Optional[Mapping] = field(default=None, compare=False)
    seq: int = -1
    #: ``replay`` only: the trace window, parallel tuples of ints
    #: (``distances`` optional, ``-1`` = none).
    pcs: Optional[Tuple[int, ...]] = None
    outcomes: Optional[Tuple[int, ...]] = None
    distances: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(f"unknown op {self.op!r}; expected one "
                                f"of {OPS}")
        if not self.session_id:
            raise ProtocolError("session_id must be non-empty")
        if self.op == "replay":
            if not self.pcs:
                raise ProtocolError("replay requires a non-empty pcs "
                                    "window")
            if self.outcomes is None or (len(self.outcomes)
                                         != len(self.pcs)):
                raise ProtocolError("replay outcomes must parallel pcs")
            if self.distances is not None and (len(self.distances)
                                               != len(self.pcs)):
                raise ProtocolError("replay distances must parallel pcs")
        elif self.pcs is not None or self.outcomes is not None:
            raise ProtocolError(f"op {self.op!r} does not carry a "
                                f"trace window")

    def to_json_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"session_id": self.session_id,
                                  "op": self.op, "seq": self.seq}
        if self.op == "replay":
            out["pcs"] = list(self.pcs or ())
            out["outcomes"] = list(self.outcomes or ())
            if self.distances is not None:
                out["distances"] = list(self.distances)
            return out
        if self.op in DATA_OPS:
            out["pc"] = self.pc
        for name in ("outcome", "distance", "address"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.spec is not None:
            out["spec"] = dict(self.spec)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]
                       ) -> "PredictRequest":
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"request must be an object, "
                                f"got {type(payload).__name__}")
        try:
            return cls(
                session_id=str(payload["session_id"]),
                op=str(payload.get("op", "step")),
                pc=int(payload.get("pc", 0)),
                outcome=_opt_int(payload.get("outcome")),
                distance=_opt_int(payload.get("distance")),
                address=_opt_int(payload.get("address")),
                spec=payload.get("spec"),
                seq=int(payload.get("seq", -1)),
                pcs=_opt_window(payload.get("pcs")),
                outcomes=_opt_window(payload.get("outcomes")),
                distances=_opt_window(payload.get("distances")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed request {payload!r}: {exc}"
                                ) from None

    @classmethod
    def from_json(cls, text: str) -> "PredictRequest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request is not JSON: {exc}") from None
        return cls.from_json_dict(payload)


@dataclass(frozen=True)
class PredictResponse:
    """The service's answer to one request."""

    session_id: str
    seq: int = -1
    ok: bool = True
    result: Optional[int] = None
    error: Optional[str] = None
    retry_after_us: Optional[int] = None

    def to_json_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"session_id": self.session_id,
                                  "seq": self.seq, "ok": self.ok}
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.retry_after_us is not None:
            out["retry_after_us"] = self.retry_after_us
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]
                       ) -> "PredictResponse":
        try:
            return cls(
                session_id=str(payload["session_id"]),
                seq=int(payload.get("seq", -1)),
                ok=bool(payload.get("ok", True)),
                result=_opt_int(payload.get("result")),
                error=payload.get("error"),
                retry_after_us=_opt_int(payload.get("retry_after_us")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed response {payload!r}: {exc}"
                                ) from None

    @classmethod
    def from_json(cls, text: str) -> "PredictResponse":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"response is not JSON: {exc}") from None
        return cls.from_json_dict(payload)


def _opt_int(value: object) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)) and int(value) == value:
        return int(value)
    raise ProtocolError(f"expected an integer, got {value!r}")


def _opt_window(value: object) -> Optional[Tuple[int, ...]]:
    if value is None:
        return None
    if isinstance(value, (list, tuple)):
        return tuple(int(v) for v in value)
    raise ProtocolError(f"expected an integer list, got {value!r}")


# --------------------------------------------------------------------------
# Worker handoff: binary frames + compact wire tuples
# --------------------------------------------------------------------------
#
# The router ⇄ worker link (:mod:`repro.serve.fleet` /
# :mod:`repro.serve.worker`) is an internal, same-program, same-host
# channel, so it does not pay the JSONL text tax: messages are
# length-prefixed pickled tuples, and requests/responses travel as
# positional tuples rather than dataclasses (tuple pickling is several
# times cheaper, which matters when one router core fans out every
# request).  Pickle is safe here by construction — both ends are
# subprocesses of one program, the listener is loopback-only and every
# connection must present the router's random hello token before any
# frame is processed.

#: Frame length prefix: one unsigned 32-bit big-endian byte count.
FRAME_HEADER = struct.Struct(">I")

#: Refuse absurd frames (corrupt stream / wrong peer) before allocating.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_frame(payload: object) -> bytes:
    """One wire frame: length prefix + pickled payload."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return FRAME_HEADER.pack(len(body)) + body


async def read_frame(reader) -> object:
    """Read one frame from an ``asyncio.StreamReader``.

    Raises ``asyncio.IncompleteReadError`` at EOF (connection gone) and
    :class:`ProtocolError` on a corrupt length prefix.
    """
    header = await reader.readexactly(FRAME_HEADER.size)
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte bound")
    return pickle.loads(await reader.readexactly(length))


def request_to_wire(request: "PredictRequest") -> Tuple:
    """Positional tuple form of a data request (handoff hot path).

    Scalar ops travel as 7-tuples; ``replay`` appends its window as an
    8th element so the common case pays nothing for it.
    """
    base = (request.session_id, request.op, request.pc, request.outcome,
            request.distance, request.address, request.seq)
    if request.op == "replay":
        return base + ((request.pcs, request.outcomes,
                        request.distances),)
    return base


def request_from_wire(wire: Sequence) -> "PredictRequest":
    """Inverse of :func:`request_to_wire` (7- or 8-tuple)."""
    if len(wire) == 8:
        session_id, op, pc, outcome, distance, address, seq, win = wire
        pcs, outcomes, distances = win
        return PredictRequest(session_id=session_id, op=op, pc=pc,
                              outcome=outcome, distance=distance,
                              address=address, seq=seq, pcs=pcs,
                              outcomes=outcomes, distances=distances)
    session_id, op, pc, outcome, distance, address, seq = wire
    return PredictRequest(session_id=session_id, op=op, pc=pc,
                          outcome=outcome, distance=distance,
                          address=address, seq=seq)


def response_to_wire(response: "PredictResponse") -> Tuple:
    """Positional 6-tuple form of a response (handoff hot path)."""
    return (response.session_id, response.seq, response.ok,
            response.result, response.error, response.retry_after_us)


def response_from_wire(wire: Sequence) -> "PredictResponse":
    """Inverse of :func:`response_to_wire`."""
    session_id, seq, ok, result, error, retry_after_us = wire
    return PredictResponse(session_id=session_id, seq=seq, ok=ok,
                           result=result, error=error,
                           retry_after_us=retry_after_us)


def requests_to_wire(requests: Sequence["PredictRequest"]) -> List[Tuple]:
    """Batch form of :func:`request_to_wire`, one tuple per request."""
    return [request_to_wire(r) for r in requests]


def responses_from_wire(wires: Sequence[Sequence]
                        ) -> List["PredictResponse"]:
    """Batch form of :func:`response_from_wire`."""
    return [response_from_wire(w) for w in wires]


class RetryAfter(Exception):
    """Raised (in-process) / signalled (on the wire) by admission
    control when a shard queue is full: back off ``retry_after_us``
    microseconds and resubmit."""

    def __init__(self, retry_after_us: int) -> None:
        super().__init__(f"shard queue full; retry after "
                         f"{retry_after_us} us")
        self.retry_after_us = retry_after_us
