"""Micro-batch execution: kernels when possible, scalar always right.

A flushed micro-batch mixes sessions and ops.  Execution groups it by
session (sessions are independent, so reordering *across* sessions is
unobservable; order *within* a session is preserved exactly), then
splits each session's run at non-``step`` ops:

* maximal runs of ``step`` requests go to the vectorized
  batch-of-heterogeneous-PCs kernel
  (:func:`repro.fastpath.batchapi.replay_steps`) when the session's
  backend is vectorized, numpy is importable, the predictor has an
  exact kernel, and the run is long enough to amortise setup;
* everything else — short runs, pure ``predict``/``update`` ops,
  predictors without kernels, the reference backend — replays through
  :func:`scalar_steps` / the per-op appliers below, which *are* the
  semantics.

A third path sits in front of both when the shard's
:class:`~repro.api.ExecutionPolicy` enables it: the hot-trace memoized
replay (:mod:`repro.fastpath.hottrace`), which answers a recurring
(state, window) pair from a guarded capture and aborts to the paths
below on any guard failure.  The ``*_ex`` variants report which path
answered (``via`` in ``{"scalar", "kernel", "hottrace"}``); the
two-tuple forms are kept for compatibility and say ``used_kernel``.

The service's correctness invariant is the package-wide one: batched
results and post-batch predictor state bit-identical to the sequential
scalar replay of the same per-session request stream.  Under
``REPRO_CHECK_INVARIANTS=1`` every kernel dispatch is shadowed by a
scalar replay on a deep copy and both results and state are compared
(:class:`ServeInvariantViolation` on any mismatch) — the serving
counterpart of :mod:`repro.robust`'s engine oracle.  Hot-trace hits
carry the same oracle inside :mod:`repro.fastpath.hottrace`.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import struct
from typing import List, Optional, Sequence, Tuple

from repro.serve.protocol import PredictRequest

#: Same switch as the engine oracle (:mod:`repro.robust.invariants`).
_CHECK_ENV = "REPRO_CHECK_INVARIANTS"


class ServeInvariantViolation(AssertionError):
    """A kernel-executed batch diverged from the scalar replay."""


def invariants_enabled() -> bool:
    """Whether ``REPRO_CHECK_INVARIANTS`` arms the batching oracle."""
    return os.environ.get(_CHECK_ENV, "") not in ("", "0")


# --------------------------------------------------------------------------
# Scalar reference appliers (the semantics)
# --------------------------------------------------------------------------


def apply_predict(family: str, predictor: object, pc: int) -> int:
    """Pure lookup, family-coded int result."""
    if family == "binary":
        return int(predictor.predict(pc).outcome)
    if family == "cht":
        return int(predictor.lookup(pc).colliding)
    if family == "hitmiss":
        return int(predictor.predict_hit(pc))
    if family == "bank":
        p = predictor.predict(pc)
        return p.bank if p.predicted else -1
    raise ValueError(f"unknown predictor family {family!r}")


def apply_update(family: str, predictor: object, pc: int, outcome: int,
                 distance: Optional[int] = None,
                 address: Optional[int] = None) -> None:
    """Train only."""
    if family == "binary":
        predictor.update(pc, bool(outcome))
    elif family == "cht":
        predictor.train(pc, bool(outcome),
                        distance if (outcome and distance is not None
                                     and distance >= 1) else None)
    elif family == "hitmiss":
        predictor.update(pc, bool(outcome))
    elif family == "bank":
        predictor.update(pc, int(outcome), address)
    else:
        raise ValueError(f"unknown predictor family {family!r}")


def apply_step(family: str, predictor: object, pc: int, outcome: int,
               distance: Optional[int] = None,
               address: Optional[int] = None) -> int:
    """predict-then-update — one event of the streaming protocol."""
    result = apply_predict(family, predictor, pc)
    apply_update(family, predictor, pc, outcome,
                 distance=distance, address=address)
    return result


def scalar_steps(family: str, predictor: object, pcs: Sequence[int],
                 outcomes: Sequence[int],
                 distances: Optional[Sequence[int]] = None) -> List[int]:
    """The sequential scalar replay of one step run — the reference the
    kernels (and the differential suite) are measured against.

    ``distances`` uses the ``-1 = none`` coding of
    :mod:`repro.fastpath.batchapi`.
    """
    out = []
    for i, (pc, outcome) in enumerate(zip(pcs, outcomes)):
        distance = None
        if distances is not None and distances[i] >= 1:
            distance = distances[i]
        out.append(apply_step(family, predictor, pc, int(outcome),
                              distance=distance))
    return out


# --------------------------------------------------------------------------
# Run execution (kernel dispatch + invariant oracle)
# --------------------------------------------------------------------------


#: The ``via`` vocabulary of the ``*_ex`` executors.
VIA_SCALAR = "scalar"
VIA_KERNEL = "kernel"
VIA_HOTTRACE = "hottrace"


def _kernel_eligible(family: str, predictor: object,
                     backend: str) -> bool:
    if backend != "vectorized":
        return False
    import repro.fastpath as fastpath
    if not fastpath.HAS_NUMPY:
        return False
    from repro.fastpath import batchapi
    return batchapi.supports_steps(family, predictor)


def degrade_reason(session, backend: str) -> Optional[str]:
    """Why a vectorized-backend session would execute scalar, or None.

    The structured counterpart of the silent fallback inside
    :func:`execute_step_arrays`: shards use it to count (and emit) a
    degrade exactly when a long-enough run lands on the scalar loop
    despite the vectorized backend being requested."""
    if backend != "vectorized":
        return None
    import repro.fastpath as fastpath
    if not fastpath.HAS_NUMPY:
        return "no_numpy"
    from repro.fastpath import batchapi
    if not batchapi.supports_steps(session.family, session.predictor):
        return "no_kernel"
    return None


def execute_steps(session, requests: Sequence[PredictRequest],
                  backend: str, min_kernel_run: int = 8) -> Tuple[List[int], bool]:
    """Execute one same-session run of ``step`` requests.

    Returns ``(results, used_kernel)``.  The kernel path is taken only
    when it is exact for this predictor and the run is long enough;
    under ``REPRO_CHECK_INVARIANTS=1`` it is shadow-checked against
    :func:`scalar_steps` on a deep copy of the pre-batch state.
    """
    results, via = execute_steps_ex(session, requests, backend,
                                    min_kernel_run)
    return results, via == VIA_KERNEL


def execute_steps_ex(session, requests: Sequence[PredictRequest],
                     backend: str, min_kernel_run: int = 8,
                     hottrace=None) -> Tuple[List[int], str]:
    """:func:`execute_steps` reporting the executing path (``via``)."""
    pcs = [r.pc for r in requests]
    outcomes = [0 if r.outcome is None else int(r.outcome)
                for r in requests]
    distances = [-1 if r.distance is None else int(r.distance)
                 for r in requests]
    return execute_step_arrays_ex(session, pcs, outcomes, distances,
                                  backend, min_kernel_run, hottrace)


def execute_step_arrays(session, pcs: Sequence[int],
                        outcomes: Sequence[int],
                        distances: Sequence[int], backend: str,
                        min_kernel_run: int = 8
                        ) -> Tuple[List[int], bool]:
    """The array-form core of :func:`execute_steps` (``-1`` distance =
    none) — also the execution path of ``replay`` windows, which arrive
    as arrays and never materialise per-step request objects."""
    results, via = execute_step_arrays_ex(session, pcs, outcomes,
                                          distances, backend,
                                          min_kernel_run)
    return results, via == VIA_KERNEL


def execute_step_arrays_ex(session, pcs: Sequence[int],
                           outcomes: Sequence[int],
                           distances: Sequence[int], backend: str,
                           min_kernel_run: int = 8,
                           hottrace=None) -> Tuple[List[int], str]:
    """:func:`execute_step_arrays` with the hot-trace layer in front.

    ``hottrace`` is the shard's :class:`repro.fastpath.hottrace.
    HotTraceEngine` (or None).  A guarded memo hit answers the window
    without executing a step; otherwise the window runs through the
    kernel/scalar paths below and — when hot — is offered back to the
    recorder, which also keeps the state-digest chain honest for runs
    too short to memoize.
    """
    n = len(pcs)
    pre_digest = None
    if hottrace is not None:
        cached = hottrace.try_replay(session, pcs, outcomes, distances)
        if cached is not None:
            return cached, VIA_HOTTRACE
        st = getattr(session, "hottrace", None)
        pre_digest = st.state_digest if st is not None else None

    use_kernel = (n >= max(1, min_kernel_run)
                  and _kernel_eligible(session.family, session.predictor,
                                       backend))
    try:
        if not use_kernel:
            results = scalar_steps(session.family, session.predictor,
                                   pcs, outcomes, distances)
            via = VIA_SCALAR
        else:
            check = invariants_enabled()
            shadow = copy.deepcopy(session.predictor) if check else None

            from repro.fastpath import batchapi
            import numpy as np
            results = batchapi.replay_steps(
                session.family, session.predictor,
                np.asarray(pcs, dtype=np.int64),
                np.asarray(outcomes, dtype=np.int64),
                np.asarray(distances, dtype=np.int64)).tolist()

            if check:
                expect = scalar_steps(session.family, shadow, pcs,
                                      outcomes, distances)
                if results != expect:
                    raise ServeInvariantViolation(
                        f"session {session.session_id!r} ({session.spec.kind}): "
                        f"kernel batch results diverge from scalar replay at "
                        f"index {next(i for i, (a, b) in enumerate(zip(results, expect)) if a != b)} "
                        f"of {n}")
                state, shadow_state = (_state_bytes(session.predictor),
                                       _state_bytes(shadow))
                if (state is not None and shadow_state is not None
                        and state != shadow_state):
                    raise ServeInvariantViolation(
                        f"session {session.session_id!r} ({session.spec.kind}): "
                        f"kernel batch left different predictor state than the "
                        f"scalar replay ({n} steps)")
            via = VIA_KERNEL
    except BaseException:
        # A mid-window exception (bad op arguments, a kernel fault, a
        # cancellation) leaves the predictor partially mutated with
        # record() never reached.  The chained state digest would then
        # describe the *pre-window* state: break the chain so a later
        # hot window re-fingerprints the true (drifted) state instead
        # of guard-passing against a stale capture.
        if hottrace is not None:
            hottrace.note_mutation(session)
        raise
    if hottrace is not None:
        hottrace.record(session, pcs, outcomes, distances, results,
                        pre_digest)
    return results, via


def _state_bytes(predictor: object) -> Optional[bytes]:
    """Canonical state fingerprint; None when unpicklable."""
    try:
        return pickle.dumps(predictor, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # pragma: no cover - exotic predictor state
        return None


# --------------------------------------------------------------------------
# Replay windows (batched-RPC trace chunks)
# --------------------------------------------------------------------------


def replay_digest(results: Sequence[int]) -> int:
    """Order-sensitive 64-bit digest of a replay window's per-step
    results — the ``result`` of a ``replay`` response.

    A deterministic function of the result sequence alone, so any two
    topologies (single process / fleet, scalar / kernel) serving the
    same window must answer the same digest; the differential suite
    compares digests where per-step streams would be too bulky to
    ship back."""
    n = len(results)
    packed = struct.pack(f"<{n}q", *(int(r) for r in results))
    return int.from_bytes(
        hashlib.blake2b(packed, digest_size=8).digest(), "big")


def execute_replay(session, request: PredictRequest, backend: str,
                   min_kernel_run: int = 8) -> Tuple[int, int, bool]:
    """Execute one ``replay`` request's trace window.

    Returns ``(digest, n_steps, used_kernel)``.  Exactly equivalent to
    submitting the window as individual ``step`` requests (same kernel
    dispatch rules, same invariant shadow-check via
    :func:`execute_step_arrays`), but the window is one admission unit:
    one future, one WAL record, one wire round trip."""
    digest, n, via = execute_replay_ex(session, request, backend,
                                       min_kernel_run)
    return digest, n, via == VIA_KERNEL


def execute_replay_ex(session, request: PredictRequest, backend: str,
                      min_kernel_run: int = 8,
                      hottrace=None) -> Tuple[int, int, str]:
    """:func:`execute_replay` reporting the executing path — the op
    where hot-trace amortization pays most (whole windows arrive
    pre-packed as the exact lanes the memo is keyed on)."""
    pcs = request.pcs or ()
    outcomes = request.outcomes or ()
    distances = (request.distances if request.distances is not None
                 else [-1] * len(pcs))
    results, via = execute_step_arrays_ex(
        session, pcs, outcomes, distances, backend, min_kernel_run,
        hottrace)
    return replay_digest(results), len(results), via
