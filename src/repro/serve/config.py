"""Service tuning knobs, in one picklable value object."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.api.policy import ExecutionPolicy


@dataclass(frozen=True)
class ServeConfig:
    """Sharding, batching and backpressure parameters.

    Attributes
    ----------
    n_shards:
        Number of single-writer worker shards.  Sessions are pinned to
        ``shard = stable_hash(session_id) % n_shards``, so predictor
        tables are only ever touched from their shard's task and need
        no locks.
    max_batch / max_delay_us:
        The micro-batch flush policy: a shard flushes as soon as it has
        coalesced ``max_batch`` requests, or ``max_delay_us``
        microseconds after the first request of the batch arrived —
        whichever comes first.  ``max_batch=1`` disables coalescing
        (the scalar per-request baseline of ``bench``).
    queue_depth:
        Bound of each shard's admission queue.  A full queue rejects
        with ``retry-after`` (backpressure) instead of buffering
        without limit.
    retry_after_us:
        The backoff hint attached to a rejection.
    policy:
        The :class:`repro.api.ExecutionPolicy` every shard executes
        under — backend choice, hot-trace thresholds, invariant mode.
        Picklable, so it travels verbatim to fleet workers.  ``None``
        means "derive from the legacy ``backend`` field" (and when that
        is also ``None``, the process default chain).
    backend:
        Deprecated spelling of ``policy.backend``: ``"reference"`` /
        ``"vectorized"``, ``None`` defers to the process default
        (:mod:`repro.fastpath.backend`).  Kept as a shim; setting both
        ``policy`` and ``backend`` is an error.
    min_kernel_run:
        Shortest same-session step run worth dispatching to a numpy
        kernel; shorter runs replay through the scalar reference loop
        (kernel setup costs more than it saves).
    telemetry:
        Whether the service mints per-request spans
        (:class:`repro.obs.trace.RequestTracer`).  Untraced requests
        cost one integer increment; the acceptance budget for default
        sampling is <= 5% bench throughput (see ``docs/
        observability.md``).
    trace_sample_shift:
        Trace 1 request in ``2**trace_sample_shift`` (0 = every
        request).  The default (6 -> 1/64) keeps tracing overhead in
        the noise at bench rates while still filling the per-stage
        histograms within a second.
    trace_keep:
        Finished spans retained in the tracer ring for export.
    """

    n_shards: int = 4
    max_batch: int = 256
    max_delay_us: int = 500
    queue_depth: int = 8192
    retry_after_us: int = 1000
    backend: Optional[str] = None
    min_kernel_run: int = 8
    telemetry: bool = True
    trace_sample_shift: int = 6
    trace_keep: int = 4096
    policy: Optional[ExecutionPolicy] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("need at least one shard")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_delay_us < 0 or self.retry_after_us < 0:
            raise ValueError("delays must be non-negative")
        if self.trace_sample_shift < 0:
            raise ValueError("trace_sample_shift must be >= 0")
        if self.policy is not None and self.backend is not None:
            raise ValueError(
                "set either policy= or the deprecated backend=, not both")

    def with_backend(self, backend: Optional[str]) -> "ServeConfig":
        return replace(self, backend=backend, policy=None)

    def with_policy(self, policy: Optional[ExecutionPolicy]
                    ) -> "ServeConfig":
        return replace(self, policy=policy, backend=None)

    def effective_policy(self) -> ExecutionPolicy:
        """The policy shards execute under.

        ``policy`` verbatim when set; otherwise the pure legacy mapping
        of the ``backend`` string (``None`` -> ``"auto"``), which is
        behaviour-identical to the pre-policy resolution chain.
        """
        if self.policy is not None:
            return self.policy
        return ExecutionPolicy.from_legacy(backend=self.backend)

    def backend_arg(self) -> Optional[str]:
        """The legacy-style ``backend=`` argument (``None`` = default
        chain) implied by the effective policy — what predictor
        construction paths that still speak strings receive."""
        eff = self.effective_policy()
        return None if eff.backend == "auto" else eff.backend
