"""The asyncio front end: sessions in, responses out.

:class:`PredictionService` owns ``n_shards`` single-writer worker
shards and routes every request to ``stable_hash(session_id) %
n_shards`` — the same session always lands on the same shard, so its
predictor state has exactly one writer and the per-session request
order is the admission order.  The hash is SHA-256-based (not
``hash()``, which is salted per process) so a snapshot taken under one
shard count restores correctly under another.

Usage::

    service = PredictionService(ServeConfig(n_shards=4))
    await service.start()
    await service.open_session("alice", spec_for("hmp.hybrid"))
    r = await service.request(PredictRequest("alice", op="step",
                                             pc=0x40, outcome=1))
    await service.stop()

``submit`` is the non-blocking half: it returns a future (already
resolved with a ``retry-after`` rejection when the shard queue is
full), which is what pipelined clients and the bench loop build on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

import asyncio

from repro.api import PredictorSpec
from repro.common.stats import StreamingHistogram
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import RequestTracer
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    ERR_CLOSED,
    PredictRequest,
    PredictResponse,
)
from repro.serve.shard import Shard


def stable_shard_hash(session_id: str) -> int:
    """Process-independent 64-bit hash of a session id."""
    digest = hashlib.sha256(session_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def aggregate_hottrace(per_shard: List[Dict[str, object]]
                       ) -> Optional[Dict[str, int]]:
    """Sum the ``hottrace`` counter blocks of shard/worker stats
    (None when no contributor ran a hot-trace engine)."""
    blocks = [s["hottrace"] for s in per_shard if "hottrace" in s]
    if not blocks:
        return None
    out: Dict[str, int] = {}
    for block in blocks:
        for key, value in block.items():
            out[key] = out.get(key, 0) + int(value)
    return out


class PredictionService:
    """Sharded, micro-batching prediction service (module docstring)."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 obs=None, policy=None) -> None:
        self.config = config if config is not None else ServeConfig()
        if policy is not None:
            # Convenience: ExecutionPolicy accepted directly, without
            # the caller spelling out a config replace.
            self.config = self.config.with_policy(policy)
        self.obs = obs
        #: Per-request span tracer (``None`` when telemetry is off).
        #: Spans are minted here for in-process callers and at protocol
        #: decode by the transports (:mod:`repro.serve.net`).
        self.tracer: Optional[RequestTracer] = (
            RequestTracer(sample_shift=self.config.trace_sample_shift,
                          keep=self.config.trace_keep)
            if self.config.telemetry else None)
        self.shards: List[Shard] = [Shard(i, self.config, obs,
                                          tracer=self.tracer)
                                    for i in range(self.config.n_shards)]
        #: session_id → shard, memoised (SHA-256 per submit is real
        #: money on the hot path; routing is deterministic, so caching
        #: is safe for the life of this service instance).
        self._shard_cache: Dict[str, Shard] = {}
        self._accepting = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "PredictionService":
        for shard in self.shards:
            shard.start()
        self._accepting = True
        return self

    async def stop(self) -> None:
        """Graceful drain: stop admitting, flush every queue, join the
        shard tasks."""
        self._accepting = False
        await asyncio.gather(*(shard.drain() for shard in self.shards))

    async def __aenter__(self) -> "PredictionService":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    @property
    def accepting(self) -> bool:
        return self._accepting

    # -- routing ------------------------------------------------------------

    def shard_of(self, session_id: str) -> Shard:
        shard = self._shard_cache.get(session_id)
        if shard is None:
            shard = self.shards[stable_shard_hash(session_id)
                                % len(self.shards)]
            self._shard_cache[session_id] = shard
        return shard

    # -- session management --------------------------------------------------

    async def open_session(self, session_id: str,
                           spec: PredictorSpec) -> None:
        """Create (idempotently) the session's predictor on its shard."""
        if not self._accepting:
            raise RuntimeError("service is not accepting requests")
        await self.shard_of(session_id).control("open", (session_id, spec))

    async def close_session(self, session_id: str) -> Optional[int]:
        """Tear the session down; returns its served count (None if it
        never existed)."""
        shard = self.shard_of(session_id)
        self._shard_cache.pop(session_id, None)
        return await shard.control("close", session_id)

    # -- the data path -------------------------------------------------------

    def submit(self, request: PredictRequest, span=None
               ) -> "asyncio.Future[PredictResponse]":
        """Admit one request; never blocks.

        The returned future resolves with the response.  Rejections
        (service closed, shard queue full) resolve it immediately —
        callers distinguish them by ``response.error``.

        ``span`` is the request's trace span when the transport minted
        one at protocol decode; in-process callers leave it ``None``
        and sampling happens here (with a zero-length ``decode`` stage,
        so every span carries the same stage vocabulary).
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[PredictResponse]" = loop.create_future()
        tracer = self.tracer
        if span is None and tracer is not None and self._accepting:
            span = tracer.start(request.session_id, request.seq)
            if span is not None:
                span.mark("decode")
        if not self._accepting:
            future.set_result(PredictResponse(
                session_id=request.session_id, seq=request.seq, ok=False,
                error=ERR_CLOSED))
            self._finish_rejected(span)
            return future
        shard = self.shard_of(request.session_id)
        if not shard.try_submit(request, future, span):
            future.set_result(PredictResponse(
                session_id=request.session_id, seq=request.seq, ok=False,
                error="retry-after",
                retry_after_us=self.config.retry_after_us))
            self._finish_rejected(span)
        return future

    def _finish_rejected(self, span) -> None:
        """A rejected request's span ends at the admission edge."""
        if span is not None and self.tracer is not None:
            span.mark("reply")
            self.tracer.finish(span)

    async def request(self, request: PredictRequest,
                      span=None) -> PredictResponse:
        """Submit and await one request."""
        return await self.submit(request, span=span)

    # -- snapshot / restore ---------------------------------------------------

    async def snapshot_payload(self) -> Dict[str, object]:
        """Quiesced, picklable state of every session.

        Each shard serialises its sessions from inside its own loop
        iteration (the control is a barrier), so the payload reflects a
        per-session consistent point: all requests admitted before the
        snapshot call are included, none after.
        """
        sessions: Dict[str, object] = {}
        for shard_sessions in await asyncio.gather(
                *(shard.control("snapshot") for shard in self.shards)):
            sessions.update(shard_sessions)
        return {"schema": 1, "sessions": sessions}

    async def restore_payload(self, payload: Dict[str, object]) -> int:
        """Load sessions from :meth:`snapshot_payload` output, routing
        each to its (possibly different) home shard.  Returns the
        number of sessions restored."""
        sessions = payload["sessions"]
        by_shard: Dict[int, Dict[str, object]] = {}
        for session_id, state in sessions.items():
            index = stable_shard_hash(session_id) % len(self.shards)
            by_shard.setdefault(index, {})[session_id] = state
        await asyncio.gather(
            *(self.shards[index].control("restore", chunk)
              for index, chunk in by_shard.items()))
        return len(sessions)

    # -- observability --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        per_shard = [shard.stats() for shard in self.shards]
        totals = {key: sum(s[key] for s in per_shard)
                  for key in ("sessions", "served", "batches",
                              "kernel_batches", "rejected", "degraded")}
        totals["max_batch"] = max((s["max_batch"] for s in per_shard),
                                  default=0)
        hot = aggregate_hottrace(per_shard)
        if hot is not None:
            totals["hottrace"] = hot
        return {"config": {
                    "n_shards": self.config.n_shards,
                    "max_batch": self.config.max_batch,
                    "max_delay_us": self.config.max_delay_us,
                    "queue_depth": self.config.queue_depth,
                    "backend": self.config.backend,
                    "policy": self.config.effective_policy()
                                         .to_json_dict(),
                },
                "totals": totals, "shards": per_shard}

    def metrics_registry(self) -> MetricsRegistry:
        """A :class:`MetricsRegistry` view of the live service.

        Served/batch/reject totals and queue depths as gauges, the
        merged batch-size distribution and — when telemetry is on —
        the per-stage request-latency histograms as mounted streaming
        histograms, so registry snapshot/diff/merge (and the
        time-series exporter built on them) see the service like any
        other instrumented subsystem.
        """
        reg = MetricsRegistry("serve")
        stats = self.stats()
        for key, value in stats["totals"].items():
            if isinstance(value, dict):  # hottrace counter block
                for sub, subvalue in value.items():
                    reg.set(f"serve.{key}.{sub}", subvalue)
            else:
                reg.set(f"serve.{key}", value)
        reg.set("serve.queue_depth",
                sum(s["depth"] for s in stats["shards"]))
        for i, shard_stats in enumerate(stats["shards"]):
            reg.set(f"serve.shards.{i}.depth", shard_stats["depth"])
            reg.set(f"serve.shards.{i}.served", shard_stats["served"])
        batch_sizes = StreamingHistogram("batch_size")
        for shard in self.shards:
            batch_sizes.merge(shard.batch_sizes)
        if batch_sizes.count:
            reg.mount("serve.batch_size", batch_sizes)
        if self.tracer is not None:
            for key, value in self.tracer.counters().items():
                reg.set(f"trace.{key}", value)
            for stage, hist in self.tracer.stage_hists.items():
                reg.mount(f"trace.stage_us.{stage}", hist)
            if self.tracer.total_hist.count:
                reg.mount("trace.total_us", self.tracer.total_hist)
        return reg

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat snapshot — the time-series exporter's source."""
        return self.metrics_registry().snapshot()
