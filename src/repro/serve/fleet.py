"""Multi-process serve fleet: a router over worker subprocesses.

:class:`ServeFleet` scales the single-process
:class:`~repro.serve.service.PredictionService` past one interpreter
by running N copies of it in worker subprocesses
(:mod:`repro.serve.worker`) and routing sessions onto them with a
consistent-hash :class:`~repro.serve.ring.HashRing`.  The router keeps
the whole external contract of the single service — ``submit`` /
``request`` / ``open_session`` / ``close_session`` / ``stats`` /
``metrics_snapshot`` and the async context manager — so the JSONL
transports (:mod:`repro.serve.net`), the load generator and the bench
all run unchanged against either.

Durability: the write-ahead rule
--------------------------------
Every accepted record (session open/close, data request) is appended
to the target worker's :class:`~repro.serve.wal.WriteAheadLog`
*before* its frame is written to the socket.  A worker's predictor
state is therefore always ``last persisted snapshot + WAL suffix``:

* **Worker death** (EOF on the link): the router spawns a replacement,
  restores the last snapshot, then replays the WAL suffix in admission
  order — chasing the tail, because requests accepted *during*
  recovery also land in the WAL — and flips the worker live when
  replay catches up.  Responses produced by replay resolve the futures
  still pending from before the crash; responses to records that were
  already answered are recognised by sequence number and dropped, so
  every accepted request is answered exactly once and no predictor
  update is ever applied twice.
* **Router restart**: ``start()`` finds the fleet manifest in
  ``state_dir`` and rebuilds every worker the same way (no futures
  pending — every replay response is a drop).

The WAL is *bounded* by snapshotting, not by discarding: when a log
passes ``wal_limit`` records the router takes a snapshot at a barrier
mark, persists it (:mod:`repro.serve.snapshot` envelopes) and
truncates the log to the mark.

Rebalance / elastic resize
--------------------------
``resize(n)`` pauses admission (submits resolve ``retry-after``, the
open-loop contract), quiesces outstanding work, snapshots every
worker, recomputes the ring, spawns/retires workers, and moves *only*
the sessions whose ring owner changed (``restore`` chunks to the new
owner, ``evict`` to the old — consistent hashing keeps that to
``~moved/n``), then persists fresh snapshots and resumes.

Correlation contract: per-session ``seq`` values must be unique (the
transports and the load generator already do this); replay
deduplication tells "already answered" from "still pending" by
comparing a response's ``seq`` against the session's FIFO of pending
admissions.
"""

from __future__ import annotations

import json
import os
import secrets
import subprocess
import sys
import tempfile
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Optional, Set, Tuple

import asyncio

import repro
from repro.api import PredictorSpec
from repro.obs.registry import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_CLOSED,
    ERR_RETRY,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    encode_frame,
    read_frame,
    request_to_wire,
)
from repro.serve.ring import HashRing
from repro.serve.snapshot import load_snapshot, save_snapshot
from repro.serve.wal import WriteAheadLog

#: Exit code of a fault-plan kill (mirrors repro.robust.faults).
KILLED_EXIT = 86

_MANIFEST = "fleet.json"


class FleetError(RuntimeError):
    """A fleet-level operational failure (spawn, handshake, drain)."""


class _Worker:
    """Router-side handle of one worker subprocess."""

    def __init__(self, name: str, index: int, wal_path: str) -> None:
        self.name = name
        self.index = index
        self.proc: Optional[subprocess.Popen] = None
        self.reader: Optional["asyncio.StreamReader"] = None
        self.writer: Optional["asyncio.StreamWriter"] = None
        self.reader_task: Optional["asyncio.Task"] = None
        self.wal = WriteAheadLog(wal_path)
        #: Absolute count of records ever appended to this worker's WAL
        #: (monotonic; truncation does not rewind it).  ``appended -
        #: wal.records`` is the absolute index of the WAL's first
        #: surviving record.
        self.appended = self.wal.records
        #: Admitted-but-unflushed records (only ``("req", …)`` — control
        #: records flush the buffer and append directly).
        self.buffer: List[Tuple] = []
        self.flush_scheduled = False
        #: Pending admissions: session -> {seq -> future}.  Responses
        #: resolve by exact (session, seq) — batches complete out of
        #: order across sessions, and replay re-answers (seq no longer
        #: pending) must drop, so positional matching can't work.
        self.pending: Dict[str, Dict[int, "asyncio.Future"]] = {}
        self.outstanding = 0
        #: Ack FIFO of in-flight controls: ``(abs_index | None, future)``.
        self.ctl_fifo: Deque[Tuple[Optional[int], "asyncio.Future"]] = deque()
        #: Crash re-attachment map: WAL abs index -> caller future for
        #: controls not yet acked (survives the link, unlike the FIFO).
        self.ctl_by_index: Dict[int, "asyncio.Future"] = {}
        self.snapshot_waiters: Dict[int, "asyncio.Future"] = {}
        #: Partial snapshot state arriving in snap_part chunks.
        self.snap_parts: Dict[int, Dict[str, object]] = {}
        self.live = asyncio.Event()
        self.retired = False
        self.snapshotting = False
        self.deaths = 0
        self.served = 0
        self.replay_drops = 0
        self.session_count = 0
        self.final_stats: Optional[Dict] = None
        #: Last ``("stats",)`` poll result (service totals) — refreshed
        #: by :meth:`ServeFleet.poll_stats`, superseded by
        #: ``final_stats`` once the worker says bye.
        self.live_stats: Optional[Dict] = None
        self.log_handle = None

    @property
    def alive(self) -> bool:
        return self.live.is_set()

    @property
    def wal_base(self) -> int:
        """Absolute index of the first surviving WAL record."""
        return self.appended - self.wal.records

    def write_frame(self, payload: object) -> None:
        """Synchronous ordered frame write (StreamWriter buffers)."""
        assert self.writer is not None
        self.writer.write(encode_frame(payload))


class ServeFleet:
    """N-process prediction fleet behind one router (module docstring).

    Drop-in async peer of :class:`~repro.serve.service.
    PredictionService`: ``async with ServeFleet(...) as fleet`` then
    ``submit``/``request`` away.
    """

    def __init__(self, n_workers: int = 2,
                 config: Optional[ServeConfig] = None,
                 state_dir: Optional[str] = None,
                 wal_limit: int = 8192,
                 outstanding_limit: int = 1024,
                 fault_plan=None,
                 hello_timeout_s: float = 60.0,
                 policy=None) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if wal_limit < 1 or outstanding_limit < 1:
            raise ValueError("wal_limit / outstanding_limit must be >= 1")
        self.config = config if config is not None else ServeConfig()
        if policy is not None:
            # Same contract as PredictionService(policy=...): the
            # ExecutionPolicy rides the pickled config frame to every
            # worker subprocess.
            self.config = self.config.with_policy(policy)
        self.n_workers = n_workers
        self.state_dir = state_dir or tempfile.mkdtemp(prefix="fleet-")
        os.makedirs(self.state_dir, exist_ok=True)
        self.wal_limit = wal_limit
        self.outstanding_limit = outstanding_limit
        self.fault_plan = fault_plan
        self.hello_timeout_s = hello_timeout_s
        #: Duck-typing peer of PredictionService.tracer (the router
        #: does not mint spans; workers trace their own service).
        self.tracer = None
        self.ring = HashRing()
        self.workers: Dict[str, _Worker] = {}
        self._sessions: Dict[str, bool] = {}
        self._owner_cache: Dict[str, _Worker] = {}
        self._server: Optional["asyncio.base_events.Server"] = None
        self._port: Optional[int] = None
        self._token = secrets.token_hex(16)
        self._hello_waiters: Dict[str, "asyncio.Future"] = {}
        self._accepting = False
        self._paused = False
        self._pause_gate = asyncio.Event()
        self._pause_gate.set()
        self._closed = False
        self._snapshot_seq = 0
        self._next_index = 0
        self._resize_lock = asyncio.Lock()
        # Counters surfaced via stats()/metrics.
        self._served = 0
        self._rejected = 0
        self._worker_deaths = 0
        self._recoveries = 0
        self._rebalances = 0
        self._sessions_moved = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self, recover: bool = True) -> "ServeFleet":
        """Bring the fleet up.

        With ``recover=True`` (default) and a manifest in
        ``state_dir``, the previous topology is adopted and every
        worker is rebuilt as snapshot + full WAL replay — the router
        restart path.  Otherwise a fresh fleet of ``n_workers`` spawns.
        """
        self._server = await asyncio.start_server(
            self._on_worker_connect, host="127.0.0.1", port=0)
        self._port = self._server.sockets[0].getsockname()[1]
        manifest = self._read_manifest() if recover else None
        names = (manifest["workers"] if manifest
                 else [f"w{i}" for i in range(self.n_workers)])
        self._next_index = 1 + max(
            (int(n[1:]) for n in names if n[1:].isdigit()),
            default=len(names) - 1)
        recovering = manifest is not None
        await asyncio.gather(*(
            self._bring_up(name, index, recover=recovering)
            for index, name in enumerate(names)))
        for name in names:
            self.ring.add_node(name)
        if recovering:
            self._rebuild_session_book()
        self._write_manifest()
        self._accepting = True
        return self

    async def stop(self) -> None:
        """Graceful shutdown: drain every live worker, keep all state
        on disk (a later ``start()`` recovers it)."""
        if self._closed:
            return
        self._accepting = False
        self._closed = True
        for worker in self.workers.values():
            self._flush_now(worker)
        await asyncio.gather(*(self._drain_worker(w)
                               for w in self.workers.values()),
                             return_exceptions=True)
        for worker in self.workers.values():
            self._reap(worker)
            worker.wal.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def __aenter__(self) -> "ServeFleet":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    @property
    def accepting(self) -> bool:
        return self._accepting and not self._paused

    @property
    def worker_names(self) -> Tuple[str, ...]:
        return self.ring.nodes

    # -- spawn / handshake --------------------------------------------------

    def _worker_config(self) -> ServeConfig:
        # Workers must never reject an accepted request (admission
        # control lives in the router), so each shard queue is at
        # least the router's per-worker outstanding cap deep.
        depth = max(self.config.queue_depth, self.outstanding_limit)
        return replace(self.config, queue_depth=depth)

    def _spawn_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        extra = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src if not extra
                             else src + os.pathsep + extra)
        # Hygiene: workers import from src/ but must not scatter
        # __pycache__ into the tree (satellite: stale-bytecode guard).
        env["PYTHONDONTWRITEBYTECODE"] = "1"
        return env

    async def _on_worker_connect(self, reader, writer) -> None:
        try:
            frame = await asyncio.wait_for(read_frame(reader),
                                           self.hello_timeout_s)
        except Exception:
            writer.close()
            return
        if (not isinstance(frame, tuple) or len(frame) != 4
                or frame[0] != "hello" or frame[1] != self._token):
            writer.close()
            return
        _, _, name, _pid = frame
        waiter = self._hello_waiters.pop(name, None)
        if waiter is None or waiter.done():
            writer.close()
            return
        waiter.set_result((reader, writer))

    async def _spawn_process(self, worker: _Worker) -> None:
        """Popen + hello handshake + config frame; leaves the worker
        connected but not yet live."""
        loop = asyncio.get_running_loop()
        waiter = loop.create_future()
        self._hello_waiters[worker.name] = waiter
        if worker.log_handle is None:
            worker.log_handle = open(
                os.path.join(self.state_dir, f"{worker.name}.log"), "ab")
        worker.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.worker",
             "--connect", f"127.0.0.1:{self._port}",
             "--token", self._token, "--name", worker.name],
            stdout=worker.log_handle, stderr=worker.log_handle,
            env=self._spawn_env())
        try:
            reader, writer = await asyncio.wait_for(
                waiter, self.hello_timeout_s)
        except asyncio.TimeoutError:
            self._hello_waiters.pop(worker.name, None)
            worker.proc.kill()
            raise FleetError(f"worker {worker.name} never said hello "
                             f"(see {worker.name}.log in {self.state_dir})")
        worker.reader, worker.writer = reader, writer
        # A fault-plan death fires once per worker: the replacement
        # process must not inherit the doom, or it re-dies at the same
        # served count while replaying the very WAL suffix its
        # predecessor's death created — a crash loop, never a recovery.
        plan = self.fault_plan if worker.deaths == 0 else None
        worker.write_frame(("config", self._worker_config(),
                            plan, worker.index))
        worker.reader_task = asyncio.ensure_future(
            self._reader_loop(worker))

    async def _bring_up(self, name: str, index: int,
                        recover: bool) -> None:
        worker = _Worker(name, index,
                         os.path.join(self.state_dir, f"wal-{name}.log"))
        self.workers[name] = worker
        await self._spawn_process(worker)
        if recover:
            snap = load_snapshot(self.state_dir, f"snap-{name}")
            if snap is not None:
                await self._send_restore(worker, snap)
            await self._replay(worker)
        else:
            worker.live.set()

    def _reap(self, worker: _Worker) -> None:
        if worker.proc is not None:
            if worker.proc.poll() is None:
                worker.proc.kill()
            worker.proc.wait()
        if worker.log_handle is not None:
            worker.log_handle.close()
            worker.log_handle = None

    # -- manifest -----------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.state_dir, _MANIFEST)

    def _read_manifest(self) -> Optional[Dict]:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("schema") != 1 or "workers" not in manifest:
            return None
        return manifest

    def _write_manifest(self) -> None:
        payload = {"schema": 1, "workers": list(self.ring.nodes)}
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, self._manifest_path())

    def _rebuild_session_book(self) -> None:
        """After router-restart recovery: sessions = snapshot keys ∪
        WAL opens − WAL closes, per worker."""
        self._sessions.clear()
        for worker in self.workers.values():
            present: Set[str] = set()
            snap = load_snapshot(self.state_dir, f"snap-{worker.name}")
            if snap is not None:
                present.update(snap["sessions"].keys())
            for record in worker.wal.replay():
                if record[0] == "open":
                    present.add(record[1])
                elif record[0] == "close":
                    present.discard(record[1])
            worker.session_count = len(present)
            for session_id in present:
                self._sessions[session_id] = True

    # -- routing ------------------------------------------------------------

    def owner_of(self, session_id: str) -> str:
        """The (name of the) worker owning ``session_id`` now."""
        return self._owner(session_id).name

    def _owner(self, session_id: str) -> _Worker:
        worker = self._owner_cache.get(session_id)
        if worker is None:
            worker = self.workers[self.ring.node_for(session_id)]
            self._owner_cache[session_id] = worker
        return worker

    # -- the data path ------------------------------------------------------

    def submit(self, request: PredictRequest, span=None
               ) -> "asyncio.Future[PredictResponse]":
        """Admit one request; never blocks (PredictionService
        contract).  Accepted means WAL-recorded: the future resolves
        even across a worker crash, via replay."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[PredictResponse]" = loop.create_future()
        if self._closed or not self._accepting:
            future.set_result(PredictResponse(
                session_id=request.session_id, seq=request.seq,
                ok=False, error=ERR_CLOSED))
            return future
        if self._paused:
            self._rejected += 1
            future.set_result(self._retry_response(request))
            return future
        worker = self._owner(request.session_id)
        if worker.outstanding >= self.outstanding_limit:
            self._rejected += 1
            future.set_result(self._retry_response(request))
            return future
        by_seq = worker.pending.get(request.session_id)
        if by_seq is None:
            by_seq = worker.pending[request.session_id] = {}
        if request.seq in by_seq:
            # Correlation ids must be unique while in flight — replay
            # dedup depends on it (module docstring).
            future.set_result(PredictResponse(
                session_id=request.session_id, seq=request.seq,
                ok=False, error=ERR_BAD_REQUEST))
            return future
        by_seq[request.seq] = future
        worker.outstanding += 1
        record = ("req", request_to_wire(request))
        if worker.alive:
            worker.buffer.append(record)
            self._schedule_flush(worker)
        else:
            # Recovering: straight to the WAL; the replay tail-chase
            # delivers it (and answers the future) in order.
            worker.wal.append([record])
            worker.appended += 1
        return future

    def _retry_response(self, request: PredictRequest) -> PredictResponse:
        return PredictResponse(
            session_id=request.session_id, seq=request.seq, ok=False,
            error=ERR_RETRY,
            retry_after_us=self.config.retry_after_us)

    async def request(self, request: PredictRequest,
                      span=None) -> PredictResponse:
        return await self.submit(request, span=span)

    def _schedule_flush(self, worker: _Worker) -> None:
        if not worker.flush_scheduled:
            worker.flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush_cb, worker)

    def _flush_cb(self, worker: _Worker) -> None:
        worker.flush_scheduled = False
        self._flush_now(worker)
        self._maybe_snapshot(worker)

    def _flush_now(self, worker: _Worker) -> None:
        """WAL-then-forward one admission batch (synchronous: callers
        rely on no interleaved admissions)."""
        if not worker.buffer:
            return
        records = worker.buffer
        worker.buffer = []
        worker.wal.append(records)
        worker.appended += len(records)
        if worker.alive:
            worker.write_frame(("batch", [wire for _, wire in records]))

    # -- session controls ---------------------------------------------------

    async def open_session(self, session_id: str,
                           spec: PredictorSpec) -> None:
        if not self._accepting:
            raise RuntimeError("fleet is not accepting requests")
        await self._unpaused()
        spec_dict = spec.to_json_dict()
        worker = self._owner(session_id)
        result = await self._walled_control(
            worker, ("open", session_id, spec_dict),
            ("open", session_id, spec_dict))
        if isinstance(result, Exception):
            raise result
        if session_id not in self._sessions:
            self._sessions[session_id] = True
            worker.session_count += 1

    async def close_session(self, session_id: str) -> Optional[int]:
        await self._unpaused()
        worker = self._owner(session_id)
        result = await self._walled_control(
            worker, ("close", session_id), ("close", session_id))
        if self._sessions.pop(session_id, None):
            worker.session_count -= 1
        self._owner_cache.pop(session_id, None)
        if isinstance(result, Exception):
            raise result
        return result

    async def _unpaused(self) -> None:
        """Hold session controls while a resize is rebalancing: a
        control admitted mid-pause would land its WAL record on the
        *old* ring owner and then route to the new one after the swap
        — an unknown-session hole the pause gate closes."""
        while self._paused:
            await self._pause_gate.wait()

    async def _walled_control(self, worker: _Worker, record: Tuple,
                              frame: Tuple):
        """Send one WAL-backed control and await its ack.  Survives a
        worker crash: the record replays, and the pending future is
        re-attached by absolute WAL index."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._flush_now(worker)
        index = worker.appended
        worker.wal.append([record])
        worker.appended += 1
        worker.ctl_by_index[index] = future
        if worker.alive:
            worker.ctl_fifo.append((index, future))
            worker.write_frame(frame)
        return await future

    async def _transient_control(self, worker: _Worker, frame: Tuple):
        """A control that is *not* WAL-backed (recovery restore,
        rebalance evict/restore) — FIFO-matched only."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        worker.ctl_fifo.append((None, future))
        worker.write_frame(frame)
        result = await future
        if isinstance(result, Exception):
            raise result
        return result

    #: Sessions per restore control — bounds restore frames the same
    #: way snap_part bounds snapshot frames.
    RESTORE_CHUNK = 1024

    async def _send_restore(self, worker: _Worker,
                            payload: Dict[str, object]) -> int:
        """Ship a snapshot payload to a worker in bounded chunks
        (restore controls are additive per session)."""
        items = list(payload["sessions"].items())
        total = 0
        for i in range(0, len(items), self.RESTORE_CHUNK):
            chunk = {"schema": payload.get("schema", 1),
                     "sessions": dict(items[i:i + self.RESTORE_CHUNK])}
            total += await self._transient_control(worker,
                                                   ("restore", chunk))
        return total

    # -- the reader loop ----------------------------------------------------

    async def _reader_loop(self, worker: _Worker) -> None:
        reader = worker.reader
        assert reader is not None
        try:
            while True:
                frame = await read_frame(reader)
                kind = frame[0]
                if kind == "results":
                    for wire in frame[1]:
                        self._resolve(worker, wire)
                elif kind == "ctl" or kind == "ctl_err":
                    index, future = worker.ctl_fifo.popleft()
                    if index is not None:
                        worker.ctl_by_index.pop(index, None)
                    value = (frame[1] if kind == "ctl"
                             else FleetError(frame[1]))
                    if not future.done():
                        future.set_result(value)
                elif kind == "snap_part":
                    worker.snap_parts.setdefault(
                        frame[1], {}).update(frame[2])
                elif kind == "snap_done":
                    sessions = worker.snap_parts.pop(frame[1], {})
                    waiter = worker.snapshot_waiters.pop(frame[1], None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result({"schema": frame[2],
                                           "sessions": sessions})
                elif kind == "bye":
                    worker.final_stats = frame[1]
                elif kind == "pong":
                    pass
                else:  # pragma: no cover - protocol future-proofing
                    raise FleetError(f"unknown worker frame {kind!r}")
        except (asyncio.IncompleteReadError, ConnectionError,
                ProtocolError):
            # A desynced/corrupt stream is indistinguishable from a
            # garbled worker: drop the link and let recovery rebuild
            # it from the WAL.
            pass
        finally:
            if not self._closed and not worker.retired:
                asyncio.ensure_future(self._recover(worker))

    def _resolve(self, worker: _Worker, wire: Tuple) -> None:
        session_id, seq = wire[0], wire[1]
        by_seq = worker.pending.get(session_id)
        future = by_seq.pop(seq, None) if by_seq else None
        if future is None:
            # A replay re-answer of an already-answered request (or a
            # response for a router generation that no longer waits).
            worker.replay_drops += 1
            return
        if by_seq is not None and not by_seq:
            del worker.pending[session_id]
        worker.outstanding -= 1
        worker.served += 1
        self._served += 1
        if not future.done():
            ok = wire[2]
            future.set_result(PredictResponse(
                session_id=session_id, seq=seq, ok=ok,
                result=wire[3], error=wire[4], retry_after_us=wire[5]))

    # -- crash recovery -----------------------------------------------------

    async def _recover(self, worker: _Worker) -> None:
        """Rebuild one dead worker: respawn, restore last snapshot,
        replay the WAL suffix (chasing admissions that arrive while we
        replay), then flip live."""
        if self._closed or worker.retired:
            return
        worker.live.clear()
        worker.deaths += 1
        self._worker_deaths += 1
        self._reap(worker)
        # Records admitted but not yet flushed still belong to the
        # durable suffix — WAL them now, forward via replay.
        if worker.buffer:
            records = worker.buffer
            worker.buffer = []
            worker.wal.append(records)
            worker.appended += len(records)
        # In-flight snapshot can never complete; its truncate must not
        # happen (replay needs the full suffix).
        for waiter in worker.snapshot_waiters.values():
            if not waiter.done():
                waiter.set_result(FleetError("worker died mid-snapshot"))
        worker.snapshot_waiters.clear()
        worker.snap_parts.clear()
        # Unacked controls stay registered in ctl_by_index and ride the
        # replay; the dead link's FIFO is meaningless now.
        worker.ctl_fifo.clear()
        await self._spawn_process(worker)
        snap = load_snapshot(self.state_dir, f"snap-{worker.name}")
        if snap is not None:
            await self._send_restore(worker, snap)
        await self._replay(worker)
        self._recoveries += 1

    async def _replay(self, worker: _Worker) -> None:
        """Forward the WAL suffix in order; on return the worker is
        live and byte-for-byte caught up with every accepted record."""
        sent = 0
        while True:
            records = worker.wal.replay()
            if sent >= len(records):
                break
            base = worker.wal_base
            batch: List[Tuple] = []
            chunk = records[sent:]
            start = sent
            sent = len(records)
            for offset, record in enumerate(chunk):
                if record[0] == "req":
                    batch.append(record[1])
                    continue
                if batch:
                    worker.write_frame(("batch", batch))
                    batch = []
                index = base + start + offset
                await self._replay_control(worker, index, record)
            if batch:
                worker.write_frame(("batch", batch))
        worker.live.set()
        # Anything admitted after the final replay() went through the
        # not-alive path directly into the WAL *before* live was set —
        # no gap — but the live buffer path owns delivery from here on.

    async def _replay_control(self, worker: _Worker, index: int,
                              record: Tuple) -> None:
        if record[0] == "open":
            frame: Tuple = ("open", record[1], record[2])
        else:
            frame = ("close", record[1])
        future = worker.ctl_by_index.get(index)
        if future is None:
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            worker.ctl_by_index[index] = future
        worker.ctl_fifo.append((index, future))
        worker.write_frame(frame)
        await future

    async def kill_worker(self, name: str) -> None:
        """Chaos helper: hard-kill one worker process (SIGKILL); the
        reader loop notices EOF and recovery takes over."""
        worker = self.workers[name]
        if worker.proc is not None and worker.proc.poll() is None:
            worker.proc.kill()

    async def wait_all_live(self) -> None:
        """Block until every worker finished any in-flight recovery."""
        await asyncio.gather(*(w.live.wait()
                               for w in self.workers.values()))

    # -- snapshot bounding --------------------------------------------------

    def _maybe_snapshot(self, worker: _Worker) -> None:
        if (worker.wal.records >= self.wal_limit and worker.alive
                and not worker.snapshotting):
            worker.snapshotting = True
            asyncio.ensure_future(self._snapshot_and_truncate(worker))

    async def _snapshot_and_truncate(self, worker: _Worker) -> None:
        try:
            payload, mark = await self._snapshot_barrier(worker)
            if isinstance(payload, Exception):
                return  # worker died mid-snapshot; replay covers it
            save_snapshot(self.state_dir, f"snap-{worker.name}", payload)
            worker.wal.truncate(mark - worker.wal_base)
        finally:
            worker.snapshotting = False

    async def _snapshot_barrier(self, worker: _Worker):
        """Flush, mark, and request a snapshot with *no await* between
        — so the mark is exact: records ≤ mark are in the payload,
        records > mark are not."""
        self._flush_now(worker)
        mark = worker.appended
        self._snapshot_seq += 1
        token = self._snapshot_seq
        loop = asyncio.get_running_loop()
        waiter = loop.create_future()
        worker.snapshot_waiters[token] = waiter
        worker.write_frame(("snapshot", token))
        payload = await waiter
        return payload, mark

    # -- rebalance / elastic resize -----------------------------------------

    async def resize(self, n_workers: int) -> Dict[str, int]:
        """Grow or shrink the fleet to ``n_workers``, migrating only
        the sessions whose ring owner changes.  Returns movement
        stats.  Admission pauses (``retry-after``) for the duration —
        open-loop clients see latency, not errors-after-accept."""
        if n_workers < 1:
            raise ValueError("need at least one worker")
        async with self._resize_lock:
            if not self._accepting:
                raise RuntimeError("fleet is not running")
            self._paused = True
            self._pause_gate.clear()
            try:
                return await self._resize_locked(n_workers)
            finally:
                self._paused = False
                self._pause_gate.set()

    async def _resize_locked(self, n_workers: int) -> Dict[str, int]:
        await self._quiesce()
        await self.wait_all_live()
        # Snapshot every current worker at the quiesced barrier.
        payloads: Dict[str, Dict] = {}
        for name in self.ring.nodes:
            worker = self.workers[name]
            payload, mark = await self._snapshot_barrier(worker)
            if isinstance(payload, Exception):
                raise FleetError(f"snapshot of {name} failed: {payload}")
            payloads[name] = payload
            save_snapshot(self.state_dir, f"snap-{name}", payload)
            worker.wal.truncate(mark - worker.wal_base)
        old_names = list(self.ring.nodes)
        new_ring = HashRing(replicas=self.ring.replicas)
        keep = old_names[:n_workers]
        retire = old_names[n_workers:]
        added: List[str] = []
        for name in keep:
            new_ring.add_node(name)
        while len(new_ring) < n_workers:
            name = f"w{self._next_index}"
            self._next_index += 1
            added.append(name)
            new_ring.add_node(name)
        for name in added:
            await self._bring_up(name, len(self.workers), recover=False)
        # Compute moves under the new ring.
        moves: Dict[str, Dict[str, Dict]] = {}
        moved = 0
        for old_name in old_names:
            sessions = payloads[old_name]["sessions"]
            for session_id, state in sessions.items():
                new_name = new_ring.node_for(session_id)
                if new_name != old_name:
                    bundle = moves.setdefault(
                        new_name, {"sessions": {}, "from": []})
                    bundle["sessions"][session_id] = state
                    bundle["from"].append((old_name, session_id))
                    moved += 1
        # Restore moved sessions on their new owners, evict from old.
        evictions: Dict[str, List[str]] = {}
        for new_name, bundle in moves.items():
            await self._send_restore(
                self.workers[new_name],
                {"schema": 1, "sessions": bundle["sessions"]})
            for old_name, session_id in bundle["from"]:
                evictions.setdefault(old_name, []).append(session_id)
        for old_name, session_ids in evictions.items():
            if old_name in retire:
                continue  # whole process retires below
            await self._transient_control(self.workers[old_name],
                                          ("evict", session_ids))
        self.ring = new_ring
        self._owner_cache.clear()
        # Retire shrunk-away workers: drain, reap, drop their state.
        for name in retire:
            worker = self.workers.pop(name)
            worker.retired = True
            await self._drain_worker(worker)
            self._reap(worker)
            worker.wal.close()
            try:
                os.remove(worker.wal.path)
            except OSError:
                pass
        # Fresh snapshots reflecting the new placement (so a router
        # restart right now recovers the new topology).
        for name in self.ring.nodes:
            worker = self.workers[name]
            payload, mark = await self._snapshot_barrier(worker)
            if isinstance(payload, Exception):
                raise FleetError(f"post-move snapshot of {name} failed")
            save_snapshot(self.state_dir, f"snap-{name}", payload)
            worker.wal.truncate(mark - worker.wal_base)
            worker.session_count = len(payload["sessions"])
        self._write_manifest()
        self._rebalances += 1
        self._sessions_moved += moved
        return {"workers": len(self.ring), "sessions_moved": moved,
                "retired": len(retire), "added": len(added)}

    async def _quiesce(self) -> None:
        """Wait out all outstanding requests (admission is paused or
        closed by the caller)."""
        while any(w.outstanding for w in self.workers.values()):
            for worker in self.workers.values():
                self._flush_now(worker)
            await asyncio.sleep(0.002)

    async def _drain_worker(self, worker: _Worker) -> None:
        if worker.writer is None or not worker.alive:
            return
        try:
            worker.write_frame(("drain",))
            await asyncio.wait_for(worker.writer.drain(), 10.0)
            if worker.proc is not None:
                await asyncio.wait_for(
                    asyncio.get_running_loop().run_in_executor(
                        None, worker.proc.wait), 30.0)
        except (ConnectionError, asyncio.TimeoutError, RuntimeError):
            pass

    # -- observability ------------------------------------------------------

    async def poll_stats(self) -> None:
        """Refresh each live worker's service totals over the link.

        Worker-side counters (hottrace hit/abort, backend degrades,
        batch histograms) otherwise only reach the router in the
        ``bye`` frame at drain; bench and ``serve top`` call this so
        :meth:`stats` reflects a *running* fleet."""
        for worker in list(self.workers.values()):
            if not worker.alive:
                continue
            try:
                worker.live_stats = await self._transient_control(
                    worker, ("stats",))
            except (FleetError, ConnectionError, RuntimeError):
                pass  # mid-death poll: recovery owns this worker now

    def stats(self) -> Dict[str, object]:
        per_worker = {}
        for name in sorted(self.workers):
            worker = self.workers[name]
            per_worker[name] = {
                "index": worker.index,
                "alive": worker.alive,
                "pid": worker.proc.pid if worker.proc else None,
                "served": worker.served,
                "outstanding": worker.outstanding,
                "sessions": worker.session_count,
                "deaths": worker.deaths,
                "wal_records": worker.wal.records,
                "replay_drops": worker.replay_drops,
            }
        totals = {
            "workers": len(self.workers),
            "workers_alive": sum(1 for w in self.workers.values()
                                 if w.alive),
            "sessions": len(self._sessions),
            "served": self._served,
            "rejected": self._rejected,
            "outstanding": sum(w.outstanding
                               for w in self.workers.values()),
            "worker_deaths": self._worker_deaths,
            "recoveries": self._recoveries,
            "rebalances": self._rebalances,
            "sessions_moved": self._sessions_moved,
            "wal_records": sum(w.wal.records
                               for w in self.workers.values()),
            "replay_drops": sum(w.replay_drops
                                for w in self.workers.values()),
        }
        # Worker-service counters (freshest of live poll vs bye frame):
        # degrade totals always, hottrace block when speculation is on.
        from repro.serve.service import aggregate_hottrace
        reports = [w.final_stats or w.live_stats
                   for w in self.workers.values()]
        reports = [r for r in reports if r is not None]
        totals["degraded"] = sum(int(r.get("degraded", 0))
                                 for r in reports)
        hottrace = aggregate_hottrace(reports)
        if hottrace is not None:
            totals["hottrace"] = hottrace
        return {"config": {
                    "n_workers": len(self.workers),
                    "wal_limit": self.wal_limit,
                    "outstanding_limit": self.outstanding_limit,
                    "serve": {"n_shards": self.config.n_shards,
                              "max_batch": self.config.max_batch,
                              "backend": self.config.backend,
                              "policy": self.config.effective_policy()
                                            .to_json_dict()},
                },
                "totals": totals, "workers": per_worker}

    def metrics_registry(self) -> MetricsRegistry:
        """``fleet.*`` metrics for the time-series exporter, the perf
        gate and ``serve top``'s per-worker rows."""
        reg = MetricsRegistry("fleet")
        stats = self.stats()
        for key, value in stats["totals"].items():
            if isinstance(value, dict):
                for sub, subval in value.items():
                    reg.set(f"fleet.{key}.{sub}", subval)
            else:
                reg.set(f"fleet.{key}", value)
        for name, wstats in stats["workers"].items():
            prefix = f"fleet.workers.{wstats['index']}"
            reg.set(f"{prefix}.alive", int(wstats["alive"]))
            for key in ("served", "outstanding", "sessions", "deaths",
                        "wal_records"):
                reg.set(f"{prefix}.{key}", wstats[key])
        return reg

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat snapshot — the time-series exporter's source."""
        return self.metrics_registry().snapshot()
