"""Realistic load generation for the serve stack.

The closed-loop bench (:mod:`repro.serve.bench`) measures *capacity*:
clients pipeline a window and send the next request when an answer
comes back, so offered load self-throttles to whatever the service can
absorb and latency under overload is invisible.  This module adds the
other half — a *load model* with knobs real traffic has:

Session popularity
    Zipf(s): session ranks are drawn from a Zipf CDF, so a handful of
    hot sessions dominate while a long tail stays almost cold.  The
    model scales to millions of *nameable* sessions because nothing is
    materialised per session until the schedule actually touches it —
    a ``n_sessions=1_000_000`` model opens only the few thousand
    sessions its arrivals hit.

Arrival process
    ``poisson`` (exponential gaps), ``uniform`` (fixed gaps), or
    ``bursty`` (poisson modulated by an on/off square wave — bursts of
    ``burst_factor`` × the base rate for ``burst_fraction`` of each
    period), all at a configured ``rate_rps``.

Loop discipline
    :func:`run_open_loop` submits at the *scheduled* arrival times no
    matter how the service is doing, the way external traffic does.
    Latency is measured from the scheduled arrival (not the submit
    call), so queueing delay when the generator falls behind is
    charged to the service — the coordinated-omission-safe measure.
    Overload therefore shows up honestly: as fat p99/p999 and
    ``retry-after`` rejections (counted, never retried — the loop can
    never deadlock on a saturated service).  :func:`run_closed_loop`
    is the windowed capacity probe, for calibration.

Both loops drive anything with the :class:`~repro.serve.service.
PredictionService` duck type — the single-process service or a
:class:`~repro.serve.fleet.ServeFleet` — which is how the fleet bench
compares the two under identical offered load.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

import asyncio

import numpy as np

from repro.api import spec_for
from repro.common.stats import StreamingHistogram
from repro.serve.protocol import ERR_RETRY, PredictRequest

#: Arrival processes the model understands.
ARRIVALS = ("poisson", "uniform", "bursty")


@dataclass(frozen=True)
class LoadModel:
    """One reproducible traffic description.

    ``n_sessions`` bounds the session *id space*; ``zipf_s`` shapes
    popularity (1.0–1.3 are web-like; higher = hotter head).  The
    request stream per arrival is a deterministic function of
    ``seed``, so two runs of the same model offer byte-identical
    traffic — the fleet differential tests depend on this.
    """

    n_sessions: int = 1000
    zipf_s: float = 1.1
    spec_kind: str = "binary.gshare"
    #: Extra PredictorSpec params as (name, value) pairs — a
    #: million-session model wants compact per-session state (e.g.
    #: ``(("history", 7),)`` shrinks a gshare table 16×).
    spec_params: Tuple[Tuple[str, object], ...] = ()
    arrival: str = "poisson"
    rate_rps: float = 5000.0
    seconds: float = 1.0
    clients: int = 8
    seed: int = 0
    burst_factor: float = 8.0
    burst_fraction: float = 0.1
    burst_period_s: float = 0.25
    pc_space: int = 64
    #: Steps per arrival.  1 = each arrival is one ``step`` request;
    #: >1 = each arrival is one ``replay`` request carrying a trace
    #: window of that many consecutive steps (``rate_rps`` stays the
    #: *request* arrival rate, so the offered step rate is
    #: ``rate_rps × chunk_steps``).
    chunk_steps: int = 1
    #: Phase behaviour of a session's windows.  0 (default) draws every
    #: window fresh — no window ever repeats, the adversarial case for
    #: memoization.  N >= 1 gives each session a deterministic bank of
    #: N distinct windows cycled round-robin across its arrivals — the
    #: production-shaped case (docs/hottrace.md): a session re-running
    #: its phase repertoire, which is what the hot-trace layer
    #: speculates on.  Only meaningful with ``chunk_steps > 1``.
    phase_windows: int = 0

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"arrival must be one of {ARRIVALS}")
        if self.rate_rps <= 0 or self.seconds <= 0:
            raise ValueError("rate_rps and seconds must be positive")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.chunk_steps < 1:
            raise ValueError("chunk_steps must be >= 1")
        if self.phase_windows < 0:
            raise ValueError("phase_windows must be >= 0")
        if self.phase_windows and self.chunk_steps == 1:
            raise ValueError("phase_windows requires chunk_steps > 1")


@dataclass
class Schedule:
    """A fully materialised arrival schedule (times + request params).

    With ``chunk_steps == 1``, ``pcs``/``outcomes`` are 1-D (one step
    per arrival); with a window they are ``(arrivals, chunk_steps)``
    and each row is one ``replay`` request's trace window.
    """

    times_s: "np.ndarray"        # scheduled arrival offsets, sorted
    session_ranks: "np.ndarray"  # Zipf rank per arrival (0 = hottest)
    pcs: "np.ndarray"
    outcomes: "np.ndarray"
    chunk_steps: int = 1

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def touched_sessions(self) -> int:
        return int(len(np.unique(self.session_ranks)))

    def request_for(self, i: int, seq: int) -> PredictRequest:
        """The request arrival ``i`` offers (step or replay window)."""
        sid = _session_id(int(self.session_ranks[i]))
        if self.chunk_steps == 1:
            return PredictRequest(sid, op="step", pc=int(self.pcs[i]),
                                  outcome=int(self.outcomes[i]), seq=seq)
        return PredictRequest(
            sid, op="replay", seq=seq,
            pcs=tuple(int(p) for p in self.pcs[i]),
            outcomes=tuple(int(o) for o in self.outcomes[i]))


def _zipf_cdf(n: int, s: float) -> "np.ndarray":
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _arrival_times(model: LoadModel, rng: "np.random.Generator",
                   count_hint: int) -> "np.ndarray":
    """Arrival offsets in [0, seconds) for the model's process."""
    if model.arrival == "uniform":
        gap = 1.0 / model.rate_rps
        return np.arange(0.0, model.seconds, gap, dtype=np.float64)
    # Poisson: exponential gaps, over-draw then trim.
    draw = max(16, int(count_hint * 1.5) + 64)
    gaps = rng.exponential(1.0 / model.rate_rps, size=draw)
    times = np.cumsum(gaps)
    while times[-1] < model.seconds:  # pragma: no cover - rare
        more = rng.exponential(1.0 / model.rate_rps, size=draw)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    times = times[times < model.seconds]
    if model.arrival == "bursty":
        # Thin the poisson stream outside bursts: keep everything in
        # the burst window, keep 1/burst_factor of the rest, so the
        # burst's *instantaneous* rate is burst_factor × the trough.
        phase = np.mod(times, model.burst_period_s) / model.burst_period_s
        in_burst = phase < model.burst_fraction
        keep = in_burst | (rng.random(len(times)) < 1.0 / model.burst_factor)
        times = times[keep]
    return times


def build_schedule(model: LoadModel) -> Schedule:
    """Materialise the model into a deterministic arrival schedule."""
    rng = np.random.default_rng(model.seed)
    count_hint = int(model.rate_rps * model.seconds)
    times = _arrival_times(model, rng, count_hint)
    n = len(times)
    cdf = _zipf_cdf(model.n_sessions, model.zipf_s)
    ranks = np.searchsorted(cdf, rng.random(n), side="right")
    shape = (n,) if model.chunk_steps == 1 else (n, model.chunk_steps)
    pcs = 0x400 + (rng.integers(0, model.pc_space, size=shape) * 4)
    outcomes = rng.integers(0, 2, size=shape)
    if model.phase_windows:
        pcs, outcomes = _phase_lanes(model, ranks)
    return Schedule(times_s=times, session_ranks=ranks.astype(np.int64),
                    pcs=pcs.astype(np.int64),
                    outcomes=outcomes.astype(np.int64),
                    chunk_steps=model.chunk_steps)


def _phase_lanes(model: LoadModel, ranks: "np.ndarray"
                 ) -> Tuple["np.ndarray", "np.ndarray"]:
    """Phased windows: each session cycles a deterministic bank of
    ``phase_windows`` distinct windows across its arrivals.

    The bank is seeded per (model seed, session rank), so two runs of
    the same model offer byte-identical traffic whatever the arrival
    interleaving — the differential-suite property the random path
    already has."""
    n = len(ranks)
    k, w = model.phase_windows, model.chunk_steps
    banks: Dict[int, Tuple["np.ndarray", "np.ndarray"]] = {}
    seen: Dict[int, int] = {}
    pcs = np.empty((n, w), dtype=np.int64)
    outcomes = np.empty((n, w), dtype=np.int64)
    for i in range(n):
        rank = int(ranks[i])
        bank = banks.get(rank)
        if bank is None:
            brng = np.random.default_rng((model.seed, rank))
            bank = (0x400 + brng.integers(0, model.pc_space,
                                          size=(k, w)) * 4,
                    brng.integers(0, 2, size=(k, w)))
            banks[rank] = bank
        occurrence = seen.get(rank, 0)
        seen[rank] = occurrence + 1
        pcs[i] = bank[0][occurrence % k]
        outcomes[i] = bank[1][occurrence % k]
    return pcs, outcomes


def _session_id(rank: int) -> str:
    return f"z{rank:07d}"


async def open_touched_sessions(service, model: LoadModel,
                                schedule: Schedule,
                                concurrency: int = 256) -> int:
    """Open every session the schedule will touch (setup phase, not
    part of the timed run).  Opens are pipelined ``concurrency`` at a
    time — with tens of thousands of touched sessions, one awaited
    round trip each would dominate the setup."""
    spec = spec_for(model.spec_kind, **dict(model.spec_params))
    ranks = np.unique(schedule.session_ranks).tolist()
    for start in range(0, len(ranks), concurrency):
        await asyncio.gather(*(
            service.open_session(_session_id(rank), spec)
            for rank in ranks[start:start + concurrency]))
    return len(ranks)


def _summarise(hist: StreamingHistogram) -> Dict[str, float]:
    if not hist.count:
        return {"count": 0}
    qs = hist.quantiles((0.50, 0.90, 0.99, 0.999))
    return {"count": hist.count, "mean": hist.mean(), "max": hist.max,
            "p50": qs[0.50], "p90": qs[0.90], "p99": qs[0.99],
            "p999": qs[0.999]}


class _Tally:
    """Shared accounting across client coroutines."""

    def __init__(self) -> None:
        self.submitted = 0
        self.ok = 0
        self.rejected = 0
        self.errors = 0
        self.latency_us = StreamingHistogram("latency_us")

    def settle(self, response, sched_t: float, t0: float) -> None:
        if response.ok:
            self.ok += 1
            self.latency_us.record(
                (time.perf_counter() - (t0 + sched_t)) * 1e6)
        elif response.error == ERR_RETRY:
            self.rejected += 1
        else:
            self.errors += 1


async def run_open_loop(service, model: LoadModel,
                        schedule: Optional[Schedule] = None,
                        open_sessions: bool = True,
                        settle_timeout_s: float = 60.0
                        ) -> Dict[str, object]:
    """Offer the schedule at its scheduled times, come what may.

    Returns a report dict (see module docstring for the measurement
    discipline).  ``service`` is anything with the PredictionService
    duck type; pass ``open_sessions=False`` when the touched sessions
    are already open.  ``lost`` in the report counts accepted requests
    whose future never resolved within ``settle_timeout_s`` of the last
    arrival — the zero-lost invariant the chaos scenarios assert.
    """
    if schedule is None:
        schedule = build_schedule(model)
    touched = schedule.touched_sessions
    if open_sessions:
        await open_touched_sessions(service, model, schedule)
    times = schedule.times_s
    tally = _Tally()
    n = len(schedule)

    async def client(which: int) -> None:
        # Client `which` owns every (i % clients == which) arrival, so
        # the interleaved schedule is split without reordering.
        loop_t0 = t0
        for i in range(which, n, model.clients):
            sched_t = float(times[i])
            ahead = (loop_t0 + sched_t) - time.perf_counter()
            if ahead > 0.0005:
                await asyncio.sleep(ahead)
            request = schedule.request_for(i, seq=i)
            tally.submitted += 1
            future = service.submit(request)
            future.add_done_callback(
                lambda f, s=sched_t: tally.settle(f.result(), s, loop_t0))
            # Open loop: do NOT await the future; yield so the service
            # and the response path get the loop between submits.
            if i % 64 == which % 64:
                await asyncio.sleep(0)

    t0 = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(model.clients)))
    # Arrivals are all offered; wait for in-flight answers (bounded —
    # a lost future must surface as `lost`, not a hang).
    settle_deadline = time.perf_counter() + settle_timeout_s
    while (tally.ok + tally.rejected + tally.errors < tally.submitted
           and time.perf_counter() < settle_deadline):
        await asyncio.sleep(0.002)
    duration = time.perf_counter() - t0
    return {
        "loop": "open",
        "model": asdict(model),
        "arrivals": n,
        "sessions_touched": touched,
        "submitted": tally.submitted,
        "ok": tally.ok,
        "rejected": tally.rejected,
        "errors": tally.errors,
        "lost": tally.submitted - (tally.ok + tally.rejected
                                   + tally.errors),
        "duration_s": duration,
        "offered_rps": n / model.seconds,
        "achieved_rps": tally.ok / duration if duration > 0 else 0.0,
        "chunk_steps": model.chunk_steps,
        "achieved_steps_rps": (tally.ok * model.chunk_steps / duration
                               if duration > 0 else 0.0),
        "latency_us": _summarise(tally.latency_us),
    }


async def run_closed_loop(service, model: LoadModel, window: int = 32,
                          open_sessions: bool = True) -> Dict[str, object]:
    """Windowed capacity probe: each client keeps ``window`` requests
    pipelined for ``model.seconds`` (rate_rps is ignored; the point is
    to find the ceiling)."""
    schedule = build_schedule(model)
    if open_sessions:
        await open_touched_sessions(service, model, schedule)
    n = max(1, len(schedule))
    tally = _Tally()
    deadline = time.perf_counter() + model.seconds
    seq_base = [0]

    async def client(which: int) -> None:
        cursor = which
        while time.perf_counter() < deadline:
            futures = []
            start = time.perf_counter()
            for _ in range(window):
                i = cursor % n
                cursor += model.clients
                seq = seq_base[0]
                seq_base[0] += 1
                request = schedule.request_for(i, seq=seq)
                tally.submitted += 1
                futures.append(service.submit(request))
            for future in futures:
                response = await future
                if response.ok:
                    tally.ok += 1
                    tally.latency_us.record(
                        (time.perf_counter() - start) * 1e6)
                elif response.error == ERR_RETRY:
                    tally.rejected += 1
                    await asyncio.sleep(
                        (response.retry_after_us or 1000) / 1e6)
                else:
                    tally.errors += 1

    t0 = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(model.clients)))
    duration = time.perf_counter() - t0
    return {
        "loop": "closed",
        "model": asdict(model),
        "window": window,
        "sessions_touched": schedule.touched_sessions,
        "submitted": tally.submitted,
        "ok": tally.ok,
        "rejected": tally.rejected,
        "errors": tally.errors,
        "duration_s": duration,
        "achieved_rps": tally.ok / duration if duration > 0 else 0.0,
        "chunk_steps": model.chunk_steps,
        "achieved_steps_rps": (tally.ok * model.chunk_steps / duration
                               if duration > 0 else 0.0),
        "latency_us": _summarise(tally.latency_us),
    }
