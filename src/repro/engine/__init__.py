"""Trace-driven out-of-order core model (section 3 machine).

The engine reproduces the simulation methodology of section 3.1: a
6-wide fetch/rename front end, a 128-entry register pool (bounding the
in-flight instruction window), a scheduling window of reservation
stations (32 entries baseline, swept 8-128), per-class execution units
(2 INT / 2 MEM / 1 FP / 2 COMPLEX baseline), in-order retirement, a
two-level memory hierarchy, and the paper's penalty model: "whenever a
load uop is wrongly scheduled with respect to a STA or STD uop, a
collision penalty is added to delay the data retrieved by this load"
(8 cycles).

Six memory ordering schemes (section 3.1 I-VI) plug into the scheduler
through :class:`OrderingScheme`; hit-miss predictors plug in through the
``hmp`` machine parameter and change when load-dependent uops wake up.
"""

from repro.engine.inflight import InflightUop, LoadInfo
from repro.engine.mob import MemoryOrderBuffer, StoreRecord
from repro.engine.ordering import (
    OrderingScheme,
    TraditionalOrdering,
    OpportunisticOrdering,
    PostponingOrdering,
    InclusiveOrdering,
    ExclusiveOrdering,
    PerfectOrdering,
    make_scheme,
    SCHEME_NAMES,
    ALTERNATIVE_SCHEMES,
)
from repro.engine.alternatives import StoreSetOrdering, StoreBarrierOrdering
from repro.engine.machine import Machine
from repro.engine.pipeview import UopTimeline, render_timeline, summarize_timeline
from repro.engine.results import SimResult

__all__ = [
    "InflightUop",
    "LoadInfo",
    "MemoryOrderBuffer",
    "StoreRecord",
    "OrderingScheme",
    "TraditionalOrdering",
    "OpportunisticOrdering",
    "PostponingOrdering",
    "InclusiveOrdering",
    "ExclusiveOrdering",
    "PerfectOrdering",
    "make_scheme",
    "SCHEME_NAMES",
    "ALTERNATIVE_SCHEMES",
    "StoreSetOrdering",
    "StoreBarrierOrdering",
    "Machine",
    "SimResult",
    "UopTimeline",
    "render_timeline",
    "summarize_timeline",
]
