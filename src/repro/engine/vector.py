"""Event-driven array kernel for :class:`repro.engine.Machine`.

The scalar reference machine (:mod:`repro.engine.machine`) re-scans the
whole scheduling window every cycle and walks Python object graphs for
every source/MOB query.  This kernel replays the *same* machine over the
struct-of-arrays uop model of :mod:`repro.fastpath.uoparrays`: all
per-uop state lives in flat integer lanes, the scheduler is driven by
bucketed wake hints instead of a per-cycle window scan, squash and
replay are flag flips plus a re-hint, and idle stretches (mispredict
stalls, memory waits) are skipped in one jump instead of being ticked
through cycle by cycle.

Bit-identity with the reference backend is the contract (docs/engine.md
derives why the event order reproduces the scalar scan order exactly);
``tests/engine/test_vector.py`` pins it over the scheme × profile
matrix and :func:`checked_vectorized_run` enforces it at runtime under
``REPRO_CHECK_INVARIANTS=1``.

The kernel deliberately supports exactly the surface the figure
harnesses and the serve tier exercise — the six section-3.1 ordering
schemes, any hit/miss predictor, any branch predictor, forwarding, and
``max_cycles`` truncation.  Everything else (event-bus instrumentation,
bank policies, prefetchers, saboteur MOBs/machines, the alternative
prior-art schemes) reports an :func:`unsupported_reason` and the caller
falls back to the scalar path.

Scheduling structures (why no global event heap): future wake hints
live in ``buckets`` (cycle → list of uop indices) with a small heap of
bucket cycles, so the common hint is a list append instead of a tuple
heap operation; the current cycle's candidates are a heap of bare
indices, popped smallest-first — index order is seq order, exactly the
reference window scan order.  A load refused by the ordering scheme is
re-hinted at the *exact* cycle its predicate flips
(:meth:`ArrayMOB.unblock_at`) when every store timing it depends on is
already known (store completion times are write-once, so the hint can
never be invalidated); otherwise it parks in ``blocked`` and every
STA/STD execution re-hints the set.
"""

from __future__ import annotations

import copy
import os
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.engine.inflight import UNKNOWN, classify_collision
from repro.engine.mob import MemoryOrderBuffer
from repro.engine.ordering import VECTOR_SCHEME_TYPES
from repro.engine.results import SimResult
from repro.fastpath import HAS_NUMPY
from repro.trace.trace import Trace

_INF = float("inf")

#: UopClass values (kept as plain ints for the hot loop).
_LOAD, _STA, _STD, _BRANCH = 3, 4, 5, 6


class VectorUnsupported(RuntimeError):
    """The vectorized kernel cannot express this run; callers fall back
    to the scalar reference path."""


class BackendMismatch(AssertionError):
    """The vectorized and reference backends disagreed on a result —
    raised only by :func:`checked_vectorized_run` (the
    ``REPRO_CHECK_INVARIANTS=1`` shadow compare).  Always a bug."""


class ArrayMOB:
    """The Memory Order Buffer over index lanes.

    Mirrors :class:`repro.engine.mob.MemoryOrderBuffer` exactly, but a
    "store record" is just the STA's index into the shared lanes (with
    an optional attached STD index); address/size/timing are read from
    the lanes, so queries are integer compares with no object traffic.

    ``seq``/``addr``/``size`` are the immutable trace lanes; ``dr`` is
    the kernel's live data-ready lane (``UNKNOWN`` until a uop
    executes), aliased so MOB queries always see current timing.
    """

    __slots__ = ("seq", "addr", "size", "dr", "stores", "std_of",
                 "_min_std_seq")

    def __init__(self, seq: List[int], addr: List[int], size: List[int],
                 dr: List[int]) -> None:
        self.seq = seq
        self.addr = addr
        self.size = size
        self.dr = dr
        #: STA indices, ascending (stores are inserted in rename order).
        self.stores: List[int] = []
        #: STA index -> attached STD index.
        self.std_of: Dict[int, int] = {}
        #: Smallest attached-STD seq (the only thing the prune keep-rule
        #: compares against), so :meth:`remove_retired` is O(1) until a
        #: store actually becomes prunable.
        self._min_std_seq: Optional[int] = None

    # -- lifecycle ------------------------------------------------------

    def insert_sta(self, sta: int) -> None:
        self.stores.append(sta)

    def attach_std(self, std: int, target_seq: int) -> None:
        for s in reversed(self.stores):
            if self.seq[s] == target_seq:
                self.std_of[s] = std
                t = self.seq[std]
                if self._min_std_seq is None or t < self._min_std_seq:
                    self._min_std_seq = t
                return
        raise KeyError(f"no STA with seq {target_seq} in the MOB")

    def remove_retired(self, seq_floor: int) -> None:
        """Drop stores whose STD retired before the oldest in-flight
        uop (identical keep-rule to the reference MOB)."""
        ms = self._min_std_seq
        if ms is None or ms >= seq_floor:
            return  # nothing prunable — the overwhelmingly common case
        std_of = self.std_of
        seq = self.seq
        keep = [s for s in self.stores
                if s not in std_of or seq[std_of[s]] >= seq_floor]
        for s in set(self.stores).difference(keep):
            std_of.pop(s, None)
        self.stores = keep
        self._min_std_seq = (min(seq[std] for std in std_of.values())
                             if std_of else None)

    def __len__(self) -> int:
        return len(self.stores)

    # -- timing predicates ---------------------------------------------

    def _address_known(self, s: int, now: int) -> bool:
        t = self.dr[s]
        return t != UNKNOWN and t <= now

    def _data_done(self, s: int, now: int) -> bool:
        std = self.std_of.get(s)
        if std is None:
            return False
        t = self.dr[std]
        return t != UNKNOWN and t <= now

    def _complete(self, s: int, now: int) -> bool:
        return self._address_known(s, now) and self._data_done(s, now)

    # -- scheme queries -------------------------------------------------

    def has_unknown_sta(self, load: int, now: int) -> bool:
        load_seq = self.seq[load]
        seq, dr = self.seq, self.dr
        for s in self.stores:
            if seq[s] >= load_seq:
                break
            t = dr[s]
            if t == UNKNOWN or t > now:
                return True
        return False

    def all_older_complete(self, load: int, now: int) -> bool:
        load_seq = self.seq[load]
        for s in self.stores:
            if self.seq[s] >= load_seq:
                break
            if not self._complete(s, now):
                return False
        return True

    def all_older_stds_done(self, load: int, now: int) -> bool:
        load_seq = self.seq[load]
        for s in self.stores:
            if self.seq[s] >= load_seq:
                break
            if not self._data_done(s, now):
                return False
        return True

    def complete_beyond_distance(self, load: int, now: int,
                                 distance: int) -> bool:
        load_seq = self.seq[load]
        d = 0
        for s in reversed(self.stores):
            if self.seq[s] >= load_seq:
                continue
            d += 1
            if d >= distance and not self._complete(s, now):
                return False
        return True

    def colliding_store(self, load: int,
                        now: int) -> Tuple[int, Optional[int]]:
        """Nearest older overlapping not-complete store.

        Returns ``(sta_index, distance)`` or ``(-1, None)`` — the index
        form of the reference MOB's oracle query.
        """
        seq, addr, size = self.seq, self.addr, self.size
        load_seq = seq[load]
        la, lsz = addr[load], size[load]
        d = 0
        for s in reversed(self.stores):
            if seq[s] >= load_seq:
                continue
            d += 1
            if (addr[s] < la + lsz and la < addr[s] + size[s]
                    and not self._complete(s, now)):
                return s, d
        return -1, None

    def forwarding_store(self, load: int, now: int) -> int:
        """Nearest older overlapping *completed* store, or ``-1``."""
        seq, addr, size = self.seq, self.addr, self.size
        load_seq = seq[load]
        la, lsz = addr[load], size[load]
        for s in reversed(self.stores):
            if seq[s] >= load_seq:
                continue
            if (addr[s] < la + lsz and la < addr[s] + size[s]
                    and self._complete(s, now)):
                return s
        return -1

    # -- event support --------------------------------------------------

    def unblock_at(self, load: int, now: int, kind: int,
                   predicted_colliding: bool,
                   predicted_distance: Optional[int]) -> Optional[int]:
        """The exact future cycle scheme ``kind``'s predicate flips
        true for a blocked load — or ``None`` when it depends on a
        store event that has not executed yet (every STA/STD execution
        re-hints such loads).

        Each predicate is a conjunction of "store timing ≤ now"
        conditions over a fixed set of older stores, so it flips
        exactly at the *max* of the required completion times.  Store
        completion times are write-once (stores never replay), and
        pruning only ever removes fully-complete stores, so a hint
        computed from all-known timings can never be invalidated.
        """
        seq = self.seq
        dr = self.dr
        std_of = self.std_of
        load_seq = seq[load]
        best = now
        if kind == 0 or kind == 2:
            # All older STA addresses known ...
            for s in self.stores:
                if seq[s] >= load_seq:
                    break
                t = dr[s]
                if t == UNKNOWN:
                    return None
                if t > best:
                    best = t
            # ... and, for a predicted-colliding postponing load, all
            # older STDs delivered.
            if kind == 2 and predicted_colliding:
                for s in self.stores:
                    if seq[s] >= load_seq:
                        break
                    std = std_of.get(s)
                    if std is None:
                        return None
                    t = dr[std]
                    if t == UNKNOWN:
                        return None
                    if t > best:
                        best = t
        elif kind == 3 or kind == 4:
            if kind == 4 and predicted_distance is not None:
                # Exclusive with a learned distance: only stores at
                # distance >= d (nearest-first) must be complete.
                d = 0
                for s in reversed(self.stores):
                    if seq[s] >= load_seq:
                        continue
                    d += 1
                    if d < predicted_distance:
                        continue
                    t = dr[s]
                    if t == UNKNOWN:
                        return None
                    if t > best:
                        best = t
                    std = std_of.get(s)
                    if std is None:
                        return None
                    t = dr[std]
                    if t == UNKNOWN:
                        return None
                    if t > best:
                        best = t
            else:
                # Inclusive (or distance-less exclusive): every older
                # store fully complete.
                for s in self.stores:
                    if seq[s] >= load_seq:
                        break
                    t = dr[s]
                    if t == UNKNOWN:
                        return None
                    if t > best:
                        best = t
                    std = std_of.get(s)
                    if std is None:
                        return None
                    t = dr[std]
                    if t == UNKNOWN:
                        return None
                    if t > best:
                        best = t
        else:
            # Perfect: every *overlapping* older store complete.
            addr, size = self.addr, self.size
            la, lsz = addr[load], size[load]
            for s in self.stores:
                if seq[s] >= load_seq:
                    break
                if not (addr[s] < la + lsz and la < addr[s] + size[s]):
                    continue
                t = dr[s]
                if t == UNKNOWN:
                    return None
                if t > best:
                    best = t
                std = std_of.get(s)
                if std is None:
                    return None
                t = dr[std]
                if t == UNKNOWN:
                    return None
                if t > best:
                    best = t
        return best if best > now else now + 1

    def tracked(self) -> List[Tuple[int, Optional[int]]]:
        """``[(sta_seq, std_seq|None), ...]`` oldest-first — the
        balance view the property tests compare against the reference
        MOB's :meth:`~repro.engine.mob.MemoryOrderBuffer.tracked`."""
        seq = self.seq
        return [(seq[s],
                 seq[self.std_of[s]] if s in self.std_of else None)
                for s in self.stores]


def unsupported_reason(machine) -> Optional[str]:
    """Why this machine cannot use the vectorized kernel (or ``None``).

    The gates are deliberately exact-type checks: fault-injection
    subclasses (saboteur machines, sabotaged MOBs, lying schemes) must
    keep their scalar behaviour so the invariant oracle can catch them.
    """
    from repro.engine.machine import Machine

    if not HAS_NUMPY:
        return "numpy unavailable"
    if type(machine) is not Machine:
        return f"machine subclass {type(machine).__name__}"
    if machine.obs is not None:
        return "event bus attached"
    if machine.collect_occupancy:
        return "occupancy collection enabled"
    if machine.collect_stall_breakdown:
        return "stall-breakdown collection enabled"
    if machine.record_timeline:
        return "timeline recording enabled"
    if machine.bank_policy is not None:
        return f"bank policy {machine.bank_policy!r}"
    if machine.prefetcher is not None:
        return "prefetcher attached"
    if machine.mob_factory is not MemoryOrderBuffer:
        return f"custom MOB {machine.mob_factory!r}"
    if type(machine.scheme) not in VECTOR_SCHEME_TYPES:
        return f"unsupported scheme {type(machine.scheme).__name__}"
    return None


def run_vectorized(machine, trace: Trace,
                   max_cycles: Optional[int] = None) -> SimResult:
    """Replay ``trace`` on ``machine`` through the array kernel.

    Produces a :class:`SimResult` bit-identical to
    ``machine.run(..., backend="reference")`` — including truncation
    behaviour: the same ``RuntimeError`` (message and all) is raised
    when the simulation exceeds ``max_cycles``, and an empty trace
    finishes at cycle 0 without raising even for negative ceilings.

    Raises :class:`VectorUnsupported` (before touching any machine
    state) when the trace cannot be expressed in the array model.
    """
    from repro.fastpath.uoparrays import UnsupportedTrace, trace_arrays

    try:
        arrays = trace_arrays(trace)
    except UnsupportedTrace as exc:
        raise VectorUnsupported(str(exc)) from exc

    cfg = machine.config
    lat = cfg.latency
    scheme = machine.scheme
    kind = VECTOR_SCHEME_TYPES.index(type(scheme))
    cht = scheme.cht if kind in (2, 3, 4) else None
    hmp = machine.hmp
    hierarchy = machine.hierarchy
    bp = machine.branch_predictor
    result = SimResult(trace_name=trace.name, scheme=scheme.name)

    n = arrays.n
    if n == 0:
        # Identical to the reference loop never being entered.
        result.cycles = 0
        result.l1_miss_rate = hierarchy.l1_miss_rate
        return result

    ceiling = (max_cycles if max_cycles is not None
               else 60 * len(trace) + 100_000)
    if ceiling < 0:
        # The reference loop raises at its very first top-of-cycle
        # check, before any uop is renamed.
        raise RuntimeError(
            f"simulation exceeded {ceiling} cycles on "
            f"{trace.name!r} (0 uops stuck in flight)")

    # -- immutable lanes (plain Python ints for the hot loop) ----------
    seq = arrays.seq_l
    pc = arrays.pc_l
    uclass = arrays.uclass_l
    addr = arrays.addr_l
    sta_seq = arrays.sta_seq_l
    taken = arrays.taken_l
    misp_lane = arrays.mispredicted_l
    pool = arrays.pool_l
    prods = arrays.prods
    consumers = arrays.consumers
    line_of = (arrays.addr // cfg.memory.l1d.line_bytes).tolist()
    lat_table = (lat.int_latency, lat.fp_latency, lat.complex_latency,
                 -1, lat.agu_latency, lat.agu_latency,
                 lat.branch_latency, 0)
    fixed = [lat_table[u] for u in uclass]

    # -- latencies / widths --------------------------------------------
    agu = lat.agu_latency
    resched = lat.reschedule_delay
    bmp = lat.branch_mispredict_penalty
    coll_pen = lat.collision_penalty
    hid = lat.hit_indication_delay
    fwd_lat = lat.forward_latency
    l1_lat = cfg.memory.l1_latency
    fetch_w = cfg.fetch_width
    retire_w = cfg.retire_width
    rpool = cfg.register_pool
    wsize = cfg.window_size
    units = cfg.units
    caps_template = (units.n_int, units.n_mem, units.n_fp,
                     units.n_complex)

    # -- mutable per-uop state lanes -----------------------------------
    U = UNKNOWN
    dr = [U] * n           # cycle the value actually exists
    ann = [U] * n          # cycle dependents are told to wake
    floor_ = [0] * n       # earliest re-issue after a squash
    issued = bytearray(n)
    in_window = bytearray(n)
    pending = bytearray(n)    # load waiting on a hidden violation
    collided = bytearray(n)
    conflicting = [-1] * n    # -1 unset / 0 / 1 (Figure 1 ground truth)
    would_collide = [-1] * n
    coll_dist: List[Optional[int]] = [None] * n
    pred_coll = bytearray(n)  # CHT lookup at rename
    pred_dist: List[Optional[int]] = [None] * n
    predicted_hit = [-1] * n  # -1 unset / 0 / 1 (HMP at first access)

    rob = deque()
    window_count = 0
    violations: List[Tuple[int, int]] = []  # (load idx, colliding STA idx)
    blocked = set()  # scheme-refused loads awaiting a store *execution*
    buckets: Dict[int, List[int]] = {}  # future cycle -> woken indices
    btimes: List[int] = []   # heap of bucket cycles (pushed once each)
    cyc: List[int] = []      # this cycle's candidates (a heap of indices)
    amob = ArrayMOB(seq, addr, arrays.size_l, dr)
    unblock_at = amob.unblock_at
    bget = buckets.get

    fetch_pos = 0
    now = 0
    mob_floor = None
    trap_stall_until = 0
    stall_branch = -1

    hitmiss_record = result.hitmiss.record
    load_classes = result.load_classes

    while True:
        # Wake hints due this cycle become issue candidates; candidates
        # are processed smallest-index-first, which is seq order — the
        # exact order the reference scan visits the window.
        while btimes and btimes[0] <= now:
            lst = buckets.pop(heappop(btimes))
            if cyc:
                for i in lst:
                    heappush(cyc, i)
            else:
                heapify(lst)
                cyc = lst

        # -- phase 0: resolve memory-order violations ------------------
        if violations:
            still = []
            for li, si in violations:
                sc = dr[si]
                if sc == U or sc > now:
                    still.append((li, si))
                    continue
                pending[li] = 0
                issued[li] = 0
                dr[li] = U
                ann[li] = U
                fl = now + resched
                floor_[li] = fl
                in_window[li] = 1
                window_count += 1
                if fl <= now:
                    heappush(cyc, li)
                else:
                    b = bget(fl)
                    if b is None:
                        buckets[fl] = [li]
                        heappush(btimes, fl)
                    else:
                        b.append(li)
                t = now + bmp
                if t > trap_stall_until:
                    trap_stall_until = t
            violations = still

        # -- phase 1: retire -------------------------------------------
        retired = 0
        while rob and retired < retire_w:
            h = rob[0]
            t = dr[h]
            if pending[h] or t == U or t > now:
                break
            rob.popleft()
            retired += 1
            result.retired_uops += 1
            uc = uclass[h]
            if uc == _LOAD:
                result.retired_loads += 1
                ci = conflicting[h]
                if ci != -1:
                    wc = would_collide[h] == 1
                    load_classes[classify_collision(
                        ci == 1, wc, pred_coll[h] == 1)] += 1
                    if cht is not None:
                        cht.observed_train(pc[h], wc, coll_dist[h])
        if rob:
            fl_seq = seq[rob[0]]
        elif fetch_pos >= n:
            break  # everything retired and the trace is exhausted
        else:
            fl_seq = seq[fetch_pos]
        if fl_seq != mob_floor:
            # Stores only become prunable when the retirement floor
            # moves (a freshly attached STD is always younger than the
            # floor), so unchanged-floor cycles skip the MOB sweep.
            mob_floor = fl_seq
            amob.remove_retired(fl_seq)

        # -- phase 2: issue --------------------------------------------
        caps = list(caps_template)
        while cyc:
            i = heappop(cyc)
            if issued[i] or not in_window[i]:
                continue  # stale hint (already issued / not renamed)
            p = pool[i]
            if p < 0:  # NOP: complete instantly, no unit, no checks
                dr[i] = ann[i] = now
                issued[i] = 1
                in_window[i] = 0
                window_count -= 1
                for c in consumers[i]:
                    if not issued[c] and in_window[c]:
                        heappush(cyc, c)
                continue
            if caps[p] <= 0:
                t = now + 1  # pool full: retry next cycle
                b = bget(t)
                if b is None:
                    buckets[t] = [i]
                    heappush(btimes, t)
                else:
                    b.append(i)
                continue
            fl = floor_[i]
            if now < fl:
                b = bget(fl)
                if b is None:
                    buckets[fl] = [i]
                    heappush(btimes, fl)
                else:
                    b.append(i)
                continue
            wake_at = now
            park = False
            ps = prods[i]
            if ps:
                for pr in ps:
                    a = ann[pr]
                    if a == U:
                        park = True  # producer re-wakes us at execute
                        break
                    if a > wake_at:
                        wake_at = a
            if park:
                continue
            if wake_at > now:
                b = bget(wake_at)
                if b is None:
                    buckets[wake_at] = [i]
                    heappush(btimes, wake_at)
                else:
                    b.append(i)
                continue

            uc = uclass[i]
            if uc == _LOAD:
                if conflicting[i] == -1:
                    # First dispatch opportunity: record the Figure 1
                    # ground truth (identical timing to the scalar
                    # _classify_load call site).
                    conflicting[i] = 1 if amob.has_unknown_sta(i, now) else 0
                    s, d = amob.colliding_store(i, now)
                    would_collide[i] = 1 if s >= 0 else 0
                    coll_dist[i] = d
                if kind == 1:          # opportunistic
                    ok = True
                elif kind == 0:        # traditional
                    ok = not amob.has_unknown_sta(i, now)
                elif kind == 2:        # postponing
                    if amob.has_unknown_sta(i, now):
                        ok = False
                    elif pred_coll[i]:
                        ok = amob.all_older_stds_done(i, now)
                    else:
                        ok = True
                elif kind == 3:        # inclusive
                    ok = (not pred_coll[i]
                          or amob.all_older_complete(i, now))
                elif kind == 4:        # exclusive
                    if not pred_coll[i]:
                        ok = True
                    elif pred_dist[i] is None:
                        ok = amob.all_older_complete(i, now)
                    else:
                        ok = amob.complete_beyond_distance(
                            i, now, pred_dist[i])
                else:                  # perfect (oracle)
                    s, _ = amob.colliding_store(i, now)
                    ok = s < 0
                if not ok:
                    w = unblock_at(i, now, kind, pred_coll[i] == 1,
                                   pred_dist[i])
                    if w is None:
                        # Depends on a store that has not executed:
                        # park; every STA/STD execution re-hints us.
                        blocked.add(i)
                    else:
                        # All required store timings are known, so the
                        # predicate flips exactly at w — one final hint.
                        blocked.discard(i)
                        b = bget(w)
                        if b is None:
                            buckets[w] = [i]
                            heappush(btimes, w)
                        else:
                            b.append(i)
                    continue
                blocked.discard(i)

            # Verify the producers' data actually exists (speculative
            # wakeup may have been optimistic).
            actual = 0
            if ps:
                for pr in ps:
                    t = dr[pr]
                    if t == U:
                        actual = U
                        break
                    if t > actual:
                        actual = t
            caps[p] -= 1
            if actual == U or actual > now:
                result.squashed_issues += 1
                fl = (actual if actual != U else now + 1) + resched
                floor_[i] = fl
                b = bget(fl)
                if b is None:
                    buckets[fl] = [i]
                    heappush(btimes, fl)
                else:
                    b.append(i)
                continue

            # -- execute ------------------------------------------------
            issued[i] = 1
            in_window[i] = 0
            window_count -= 1

            if uc == _LOAD:
                t_addr = now + agu
                s, _ = amob.colliding_store(i, now)
                if s >= 0:
                    t = dr[s]
                    if t != U and t <= now:
                        # Visible conflict: stay in the window and
                        # re-dispatch until the store's data exists.
                        if not collided[i]:
                            collided[i] = 1
                            result.collision_penalties += 1
                            v = t_addr + l1_lat
                            ann[i] = v
                            for c in consumers[i]:
                                if not issued[c] and in_window[c]:
                                    if v <= now:
                                        heappush(cyc, c)
                                    else:
                                        b = bget(v)
                                        if b is None:
                                            buckets[v] = [c]
                                            heappush(btimes, v)
                                        else:
                                            b.append(c)
                        issued[i] = 0
                        in_window[i] = 1
                        window_count += 1
                        result.squashed_issues += 1
                        fl = now + agu + resched
                        floor_[i] = fl
                        if fl <= now:
                            fl = now + 1  # zero AGU+resched: next cycle
                        b = bget(fl)
                        if b is None:
                            buckets[fl] = [i]
                            heappush(btimes, fl)
                        else:
                            b.append(i)
                        continue
                    # Hidden violation: the match is invisible (the
                    # STA's address is unknown); execute with stale
                    # data and replay when the STA resolves.
                    if not collided[i]:
                        collided[i] = 1
                        result.collision_penalties += 1
                    outcome = hierarchy.load(addr[i], t_addr)
                    base = t_addr + outcome.latency
                    if predicted_hit[i] == -1:
                        ph = hmp.predict_hit(pc[i], line_of[i], now)
                        predicted_hit[i] = 1 if ph else 0
                        hitmiss_record(outcome.l1_hit, ph)
                        hmp.observed_update(pc[i], outcome.l1_hit,
                                            line_of[i], now)
                    pending[i] = 1
                    dr[i] = U
                    ann[i] = base  # dependents wake, then squash
                    violations.append((i, s))
                    for c in consumers[i]:
                        if not issued[c] and in_window[c]:
                            if base <= now:
                                heappush(cyc, c)
                            else:
                                b = bget(base)
                                if b is None:
                                    buckets[base] = [c]
                                    heappush(btimes, base)
                                else:
                                    b.append(c)
                    continue

                fwd = (amob.forwarding_store(i, now)
                       if fwd_lat is not None else -1)
                if fwd >= 0:
                    result.forwarded_loads += 1
                    done = now + fwd_lat
                    if collided[i]:
                        done += coll_pen
                    if predicted_hit[i] == -1:
                        ph = hmp.predict_hit(pc[i], line_of[i], now)
                        predicted_hit[i] = 1 if ph else 0
                        hitmiss_record(True, ph)
                        hmp.observed_update(pc[i], True, line_of[i], now)
                    dr[i] = ann[i] = done
                    for c in consumers[i]:
                        if not issued[c] and in_window[c]:
                            if done <= now:
                                heappush(cyc, c)
                            else:
                                b = bget(done)
                                if b is None:
                                    buckets[done] = [c]
                                    heappush(btimes, done)
                                else:
                                    b.append(c)
                    continue

                outcome = hierarchy.load(addr[i], t_addr)
                base = t_addr + outcome.latency
                if collided[i]:
                    base += coll_pen
                if predicted_hit[i] == -1:
                    ph = hmp.predict_hit(pc[i], line_of[i], now)
                    predicted_hit[i] = 1 if ph else 0
                    hitmiss_record(outcome.l1_hit, ph)
                    hmp.observed_update(pc[i], outcome.l1_hit,
                                        line_of[i], now)
                dr[i] = base
                if predicted_hit[i] == 1 and not outcome.l1_hit:
                    v = t_addr + l1_lat      # AM-PH: optimistic wakeup
                elif predicted_hit[i] == 0 and outcome.l1_hit:
                    v = base + hid           # AH-PM: wait for indication
                else:
                    v = base
                ann[i] = v
                for c in consumers[i]:
                    if not issued[c] and in_window[c]:
                        if v <= now:
                            heappush(cyc, c)
                        else:
                            b = bget(v)
                            if b is None:
                                buckets[v] = [c]
                                heappush(btimes, v)
                            else:
                                b.append(c)
                continue

            if uc == _STA:
                done = now + agu
                dr[i] = ann[i] = done
                hierarchy.store(addr[i], done)
            else:
                done = now + fixed[i]
                dr[i] = ann[i] = done
            if (uc == _STA or uc == _STD) and blocked:
                # A store timing threshold will be crossed at `done`:
                # every parked scheme-blocked load re-checks then.
                # (For a zero-latency store, only loads *younger in
                # the scan than this store* may dispatch this cycle.)
                if done > now:
                    b = bget(done)
                    if b is None:
                        buckets[done] = list(blocked)
                        heappush(btimes, done)
                    else:
                        b.extend(blocked)
                else:
                    t = now + 1
                    for bl in blocked:
                        if bl > i:
                            heappush(cyc, bl)
                        else:
                            b = bget(t)
                            if b is None:
                                buckets[t] = [bl]
                                heappush(btimes, t)
                            else:
                                b.append(bl)
            for c in consumers[i]:
                if not issued[c] and in_window[c]:
                    if done <= now:
                        heappush(cyc, c)
                    else:
                        b = bget(done)
                        if b is None:
                            buckets[done] = [c]
                            heappush(btimes, done)
                        else:
                            b.append(c)

        # -- phase 3: rename -------------------------------------------
        if stall_branch >= 0:
            t = dr[stall_branch]
            if (t != U and not pending[stall_branch]
                    and now >= t + bmp):
                stall_branch = -1
        if stall_branch < 0 and now >= trap_stall_until:
            renamed = 0
            while (renamed < fetch_w and fetch_pos < n
                   and len(rob) < rpool and window_count < wsize):
                i = fetch_pos
                fetch_pos += 1
                renamed += 1
                rob.append(i)
                in_window[i] = 1
                window_count += 1
                uc = uclass[i]
                mispredicted = False
                if uc == _STA:
                    amob.insert_sta(i)
                elif uc == _STD:
                    amob.attach_std(i, sta_seq[i])
                elif uc == _LOAD:
                    if cht is not None:
                        prediction = cht.lookup(pc[i])
                        pred_coll[i] = 1 if prediction.colliding else 0
                        pred_dist[i] = prediction.distance
                elif uc == _BRANCH:
                    result.branches += 1
                    mispredicted = bool(misp_lane[i])
                    if bp is not None:
                        prediction = bp.predict(pc[i])
                        tk = bool(taken[i])
                        bp.observed_update(pc[i], tk, now=now)
                        mispredicted = bool(prediction.outcome) != tk
                # Issue hint: the uop is first visible to the issue
                # scan next cycle; NOPs need no operands, everything
                # else waits for its producers' announcements (parked
                # uops are re-woken when the producer executes).
                wake_at = now + 1
                park = False
                ps = prods[i]
                if ps and pool[i] >= 0:
                    for pr in ps:
                        a = ann[pr]
                        if a == U:
                            park = True
                            break
                        if a > wake_at:
                            wake_at = a
                if not park:
                    b = bget(wake_at)
                    if b is None:
                        buckets[wake_at] = [i]
                        heappush(btimes, wake_at)
                    else:
                        b.append(i)
                if mispredicted:
                    result.branch_mispredicts += 1
                    stall_branch = i
                    break

        # -- advance: jump to the next cycle anything can happen -------
        # Every state change is driven by one of: the ROB head becoming
        # retirable, a wake hint, a violation resolving, a mispredicted
        # branch releasing the front end, or rename being possible.  No
        # candidate below `ceiling` reproduces the reference machine's
        # idle spin into its top-of-loop RuntimeError.
        nxt = _INF
        if rob:
            h = rob[0]
            if not pending[h] and dr[h] != U:
                t = dr[h]
                nxt = t if t > now else now + 1
        if btimes:
            t = btimes[0]
            if t <= now:
                t = now + 1
            if t < nxt:
                nxt = t
        if violations:
            for li, si in violations:
                t = dr[si]
                if t != U:
                    if t <= now:
                        t = now + 1
                    if t < nxt:
                        nxt = t
        if stall_branch >= 0:
            t = dr[stall_branch]
            if t != U and not pending[stall_branch]:
                t += bmp
                if t <= now:
                    t = now + 1
                if t < nxt:
                    nxt = t
        elif (fetch_pos < n and len(rob) < rpool
                and window_count < wsize):
            t = trap_stall_until if trap_stall_until > now else now + 1
            if t < nxt:
                nxt = t
        if nxt > ceiling:
            raise RuntimeError(
                f"simulation exceeded {ceiling} cycles on "
                f"{trace.name!r} ({len(rob)} uops stuck in flight)")
        now = nxt

    result.cycles = now
    result.l1_miss_rate = hierarchy.l1_miss_rate
    return result


def checked_vectorized_run(machine, trace: Trace,
                           max_cycles: Optional[int] = None) -> SimResult:
    """Run both backends and demand bit-identical results.

    This is the vectorized kernel's hook into the
    ``REPRO_CHECK_INVARIANTS=1`` contract: the kernel emits no events,
    so instead of feeding the 13-invariant oracle directly, a deep copy
    of the machine replays the trace through the *scalar* path under
    the full oracle, and the kernel's result must equal it field for
    field.  Any divergence raises :class:`BackendMismatch`.
    """
    from repro.fastpath.uoparrays import UnsupportedTrace, trace_arrays

    try:
        trace_arrays(trace)  # gate before any state is mutated
    except UnsupportedTrace as exc:
        raise VectorUnsupported(str(exc)) from exc

    shadow = copy.deepcopy(machine)
    from repro.robust.invariants import checked_run
    expected, _ = checked_run(shadow, trace, max_cycles=max_cycles)
    actual = run_vectorized(machine, trace, max_cycles=max_cycles)
    exp_d, act_d = expected.to_dict(), actual.to_dict()
    if exp_d != act_d:
        keys = sorted(k for k in set(exp_d) | set(act_d)
                      if exp_d.get(k) != act_d.get(k))
        detail = ", ".join(
            f"{k}: reference={exp_d.get(k)!r} vectorized={act_d.get(k)!r}"
            for k in keys)
        raise BackendMismatch(
            f"vectorized engine diverged from reference on "
            f"{trace.name!r} ({machine.scheme.name}): {detail}")
    return actual


def maybe_checked_run(machine, trace: Trace,
                      max_cycles: Optional[int] = None) -> SimResult:
    """Dispatch helper for :meth:`Machine.run`'s vectorized branch:
    shadow-checked under ``REPRO_CHECK_INVARIANTS``, plain otherwise."""
    if os.environ.get("REPRO_CHECK_INVARIANTS"):
        return checked_vectorized_run(machine, trace, max_cycles=max_cycles)
    return run_vectorized(machine, trace, max_cycles=max_cycles)
