"""In-flight uop bookkeeping.

An :class:`InflightUop` wraps a trace uop with the dynamic state the
scheduler needs: source producers, issue/completion cycles, and — for
loads — the collision and hit-miss annotations the three prediction
techniques read and write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.common.types import LoadCollisionClass, Uop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.mob import StoreRecord

#: Sentinel cycle for "not yet known".
UNKNOWN = -1


def classify_collision(conflicting: bool, would_collide: bool,
                       predicted_colliding: bool) -> LoadCollisionClass:
    """The Figure 1 taxonomy for one classified load.

    Shared by the scalar machine's retire path and the vectorized
    kernel (:mod:`repro.engine.vector`) so the classification logic
    cannot drift between backends.
    """
    if not conflicting:
        return LoadCollisionClass.NOT_CONFLICTING
    if would_collide:
        return (LoadCollisionClass.AC_PC if predicted_colliding
                else LoadCollisionClass.AC_PNC)
    return (LoadCollisionClass.ANC_PC if predicted_colliding
            else LoadCollisionClass.ANC_PNC)


@dataclass
class LoadInfo:
    """Per-load annotations for disambiguation and hit-miss prediction."""

    predicted_colliding: bool = False
    predicted_distance: Optional[int] = None
    #: Recorded at the load's first dispatch opportunity.
    conflicting: Optional[bool] = None
    would_collide: Optional[bool] = None
    collide_distance: Optional[int] = None
    #: Identity of the store the load would collide with (for training
    #: pair-based predictors like store sets / the barrier cache).
    collide_store_pc: Optional[int] = None
    collide_store_seq: Optional[int] = None
    #: True once the load has been dispatched while an overlapping
    #: older store was incomplete (it will retry and pay the penalty).
    collided: bool = False
    classification: Optional[LoadCollisionClass] = None
    #: Hit-miss bookkeeping.
    predicted_hit: Optional[bool] = None
    actual_hit: Optional[bool] = None
    line: Optional[int] = None


class InflightUop:
    """Dynamic state of one uop between rename and retire."""

    __slots__ = ("uop", "producers", "issued", "issue_cycle", "data_ready",
                 "announce_ready", "ready_floor", "squashes", "load",
                 "pending_collision", "rename_cycle")

    def __init__(self, uop: Uop, producers: List["InflightUop"]) -> None:
        self.uop = uop
        #: Producing in-flight uops for each register source (resolved at
        #: rename; architecturally-ready sources are simply absent).
        self.producers = producers
        self.issued = False
        self.issue_cycle = UNKNOWN
        #: Cycle at which the uop's result value actually exists.
        self.data_ready = UNKNOWN
        #: Cycle dependents use for wakeup (differs from ``data_ready``
        #: under hit-miss speculation: optimistic for predicted hits,
        #: pessimistic +indication for AH-PM loads).
        self.announce_ready = UNKNOWN
        #: Earliest re-issue cycle after a squash (re-schedule delay).
        self.ready_floor = 0
        self.squashes = 0
        #: Cycle the uop was renamed (set by the machine).
        self.rename_cycle = 0
        self.load: Optional[LoadInfo] = LoadInfo() if uop.is_load else None
        #: True while the load waits for a colliding STD of unknown timing.
        self.pending_collision = False

    # -- wakeup -------------------------------------------------------------

    def sources_announced(self, now: int) -> bool:
        """Scheduler's view: all producers claim data by ``now``."""
        if now < self.ready_floor:
            return False
        for producer in self.producers:
            if producer.announce_ready == UNKNOWN \
                    or producer.announce_ready > now:
                return False
        return True

    def sources_actually_ready(self, now: int) -> int:
        """Latest actual readiness among producers; UNKNOWN if any pending.

        Returns the max ``data_ready`` over producers, or ``UNKNOWN`` if
        some producer has not resolved yet.  Used at execute to verify
        speculatively woken dependents.
        """
        latest = 0
        for producer in self.producers:
            if producer.data_ready == UNKNOWN:
                return UNKNOWN
            latest = max(latest, producer.data_ready)
        return latest

    @property
    def done(self) -> bool:
        return self.data_ready != UNKNOWN and not self.pending_collision

    def retirable(self, now: int) -> bool:
        return self.done and self.data_ready <= now

    def __repr__(self) -> str:
        return (f"InflightUop(seq={self.uop.seq}, "
                f"{self.uop.uclass.name}, issued={self.issued})")
