"""The cycle-level out-of-order machine.

Each cycle runs four phases:

1. **resolve** — finalise loads waiting on a colliding store's data;
2. **retire** — in-order, up to ``retire_width`` completed uops;
3. **issue** — scan the scheduling window oldest-first, dispatching
   source-ready uops to free units; loads pass through the ordering
   scheme, and every dispatch verifies its producers' *actual* data
   (a speculatively woken dependent whose data is absent is squashed:
   the slot is wasted and the uop re-enters the window — the
   re-schedule/re-execute cost of sections 2.1-2.2);
4. **rename** — up to ``fetch_width`` trace uops enter the ROB and the
   scheduling window, with fetch stalling on mispredicted branches.

The penalty model follows section 3.1: a load dispatched while an older
overlapping store's data is outstanding is *wrongly scheduled*; its data
is delayed until the store's STD completes, plus the collision penalty.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.config import BASELINE_MACHINE, MachineConfig
from repro.common.types import UopClass
from repro.engine.inflight import UNKNOWN, InflightUop, classify_collision
from repro.engine.mob import MemoryOrderBuffer
from repro.engine.ordering import OrderingScheme, TraditionalOrdering
from repro.engine.results import SimResult
from repro.hitmiss.base import HitMissPredictor
from repro.hitmiss.oracle import AlwaysHitHMP
from repro.memory.hierarchy import MemoryHierarchy
from repro.bank.base import BankPredictor
from repro.obs.events import EventKind
from repro.predictors.base import BinaryPredictor
from repro.trace.trace import Trace

#: Execution-unit pools: uop classes sharing issue capacity.
_UNIT_POOLS: Dict[UopClass, str] = {
    UopClass.INT: "int",
    UopClass.BRANCH: "int",
    UopClass.FP: "fp",
    UopClass.COMPLEX: "complex",
    UopClass.LOAD: "mem",
    UopClass.STA: "mem",
    UopClass.STD: "mem",
}


class Machine:
    """A configured machine ready to run traces.

    Parameters
    ----------
    config:
        Machine geometry/latencies (default: the section 3.1 baseline).
    scheme:
        Memory ordering scheme (default: Traditional, the paper's
        speedup baseline).
    hmp:
        Hit-miss predictor guiding dependent wakeup.  ``None`` means
        today's behaviour — every load is assumed to hit (an
        :class:`AlwaysHitHMP`).
    hierarchy:
        Optionally share/inject a memory hierarchy (e.g. so a
        :class:`~repro.hitmiss.timing.TimingHMP` can watch its MSHR).
    """

    def __init__(self, config: MachineConfig = BASELINE_MACHINE,
                 scheme: Optional[OrderingScheme] = None,
                 hmp: Optional[HitMissPredictor] = None,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 branch_predictor: Optional[BinaryPredictor] = None,
                 bank_policy: Optional[str] = None,
                 bank_predictor: Optional[BankPredictor] = None,
                 collect_occupancy: bool = False,
                 obs=None) -> None:
        self.config = config
        self.scheme = scheme if scheme is not None else TraditionalOrdering()
        self.hmp = hmp if hmp is not None else AlwaysHitHMP()
        self.hierarchy = (hierarchy if hierarchy is not None
                          else MemoryHierarchy(config.memory))
        #: Optional live front-end branch predictor.  When present, the
        #: taken/not-taken outcome of every branch is predicted at
        #: rename and mispredicts are *derived* (prediction != outcome)
        #: instead of taken from the trace annotations.
        self.branch_predictor = branch_predictor
        #: Multi-banked L1 issue policy (requires l1d.n_banks > 1):
        #: ``None`` ignores banking; ``"oblivious"`` issues loads blind
        #: to banks and pays conflicts with re-execution;
        #: ``"predicted"`` consults ``bank_predictor`` to avoid
        #: co-issuing same-bank loads (section 2.3's scheduling use);
        #: ``"oracle"`` steers with true banks.
        if bank_policy not in (None, "oblivious", "predicted", "oracle"):
            raise ValueError(f"unknown bank policy {bank_policy!r}")
        if bank_policy == "predicted" and bank_predictor is None:
            raise ValueError("'predicted' bank policy needs a predictor")
        self.bank_policy = bank_policy
        self.bank_predictor = bank_predictor
        #: When set, per-cycle window-occupancy and issue-width
        #: histograms are recorded into the result (small overhead).
        self.collect_occupancy = collect_occupancy
        #: When set, every cycle a waiting uop spends in the window is
        #: attributed to a cause (port / operands / ordering / bank) in
        #: ``result.stall_breakdown`` — the "why is this scheme slow"
        #: view (small overhead).
        self.collect_stall_breakdown = False
        #: When set, every retired uop's lifecycle is appended to
        #: ``result.timeline`` for pipeline-diagram rendering
        #: (:mod:`repro.engine.pipeview`).
        self.record_timeline = False
        #: Optional hardware prefetcher observing demand loads (see
        #: :class:`repro.memory.prefetch.StridePrefetcher`).  Must be
        #: constructed over this machine's ``hierarchy``.
        self.prefetcher = None
        #: Optional :class:`repro.obs.events.EventBus`.  When ``None``
        #: (the default) the engine pays one pointer test per hook
        #: point and emits nothing; wire a bus (and the hierarchy's /
        #: predictors' hooks) with :func:`repro.obs.instrument`.
        self.obs = obs
        #: Why the most recent :meth:`run` fell back from a requested
        #: vectorized backend to the scalar loop (``None`` = it did not
        #: degrade).  The obs-event counterpart is ``BACKEND_DEGRADE``.
        self.last_degrade_reason: Optional[str] = None
        #: The MOB class :meth:`run` instantiates.  Fault-injection
        #: tests substitute :class:`repro.robust.faults.SabotagedMOB`
        #: to prove the invariant oracle catches MOB defects.
        self.mob_factory = MemoryOrderBuffer

    # ------------------------------------------------------------------

    def run(self, trace: Trace, max_cycles: Optional[int] = None,
            backend: Optional[str] = None, policy=None) -> SimResult:
        """Simulate ``trace`` to completion and return the measurements.

        ``policy`` — a :class:`repro.api.ExecutionPolicy` — selects the
        engine implementation; its default (``backend="auto"``)
        resolves through the process-wide
        :mod:`repro.fastpath.backend` chain (``set_default_backend()``
        → ``REPRO_BACKEND`` → ``"reference"``): ``"reference"`` is the
        scalar cycle loop below; ``"vectorized"`` replays the same
        machine through the event-driven array kernel
        (:mod:`repro.engine.vector`) with bit-identical results,
        falling back to the reference path when numpy is absent or the
        configuration uses a feature the kernel does not support
        (instrumentation, bank policies, prefetchers, non-section-3.1
        schemes, saboteur subclasses).  The fallback is no longer
        silent: an attached obs bus receives a structured
        ``BACKEND_DEGRADE`` event naming the reason, and
        ``self.last_degrade_reason`` records it either way.

        ``backend=`` strings are the deprecated spelling of
        ``policy=ExecutionPolicy(backend=...)`` and warn
        (:mod:`repro.api.policy` shims).

        Truncation and edge semantics are identical across backends:
        an empty trace finishes at ``cycles == 0`` without touching the
        ceiling; otherwise the simulation raises ``RuntimeError`` (same
        message either way) as soon as it would pass ``max_cycles`` —
        including mid-squash-replay, where in-flight state is simply
        abandoned.

        With the invariant oracle armed (``policy.check_invariants``,
        which in ``"auto"`` mode defers to ``REPRO_CHECK_INVARIANTS``),
        every un-instrumented run is transparently wrapped in the
        :mod:`repro.robust.invariants` oracle (strict mode) — the CI
        lever for "the whole suite runs violation-free".  On the
        vectorized backend the oracle additionally shadow-replays the
        trace through the scalar path and demands result equality
        (:class:`repro.engine.vector.BackendMismatch`).
        """
        from repro.api.policy import coerce_policy
        policy = coerce_policy(policy, backend, "Machine.run")
        self.last_degrade_reason = None
        resolved = policy.resolved_backend()
        if resolved == "vectorized":
            from repro.engine import vector
            reason = vector.unsupported_reason(self)
            if reason is None:
                try:
                    return vector.maybe_checked_run(
                        self, trace, max_cycles=max_cycles)
                except vector.VectorUnsupported as exc:
                    reason = str(exc)  # trace not expressible
            self._note_backend_degrade(reason)
        elif policy.backend == "vectorized":  # pragma: no cover
            # Resolution itself degraded (numpy missing).
            self._note_backend_degrade("numpy unavailable")
        if self.obs is None and policy.invariants_active():
            # Lazy import: repro.robust imports the engine at module
            # level, so the engine must not import it back eagerly.
            from repro.robust.invariants import checked_run
            result, _ = checked_run(self, trace, max_cycles=max_cycles)
            return result
        return self._run_reference(trace, max_cycles)

    def _note_backend_degrade(self, reason: str) -> None:
        """A vectorized run request fell back to the scalar loop:
        record why, and tell the obs bus when one is attached."""
        self.last_degrade_reason = reason
        if self.obs is not None:
            self.obs.emit(EventKind.BACKEND_DEGRADE, -1, reason=reason)

    def _run_reference(self, trace: Trace,
                       max_cycles: Optional[int] = None) -> SimResult:
        """The scalar cycle-level loop — the authoritative semantics."""
        cfg = self.config
        lat = cfg.latency
        result = SimResult(trace_name=trace.name, scheme=self.scheme.name)
        ceiling = (max_cycles if max_cycles is not None
                   else 60 * len(trace) + 100_000)

        obs = self.obs
        rob: List[InflightUop] = []
        window: List[InflightUop] = []
        mob = self.mob_factory(obs=obs)
        regmap: Dict[int, InflightUop] = {}
        #: Loads that executed past an unknown matching STA, awaiting
        #: the store's resolution: (load, base_done, store record).
        violations: List[Tuple[InflightUop, int, object]] = []
        stall_branch: Optional[InflightUop] = None

        line_bytes = cfg.memory.l1d.line_bytes
        unit_caps = {
            "int": cfg.units.n_int,
            "mem": cfg.units.n_mem,
            "fp": cfg.units.n_fp,
            "complex": cfg.units.n_complex,
        }

        fetch_pos = 0
        n_uops = len(trace.uops)
        now = 0
        trap_stall_until = 0  # front-end stall after an ordering trap

        while fetch_pos < n_uops or rob:
            if now > ceiling:
                raise RuntimeError(
                    f"simulation exceeded {ceiling} cycles on "
                    f"{trace.name!r} ({len(rob)} uops stuck in flight)")

            # -- phase 0: resolve memory-order violations ------------------
            if violations:
                still = []
                for load, base_done, record in violations:
                    sta_cycle = record.sta.data_ready
                    if sta_cycle == UNKNOWN or sta_cycle > now:
                        still.append((load, base_done, record))
                        continue
                    # The violation is detected when the store's address
                    # resolves: the load is squashed and re-executes from
                    # scratch (it re-enters the scheduling window and
                    # will re-dispatch through a memory port); everything
                    # that consumed its value replays behind it.
                    load.pending_collision = False
                    load.issued = False
                    load.data_ready = UNKNOWN
                    load.announce_ready = UNKNOWN
                    load.ready_floor = now + lat.reschedule_delay
                    self._reinsert(window, load)
                    if obs is not None:
                        obs.emit(EventKind.VIOLATION, now,
                                 load.uop.seq, load.uop.pc,
                                 store_seq=record.seq,
                                 store_pc=record.sta.uop.pc)
                    # An ordering violation traps like a mispredicted
                    # branch: the machine flushes and refetches (the
                    # "large performance penalty" of section 1.1).
                    trap_stall_until = max(
                        trap_stall_until,
                        now + lat.branch_mispredict_penalty)
                violations = still

            # -- phase 1: retire ------------------------------------------
            retired = 0
            while rob and retired < cfg.retire_width \
                    and rob[0].retirable(now):
                iu = rob.pop(0)
                retired += 1
                result.retired_uops += 1
                if obs is not None:
                    obs.emit(EventKind.RETIRE, now, iu.uop.seq, iu.uop.pc,
                             uclass=iu.uop.uclass.name,
                             rename_cycle=iu.rename_cycle,
                             issue_cycle=iu.issue_cycle,
                             complete_cycle=iu.data_ready,
                             squashes=iu.squashes,
                             collided=bool(iu.load and iu.load.collided))
                if self.record_timeline:
                    from repro.engine.pipeview import UopTimeline
                    result.timeline.append(UopTimeline(
                        seq=iu.uop.seq, pc=iu.uop.pc,
                        uclass=iu.uop.uclass,
                        rename_cycle=iu.rename_cycle,
                        issue_cycle=iu.issue_cycle,
                        complete_cycle=iu.data_ready,
                        retire_cycle=now,
                        squashes=iu.squashes,
                        collided=bool(iu.load and iu.load.collided)))
                if iu.uop.is_load:
                    result.retired_loads += 1
                    self._finish_load(iu, result)
                elif iu.uop.is_std:
                    self.scheme.on_store_data_done(iu.uop.sta_seq)
            if rob:
                mob.remove_retired(rob[0].uop.seq)
            elif fetch_pos >= n_uops:
                break  # everything retired and the trace is exhausted
            else:
                mob.remove_retired(trace.uops[fetch_pos].seq)

            # -- phase 2: issue --------------------------------------------
            caps = dict(unit_caps)
            issued_any = False
            banks_claimed: Dict[int, int] = {}  # bank -> claiming seq
            true_banks_used: Dict[int, int] = {}  # bank -> executing seq
            stalls = result.stall_breakdown if \
                self.collect_stall_breakdown else None
            for iu in window:
                pool = _UNIT_POOLS.get(iu.uop.uclass)
                if pool is None:  # NOP: complete instantly, no unit
                    iu.data_ready = iu.announce_ready = now
                    iu.issued = True
                    issued_any = True
                    continue
                if caps[pool] <= 0:
                    if stalls is not None:
                        stalls["port"] = stalls.get("port", 0) + 1
                    continue
                if not iu.sources_announced(now):
                    if stalls is not None:
                        stalls["operands"] = stalls.get("operands", 0) + 1
                    continue

                if iu.uop.is_load:
                    self._classify_load(iu, mob, now)
                    if not self.scheme.may_dispatch(iu, mob, now):
                        if stalls is not None:
                            stalls["ordering"] = \
                                stalls.get("ordering", 0) + 1
                        continue
                    if self.bank_policy in ("predicted", "oracle"):
                        # Bank-aware scheduling: refuse to co-issue two
                        # loads believed to hit the same bank.
                        assert iu.uop.mem is not None
                        true_bank = ((iu.uop.mem.address // line_bytes)
                                     % max(1, cfg.memory.l1d.n_banks))
                        if self.bank_policy == "oracle":
                            believed = true_bank
                        else:
                            prediction = self.bank_predictor.predict(
                                iu.uop.pc)
                            believed = (prediction.bank
                                        if prediction.predicted else None)
                        if believed is not None \
                                and believed in banks_claimed:
                            if stalls is not None:
                                stalls["bank"] = stalls.get("bank", 0) + 1
                            continue  # port stays free for other loads
                        if believed is not None:
                            banks_claimed[believed] = iu.uop.seq

                # Verify the producers' data actually exists (hit-miss
                # speculation may have woken us early).
                actual = iu.sources_actually_ready(now)
                caps[pool] -= 1
                issued_any = True
                if actual == UNKNOWN or actual > now:
                    # Squash: the slot is consumed, the uop re-enters.
                    iu.squashes += 1
                    result.squashed_issues += 1
                    if obs is not None:
                        obs.emit(EventKind.SQUASH, now, iu.uop.seq,
                                 iu.uop.pc, cause="operands")
                    floor = (actual if actual != UNKNOWN else now + 1)
                    iu.ready_floor = floor + lat.reschedule_delay
                    continue

                if (iu.uop.is_load and self.bank_policy is not None
                        and cfg.memory.l1d.n_banks > 1):
                    assert iu.uop.mem is not None
                    true_bank = ((iu.uop.mem.address // line_bytes)
                                 % cfg.memory.l1d.n_banks)
                    if self.bank_predictor is not None:
                        self.bank_predictor.observed_update(
                            iu.uop.pc, true_bank, iu.uop.mem.address,
                            now=now)
                    claimed_by = true_banks_used.get(true_bank)
                    if claimed_by is not None:
                        # Bank conflict at execute: the access is
                        # cancelled and re-executes through the pipe
                        # (the slot is wasted, recovery is not free).
                        result.bank_conflicts += 1
                        if obs is not None:
                            obs.emit(EventKind.BANK_CONFLICT, now,
                                     iu.uop.seq, iu.uop.pc,
                                     bank=true_bank, winner=claimed_by)
                        iu.issued = False
                        iu.squashes += 1
                        iu.ready_floor = now + lat.reschedule_delay
                        continue
                    true_banks_used[true_bank] = iu.uop.seq

                self._execute(iu, mob, violations, result, now)

            if issued_any:
                window = [iu for iu in window if not iu.issued]
            if self.collect_occupancy:
                result.window_occupancy.add(len(window))
                used = sum(unit_caps[k] - caps[k] for k in caps)
                result.issue_width_used.add(used)

            # -- phase 3: rename -------------------------------------------
            if stall_branch is not None:
                b = stall_branch
                if (b.data_ready != UNKNOWN and not b.pending_collision
                        and now >= b.data_ready
                        + lat.branch_mispredict_penalty):
                    stall_branch = None
            if stalls is not None and fetch_pos < n_uops:
                # Attribute front-end idleness (full-cycle granularity).
                if stall_branch is not None:
                    stalls["frontend-branch"] = \
                        stalls.get("frontend-branch", 0) + 1
                elif now < trap_stall_until:
                    stalls["frontend-trap"] = \
                        stalls.get("frontend-trap", 0) + 1
                elif len(window) >= cfg.window_size:
                    stalls["frontend-window"] = \
                        stalls.get("frontend-window", 0) + 1
                elif len(rob) >= cfg.register_pool:
                    stalls["frontend-rob"] = \
                        stalls.get("frontend-rob", 0) + 1
            if stall_branch is None and now >= trap_stall_until:
                renamed = 0
                while (renamed < cfg.fetch_width and fetch_pos < n_uops
                       and len(rob) < cfg.register_pool
                       and len(window) < cfg.window_size):
                    uop = trace.uops[fetch_pos]
                    fetch_pos += 1
                    renamed += 1
                    producers = [regmap[r] for r in uop.srcs
                                 if r in regmap and regmap[r].uop.seq < uop.seq]
                    iu = InflightUop(uop, producers)
                    iu.rename_cycle = now
                    rob.append(iu)
                    window.append(iu)
                    if obs is not None:
                        obs.emit(EventKind.RENAME, now, uop.seq, uop.pc,
                                 uclass=uop.uclass.name)
                    if uop.dst is not None:
                        regmap[uop.dst] = iu
                    if uop.is_sta:
                        mob.insert_sta(iu)
                        self.scheme.on_rename_store(iu)
                    elif uop.is_std:
                        mob.attach_std(iu)
                    elif uop.is_load:
                        self.scheme.on_rename_load(iu)
                    elif uop.is_branch:
                        result.branches += 1
                        mispredicted = uop.mispredicted
                        if self.branch_predictor is not None:
                            prediction = self.branch_predictor.predict(
                                uop.pc)
                            self.branch_predictor.observed_update(
                                uop.pc, uop.taken, now=now)
                            mispredicted = (bool(prediction.outcome)
                                            != uop.taken)
                        if mispredicted:
                            result.branch_mispredicts += 1
                            stall_branch = iu
                            break

            now += 1

        result.cycles = now
        result.l1_miss_rate = self.hierarchy.l1_miss_rate
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _reinsert(window: List[InflightUop], iu: InflightUop) -> None:
        """Put a replayed load back into the window in program order."""
        seq = iu.uop.seq
        for pos, other in enumerate(window):
            if other.uop.seq > seq:
                window.insert(pos, iu)
                return
        window.append(iu)

    def _classify_load(self, iu: InflightUop, mob: MemoryOrderBuffer,
                       now: int) -> None:
        """Record the Figure 1 ground truth at the first dispatch chance."""
        info = iu.load
        assert info is not None and iu.uop.mem is not None
        if info.conflicting is not None:
            return  # already classified at an earlier opportunity
        info.conflicting = mob.has_unknown_sta(iu.uop.seq, now)
        record, distance = mob.colliding_store(iu.uop.seq, iu.uop.mem, now)
        info.would_collide = record is not None
        info.collide_distance = distance
        if record is not None:
            info.collide_store_pc = record.sta.uop.pc
            info.collide_store_seq = record.seq

    def _execute(self, iu: InflightUop, mob: MemoryOrderBuffer,
                 violations: List[Tuple[InflightUop, int, object]],
                 result: SimResult, now: int) -> None:
        """Dispatch ``iu`` and set its completion/announcement cycles."""
        lat = self.config.latency
        iu.issued = True
        iu.issue_cycle = now
        uop = iu.uop
        if self.obs is not None:
            self.obs.emit(EventKind.ISSUE, now, uop.seq, uop.pc,
                          uclass=uop.uclass.name)

        if uop.is_load:
            self._execute_load(iu, mob, violations, result, now)
            return

        if uop.is_sta:
            done = now + lat.agu_latency
            iu.data_ready = iu.announce_ready = done
            assert uop.mem is not None
            self.hierarchy.store(uop.mem.address, done)
            return

        iu.data_ready = iu.announce_ready = now + lat.of(uop.uclass)

    def _execute_load(self, iu: InflightUop, mob: MemoryOrderBuffer,
                      violations: List[Tuple[InflightUop, int, object]],
                      result: SimResult, now: int) -> None:
        lat = self.config.latency
        obs = self.obs
        info = iu.load
        uop = iu.uop
        assert info is not None and uop.mem is not None
        address = uop.mem.address
        line = address // self.config.memory.l1d.line_bytes
        t_addr = now + lat.agu_latency

        record, _ = mob.colliding_store(uop.seq, uop.mem, now)
        if record is not None and record.address_known(now):
            # Visible conflict: the overlapping store's address is known
            # but its data is not.  The load occupies the memory port,
            # detects the match, and is re-dispatched until the data
            # exists (P6 keeps it in the reservation station); the final
            # execution pays the collision penalty on its data.
            if not info.collided:
                info.collided = True
                result.collision_penalties += 1
                if obs is not None:
                    obs.emit(EventKind.COLLISION, now, uop.seq, uop.pc,
                             store_seq=record.seq,
                             store_pc=record.sta.uop.pc, visible=True)
                # Dependents were already promised the optimistic
                # latency; they will wake, execute without data, and
                # re-execute "until the STD is successfully completed".
                iu.announce_ready = t_addr + self.config.memory.l1_latency
            iu.issued = False
            iu.squashes += 1
            result.squashed_issues += 1
            if obs is not None:
                obs.emit(EventKind.SQUASH, now, uop.seq, uop.pc,
                         cause="collision")
            # Each re-execution is a full pass through the pipeline
            # (schedule, register read, AGU, access) — not a one-cycle
            # re-poll of the reservation station.
            iu.ready_floor = now + lat.agu_latency + lat.reschedule_delay
            return
        if record is not None:
            # Hidden violation: the matching store's address is still
            # unknown, so the machine cannot see the conflict.  The load
            # executes with stale data; when the STA resolves, the load
            # and everything that consumed its value replay (the costly
            # AC-PNC case of section 2.1).
            if not info.collided:
                info.collided = True
                result.collision_penalties += 1
                if obs is not None:
                    obs.emit(EventKind.COLLISION, now, uop.seq, uop.pc,
                             store_seq=record.seq,
                             store_pc=record.sta.uop.pc, visible=False)
            outcome = self.hierarchy.load(address, t_addr)
            base_done = t_addr + outcome.latency
            if info.predicted_hit is None:
                predicted_hit = self.hmp.predict_hit(uop.pc, line, now)
                info.predicted_hit = predicted_hit
                info.actual_hit = outcome.l1_hit
                info.line = outcome.line
                result.hitmiss.record(outcome.l1_hit, predicted_hit)
                self.hmp.observed_update(uop.pc, outcome.l1_hit, line, now)
            iu.pending_collision = True
            iu.data_ready = UNKNOWN
            iu.announce_ready = base_done  # dependents wake, then squash
            violations.append((iu, base_done, record))
            return

        # Store-to-load forwarding: with no incomplete overlapping
        # store in the way, a completed older store can supply the data
        # directly from the store queue.
        forward_from = (mob.forwarding_store(uop.seq, uop.mem, now)
                        if lat.forward_latency is not None else None)
        if forward_from is not None:
            result.forwarded_loads += 1
            if obs is not None:
                obs.emit(EventKind.FORWARD, now, uop.seq, uop.pc,
                         store_seq=forward_from.seq,
                         store_pc=forward_from.sta.uop.pc)
            done = now + lat.forward_latency
            if info.collided:
                done += lat.collision_penalty
            if info.predicted_hit is None:
                # Forwarded data behaves like a hit for HMP purposes.
                predicted_hit = self.hmp.predict_hit(uop.pc, line, now)
                info.predicted_hit = predicted_hit
                info.actual_hit = True
                info.line = line
                result.hitmiss.record(True, predicted_hit)
                self.hmp.observed_update(uop.pc, True, line, now)
            iu.data_ready = done
            iu.announce_ready = done
            return

        # Hit-miss prediction happens at schedule time, before the
        # access disturbs the cache/MSHR state.
        outcome = self.hierarchy.load(address, t_addr)
        base_done = t_addr + outcome.latency
        if info.collided:
            # Recovery from the wrong ordering delays the data.
            base_done += lat.collision_penalty
        if info.predicted_hit is None:
            predicted_hit = self.hmp.predict_hit(uop.pc, line, now)
            info.predicted_hit = predicted_hit
            info.actual_hit = outcome.l1_hit
            info.line = outcome.line
            result.hitmiss.record(outcome.l1_hit, predicted_hit)
            self.hmp.observed_update(uop.pc, outcome.l1_hit, line, now)
        predicted_hit = bool(info.predicted_hit)

        if self.prefetcher is not None:
            self.prefetcher.on_demand_access(uop.pc, address, t_addr)

        iu.data_ready = base_done
        if predicted_hit and not outcome.l1_hit:
            # AM-PH: dependents were promised L1 latency; they will wake
            # early, issue, and squash (today's re-execution behaviour).
            iu.announce_ready = t_addr + self.config.memory.l1_latency
        elif not predicted_hit and outcome.l1_hit:
            # AH-PM: dependents may only dispatch once the hit
            # indication arrives.
            iu.announce_ready = base_done + lat.hit_indication_delay
        else:
            iu.announce_ready = base_done

    def _finish_load(self, iu: InflightUop, result: SimResult) -> None:
        """Classify for Figure 1 stats and train the ordering scheme."""
        info = iu.load
        assert info is not None
        if info.conflicting is None:
            # Never reached a dispatch-opportunity check (should not
            # happen for an executed load, but guard anyway).
            return
        cls = classify_collision(info.conflicting,
                                 bool(info.would_collide),
                                 info.predicted_colliding)
        info.classification = cls
        result.load_classes[cls] += 1
        self.scheme.on_retire_load(iu)
