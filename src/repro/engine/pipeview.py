"""Per-uop pipeline timeline rendering (gem5-o3-pipeview style).

When a :class:`~repro.engine.machine.Machine` runs with
``record_timeline=True``, every retired uop carries its rename, issue,
completion and retirement cycles.  :func:`render_timeline` draws them as
an ASCII pipeline diagram — one row per uop, one column per cycle:

``````
   seq  class   |r====i~~~~~~c....R     |
``````

* ``r`` — rename (enters ROB + scheduling window)
* ``i`` — (final) issue to an execution unit
* ``~`` — executing (issue to data-ready)
* ``c`` — result/data ready
* ``R`` — retire
* ``=`` — waiting in the scheduling window
* ``.`` — complete, waiting for in-order retirement

The diagram makes the paper's effects visible directly: a colliding
load shows a long ``=`` stall (Traditional) or a late ``i`` after retry
(Opportunistic); a mispredicted-hit dependent shows squashed re-issues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.types import UopClass


@dataclass(frozen=True)
class UopTimeline:
    """The lifecycle cycles of one retired uop."""

    seq: int
    pc: int
    uclass: UopClass
    rename_cycle: int
    issue_cycle: int
    complete_cycle: int
    retire_cycle: int
    squashes: int = 0
    collided: bool = False

    @property
    def window_wait(self) -> int:
        """Cycles spent waiting in the scheduling window."""
        return max(0, self.issue_cycle - self.rename_cycle)

    @property
    def execute_time(self) -> int:
        return max(0, self.complete_cycle - self.issue_cycle)

    @property
    def retire_wait(self) -> int:
        return max(0, self.retire_cycle - self.complete_cycle)


def render_timeline(timeline: Sequence[UopTimeline],
                    start_cycle: Optional[int] = None,
                    end_cycle: Optional[int] = None,
                    max_uops: int = 64) -> str:
    """Draw the pipeline diagram for (a window of) a timeline."""
    if not timeline:
        return "(empty timeline)"
    rows = list(timeline)[:max_uops]
    lo = start_cycle if start_cycle is not None else \
        min(u.rename_cycle for u in rows)
    hi = end_cycle if end_cycle is not None else \
        max(u.retire_cycle for u in rows)
    width = hi - lo + 1
    if width > 240:
        hi = lo + 239
        width = 240

    lines: List[str] = [
        f"cycles {lo}..{hi}   "
        "(r=rename  ==wait  i=issue  ~=execute  c=complete  "
        ".=wait-retire  R=retire)"
    ]
    for u in rows:
        cells = [" "] * width

        def put(cycle: int, char: str) -> None:
            if lo <= cycle <= hi:
                cells[cycle - lo] = char

        def fill(first: int, last: int, char: str) -> None:
            for cycle in range(max(first, lo), min(last, hi) + 1):
                if cells[cycle - lo] == " ":
                    cells[cycle - lo] = char

        fill(u.rename_cycle + 1, u.issue_cycle - 1, "=")
        fill(u.issue_cycle + 1, u.complete_cycle - 1, "~")
        fill(u.complete_cycle + 1, u.retire_cycle - 1, ".")
        put(u.rename_cycle, "r")
        put(u.issue_cycle, "i")
        put(u.complete_cycle, "c")
        put(u.retire_cycle, "R")

        marker = "!" if u.collided else (
            "s" if u.squashes else " ")
        lines.append(f"{u.seq:6d} {u.uclass.name:6s}{marker}|"
                     + "".join(cells) + "|")
    return "\n".join(lines)


def summarize_timeline(timeline: Sequence[UopTimeline]) -> dict:
    """Aggregate stage-time statistics over a timeline."""
    if not timeline:
        return {"uops": 0}
    n = len(timeline)
    return {
        "uops": n,
        "avg_window_wait": sum(u.window_wait for u in timeline) / n,
        "avg_execute": sum(u.execute_time for u in timeline) / n,
        "avg_retire_wait": sum(u.retire_wait for u in timeline) / n,
        "squashed_uops": sum(1 for u in timeline if u.squashes),
        "collided_loads": sum(1 for u in timeline if u.collided),
    }


def loads_only(timeline: Sequence[UopTimeline]) -> List[UopTimeline]:
    """Filter a timeline down to its loads."""
    return [u for u in timeline if u.uclass == UopClass.LOAD]
