"""Memory Ordering Buffer.

The MOB tracks every in-flight store (STA/STD pair) in program order and
answers the queries the ordering schemes and the collision checker need:

* does an older STA with a still-unknown address exist? (the load is
  *conflicting*);
* which older store, if any, overlaps this load's address and has not
  delivered its data? (the load *would collide*; its *distance* is the
  count of stores between them, 1 = nearest);
* have all older stores at distance >= d completed? (exclusive scheme).

The simulator knows every address from the trace (oracle); "unknown" is
a matter of *timing* — an STA's address becomes architecturally known at
its completion cycle, exactly as in the machine being modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.types import MemAccess
from repro.engine.inflight import UNKNOWN, InflightUop


@dataclass
class StoreRecord:
    """One store's STA/STD pair and its timing."""

    sta: InflightUop
    mem: MemAccess
    std: Optional[InflightUop] = None

    @property
    def seq(self) -> int:
        return self.sta.uop.seq

    def address_known(self, now: int) -> bool:
        return (self.sta.data_ready != UNKNOWN
                and self.sta.data_ready <= now)

    def data_done(self, now: int) -> bool:
        if self.std is None:
            # STD not yet renamed: data certainly not available.
            return False
        return (self.std.data_ready != UNKNOWN
                and self.std.data_ready <= now)

    def std_ready_cycle(self) -> Optional[int]:
        """The STD's completion cycle, if resolved."""
        if self.std is None or self.std.data_ready == UNKNOWN:
            return None
        return self.std.data_ready

    def complete(self, now: int) -> bool:
        return self.address_known(now) and self.data_done(now)


class MemoryOrderBuffer:
    """Program-ordered store records with the scheme queries.

    ``obs`` is an optional :class:`repro.obs.events.EventBus`; when
    attached, the MOB reports its store lifecycle (``store-tracked`` on
    STA insertion, ``store-data`` on STD linkage) so event consumers can
    reconstruct the disambiguation state the schemes saw.
    """

    def __init__(self, obs=None) -> None:
        self._stores: List[StoreRecord] = []
        self.obs = obs

    # -- lifecycle ----------------------------------------------------------

    def insert_sta(self, sta: InflightUop) -> StoreRecord:
        if sta.uop.mem is None:
            raise ValueError("STA uop must carry its memory access")
        record = StoreRecord(sta=sta, mem=sta.uop.mem)
        self._stores.append(record)
        if self.obs is not None:
            self.obs.emit("store-tracked", sta.rename_cycle,
                          sta.uop.seq, sta.uop.pc,
                          address=sta.uop.mem.address,
                          mob_depth=len(self._stores))
        return record

    def attach_std(self, std: InflightUop) -> None:
        """Link an STD to its STA's record (searched newest-first)."""
        target = std.uop.sta_seq
        for record in reversed(self._stores):
            if record.seq == target:
                record.std = std
                if self.obs is not None:
                    self.obs.emit("store-data", std.rename_cycle,
                                  std.uop.seq, std.uop.pc,
                                  sta_seq=record.seq,
                                  mob_depth=len(self._stores))
                return
        raise KeyError(f"no STA with seq {target} in the MOB")

    def remove_retired(self, seq: int) -> None:
        """Drop stores fully retired before the oldest in-flight uop.

        A record must survive until its STD retires: the STA may retire
        a cycle earlier while the data is still outstanding, and younger
        loads must keep seeing that store.
        """
        self._stores = [r for r in self._stores
                        if r.std is None or r.std.uop.seq >= seq]

    def __len__(self) -> int:
        return len(self._stores)

    def tracked(self) -> List[Tuple[int, Optional[int]]]:
        """``[(sta_seq, std_seq|None), ...]`` oldest-first.

        The balance view the property suite compares against the
        vectorized kernel's :class:`repro.engine.vector.ArrayMOB`.
        """
        return [(r.seq, None if r.std is None else r.std.uop.seq)
                for r in self._stores]

    # -- queries ------------------------------------------------------------

    def store_by_seq(self, seq: int) -> Optional[StoreRecord]:
        """The record whose STA has the given seq, if still tracked."""
        for record in self._stores:
            if record.seq == seq:
                return record
        return None

    def older_stores(self, load_seq: int) -> List[StoreRecord]:
        """Stores older than the load, nearest (youngest) first."""
        older = [r for r in self._stores if r.seq < load_seq]
        older.reverse()
        return older

    def has_unknown_sta(self, load_seq: int, now: int) -> bool:
        """Any older store whose address is not yet known? (conflicting)"""
        return any(not r.address_known(now)
                   for r in self._stores if r.seq < load_seq)

    def all_older_complete(self, load_seq: int, now: int) -> bool:
        """Every older store fully done (STA + STD)?"""
        return all(r.complete(now)
                   for r in self._stores if r.seq < load_seq)

    def all_older_stds_done(self, load_seq: int, now: int) -> bool:
        return all(r.data_done(now)
                   for r in self._stores if r.seq < load_seq)

    def complete_beyond_distance(self, load_seq: int, now: int,
                                 distance: int) -> bool:
        """All older stores at distance >= ``distance`` complete?

        Distance counts older stores starting from the nearest (1); the
        exclusive scheme lets a load bypass the ``distance - 1`` nearest
        stores but wait for everything at or beyond its minimal
        collision distance.
        """
        for d, record in enumerate(self.older_stores(load_seq), start=1):
            if d >= distance and not record.complete(now):
                return False
        return True

    def colliding_store(self, load_seq: int, mem: MemAccess,
                        now: int) -> Tuple[Optional[StoreRecord], Optional[int]]:
        """Nearest older overlapping store whose data is not done.

        Returns ``(record, distance)`` or ``(None, None)``.  This is the
        oracle "would this load collide if dispatched now?" query used
        for ground truth, classification, and the Perfect scheme.
        """
        for distance, record in enumerate(self.older_stores(load_seq),
                                          start=1):
            if record.mem.overlaps(mem) and not record.complete(now):
                return record, distance
        return None, None

    def forwarding_store(self, load_seq: int, mem: MemAccess,
                         now: int) -> Optional[StoreRecord]:
        """Nearest older overlapping store that has fully completed.

        Only meaningful when :meth:`colliding_store` returned nothing
        (no incomplete overlapping store closer to the load): the
        returned store's data can be forwarded to the load.
        """
        for record in self.older_stores(load_seq):
            if record.mem.overlaps(mem) and record.complete(now):
                return record
        return None

    def matching_unknown_sta(self, load_seq: int, mem: MemAccess,
                             now: int) -> bool:
        """Does an older *unknown-address* STA actually overlap the load?

        This is Figure 1's colliding-among-conflicting test: of the
        stores whose addresses the scheduler cannot see, does one in
        fact match?
        """
        return any(not r.address_known(now) and r.mem.overlaps(mem)
                   for r in self._stores if r.seq < load_seq)
