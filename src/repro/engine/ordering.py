"""The six memory ordering schemes of section 3.1.

Each scheme decides when a ready load may be dispatched relative to the
older stores in the window, and owns the CHT consultation/training for
the predictor-based schemes:

I.   Traditional — wait for all older STAs; may pass STDs (a wrong
     load-STD ordering costs the collision penalty).
II.  Opportunistic — never wait; wrong orderings cost the penalty.
III. Postponing — Traditional, plus CHT-predicted-colliding loads also
     wait for all older STDs.
IV.  Inclusive — predicted-colliding loads wait for *all* older
     STAs+STDs; predicted-non-colliding loads never wait.
V.   Exclusive — like Inclusive, but a predicted-colliding load with a
     learned minimal distance d only waits for stores at distance >= d.
VI.  Perfect — oracle: delay exactly the truly colliding loads, exactly
     until their colliding store completes.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Type

from repro.cht.base import CollisionPredictor
from repro.engine.inflight import InflightUop
from repro.engine.mob import MemoryOrderBuffer


class OrderingScheme(abc.ABC):
    """Scheduler policy for load-store ordering."""

    name: str = "abstract"
    uses_cht = False
    #: Guarantee flags consumed by the invariant checker
    #: (:mod:`repro.robust.invariants`).  ``never_violates``: the
    #: scheme waits for every older unknown-address STA, so a hidden
    #: (AC-PNC) ordering violation is impossible.  ``never_collides``:
    #: the scheme is an oracle — no load ever pays a collision at all.
    never_violates = False
    never_collides = False

    @abc.abstractmethod
    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        """May this source-ready load be dispatched at cycle ``now``?"""

    def on_rename_load(self, load: InflightUop) -> None:
        """Hook: the load enters the window (CHT lookup happens here)."""

    def on_retire_load(self, load: InflightUop) -> None:
        """Hook: the load retires (CHT training happens here)."""

    def on_rename_store(self, sta: InflightUop) -> None:
        """Hook: a store enters the window (store-set/barrier lookup)."""

    def on_store_data_done(self, sta_seq: int) -> None:
        """Hook: the store's data has retired (LFST/fence release)."""


class TraditionalOrdering(OrderingScheme):
    """Scheme I: each load waits for all older STAs (P6-style)."""

    name = "traditional"
    never_violates = True  # loads wait for every older STA

    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        return not mob.has_unknown_sta(load.uop.seq, now)


class OpportunisticOrdering(OrderingScheme):
    """Scheme II: loads never wait for stores."""

    name = "opportunistic"

    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        return True


class _ChtScheme(OrderingScheme):
    """Shared CHT lookup/training for schemes III-V."""

    uses_cht = True

    def __init__(self, cht: CollisionPredictor) -> None:
        self.cht = cht

    def on_rename_load(self, load: InflightUop) -> None:
        prediction = self.cht.lookup(load.uop.pc)
        assert load.load is not None
        load.load.predicted_colliding = prediction.colliding
        load.load.predicted_distance = prediction.distance

    def on_retire_load(self, load: InflightUop) -> None:
        info = load.load
        assert info is not None
        if info.would_collide is None:
            return  # the load never reached a dispatch opportunity check
        self.cht.observed_train(load.uop.pc, info.would_collide,
                                info.collide_distance)


class PostponingOrdering(_ChtScheme):
    """Scheme III: Traditional + predicted-colliding loads wait for STDs."""

    name = "postponing"
    never_violates = True  # still waits for every older STA

    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        if mob.has_unknown_sta(load.uop.seq, now):
            return False
        assert load.load is not None
        if load.load.predicted_colliding:
            return mob.all_older_stds_done(load.uop.seq, now)
        return True


class InclusiveOrdering(_ChtScheme):
    """Scheme IV: the inclusive collision predictor."""

    name = "inclusive"

    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        assert load.load is not None
        if not load.load.predicted_colliding:
            return True
        return mob.all_older_complete(load.uop.seq, now)


class ExclusiveOrdering(_ChtScheme):
    """Scheme V: the exclusive predictor with collision distances."""

    name = "exclusive"

    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        assert load.load is not None
        info = load.load
        if not info.predicted_colliding:
            return True
        if info.predicted_distance is None:
            # No distance learned yet: fall back to inclusive behaviour.
            return mob.all_older_complete(load.uop.seq, now)
        return mob.complete_beyond_distance(load.uop.seq, now,
                                            info.predicted_distance)


class PerfectOrdering(OrderingScheme):
    """Scheme VI: oracle disambiguation."""

    name = "perfect"
    never_violates = True
    never_collides = True  # the oracle never dispatches into a collision

    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        assert load.uop.mem is not None
        record, _ = mob.colliding_store(load.uop.seq, load.uop.mem, now)
        return record is None


SCHEME_NAMES = ("traditional", "opportunistic", "postponing", "inclusive",
                "exclusive", "perfect")

#: The exact scheme types the vectorized engine kernel implements, in
#: kernel-kind order (:mod:`repro.engine.vector` dispatches on the
#: tuple index).  Deliberately exact types, not isinstance checks:
#: subclasses (e.g. the fault-injection LyingOrdering wrappers) must
#: fall back to the scalar path so their behaviour stays observable.
VECTOR_SCHEME_TYPES = (TraditionalOrdering, OpportunisticOrdering,
                       PostponingOrdering, InclusiveOrdering,
                       ExclusiveOrdering, PerfectOrdering)

#: Prior-art baselines implemented in :mod:`repro.engine.alternatives`.
ALTERNATIVE_SCHEMES = ("storesets", "barrier")

_CHT_SCHEMES: Dict[str, Type[_ChtScheme]] = {
    "postponing": PostponingOrdering,
    "inclusive": InclusiveOrdering,
    "exclusive": ExclusiveOrdering,
}


def make_scheme(name: str,
                cht: Optional[CollisionPredictor] = None) -> OrderingScheme:
    """Factory for the section 3.1 schemes by name.

    Predictor-based schemes receive ``cht``; a default Full CHT in the
    paper's Figure 7 configuration (2K entries, 4-way, 2-bit counters,
    distance tracking for the exclusive scheme) is built when omitted.
    """
    if name == "traditional":
        return TraditionalOrdering()
    if name == "opportunistic":
        return OpportunisticOrdering()
    if name == "perfect":
        return PerfectOrdering()
    if name in _CHT_SCHEMES:
        if cht is None:
            from repro.cht.full import FullCHT
            cht = FullCHT(n_entries=2048, ways=4, counter_bits=2,
                          track_distance=(name == "exclusive"))
        return _CHT_SCHEMES[name](cht)
    if name in ALTERNATIVE_SCHEMES:
        from repro.engine import alternatives
        if name == "storesets":
            return alternatives.StoreSetOrdering()
        return alternatives.StoreBarrierOrdering()
    raise ValueError(f"unknown ordering scheme {name!r}; "
                     f"choose from {SCHEME_NAMES + ALTERNATIVE_SCHEMES}")
