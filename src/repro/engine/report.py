"""Human-readable performance reports from simulation results.

``performance_report`` turns a :class:`~repro.engine.results.SimResult`
(optionally with stall breakdown, occupancy and timeline enabled) into
the kind of summary an architect reads first: throughput, where the
cycles went, what the loads did, and what the predictors saw.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import LoadCollisionClass
from repro.engine.results import SimResult
from repro.experiments.reporting import bar_chart


def performance_report(result: SimResult,
                       baseline: Optional[SimResult] = None) -> str:
    """Render a multi-section text report for one run.

    ``baseline`` (same trace, different scheme) adds a speedup line.
    """
    lines: List[str] = []
    lines.append(f"=== {result.trace_name} under '{result.scheme}' "
                 f"ordering ===")
    lines.append(f"cycles {result.cycles}   retired {result.retired_uops} "
                 f"uops ({result.retired_loads} loads)   "
                 f"IPC {result.ipc:.2f}")
    if baseline is not None:
        lines.append(f"speedup over '{baseline.scheme}': "
                     f"{result.speedup_over(baseline):.3f}")

    # -- loads ---------------------------------------------------------
    lines.append("")
    lines.append("loads (Figure 1 classification):")
    lines.append(bar_chart(
        [("no conflict", result.frac_not_conflicting),
         ("ANC (advanceable)", result.frac_anc),
         ("AC (colliding)", result.frac_actually_colliding)],
        width=30, max_value=1.0, value_format="{:.1%}"))
    lines.append(f"collision penalties {result.collision_penalties}   "
                 f"forwarded {result.forwarded_loads}   "
                 f"L1 miss rate {result.l1_miss_rate:.1%}")

    # -- hit-miss -------------------------------------------------------
    hm = result.hitmiss
    if hm.total:
        lines.append("")
        lines.append(f"hit-miss prediction: accuracy {hm.accuracy:.1%}, "
                     f"misses caught {hm.miss_coverage:.1%}, "
                     f"false misses {hm.ah_pm_fraction:.2%} of loads")

    # -- where the waiting happened --------------------------------------
    if result.stall_breakdown:
        lines.append("")
        total = sum(result.stall_breakdown.values())
        lines.append(f"stalled uop-cycles ({total} total):")
        lines.append(bar_chart(
            sorted(result.stall_breakdown.items(),
                   key=lambda kv: -kv[1]),
            width=30, value_format="{:.0f}"))

    # -- front end --------------------------------------------------------
    if result.branches:
        lines.append("")
        lines.append(f"branches {result.branches}   "
                     f"mispredicts {result.branch_mispredicts} "
                     f"(accuracy {result.branch_accuracy:.1%})")
    if result.bank_conflicts:
        lines.append(f"bank conflicts {result.bank_conflicts}")

    # -- squash economy -----------------------------------------------------
    lines.append("")
    lines.append(f"squashed issues {result.squashed_issues} "
                 f"({result.squashed_issues / max(1, result.cycles):.2f} "
                 f"per cycle)")

    # -- pipeline stage times (timeline runs only) --------------------------
    if result.timeline:
        from repro.engine.pipeview import summarize_timeline
        summary = summarize_timeline(result.timeline)
        lines.append("")
        lines.append(
            f"average stage times: window-wait "
            f"{summary['avg_window_wait']:.1f}  execute "
            f"{summary['avg_execute']:.1f}  retire-wait "
            f"{summary['avg_retire_wait']:.1f} cycles")

    if result.window_occupancy.total:
        lines.append(f"window occupancy: mean "
                     f"{result.window_occupancy.mean():.1f}, p90 "
                     f"{result.window_occupancy.percentile(0.9)}")
    return "\n".join(lines)


def compare_report(results: List[SimResult]) -> str:
    """Side-by-side comparison of several runs of the same trace."""
    if not results:
        return "(no results)"
    trace = results[0].trace_name
    if any(r.trace_name != trace for r in results):
        raise ValueError("compare_report expects runs of one trace")
    baseline = results[0]
    lines = [f"=== {trace}: {len(results)} schemes ==="]
    header = (f"{'scheme':14s} {'cycles':>8s} {'IPC':>6s} "
              f"{'speedup':>8s} {'collisions':>11s} {'squashes':>9s}")
    lines.append(header)
    lines.append("-" * len(header))
    for r in results:
        lines.append(f"{r.scheme:14s} {r.cycles:8d} {r.ipc:6.2f} "
                     f"{r.speedup_over(baseline):8.3f} "
                     f"{r.collision_penalties:11d} "
                     f"{r.squashed_issues:9d}")
    return "\n".join(lines)
