"""Human-readable performance reports from simulation results.

``performance_report`` turns a :class:`~repro.engine.results.SimResult`
(optionally with stall breakdown, occupancy and timeline enabled) into
the kind of summary an architect reads first: throughput, where the
cycles went, what the loads did, and what the predictors saw.

Every number rendered here is read from a
:class:`~repro.obs.registry.MetricsRegistry` snapshot of the result
rather than ad-hoc attribute access, so the text report, the JSON
artifacts and ``python -m repro.obs summarize`` can never disagree
about a value.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.results import SimResult
from repro.experiments.reporting import bar_chart
from repro.obs.registry import MetricsRegistry
from repro.obs.render import render_metrics


def result_registry(result: SimResult,
                    prefix: str = "run") -> MetricsRegistry:
    """The metrics registry backing all reports of ``result``."""
    return MetricsRegistry.from_result(result, prefix=prefix)


def metrics_report(result: SimResult) -> str:
    """The full flat metrics snapshot, grouped by namespace."""
    return render_metrics(result_registry(result).snapshot(),
                          title=f"{result.trace_name}/{result.scheme}")


def performance_report(result: SimResult,
                       baseline: Optional[SimResult] = None) -> str:
    """Render a multi-section text report for one run.

    ``baseline`` (same trace, different scheme) adds a speedup line.
    """
    snap: Dict[str, float] = result_registry(result).snapshot()
    lines: List[str] = []
    lines.append(f"=== {result.trace_name} under '{result.scheme}' "
                 f"ordering ===")
    lines.append(f"cycles {int(snap['run.cycles'])}   "
                 f"retired {int(snap['run.retired_uops'])} "
                 f"uops ({int(snap['run.retired_loads'])} loads)   "
                 f"IPC {snap['run.ipc']:.2f}")
    if baseline is not None:
        lines.append(f"speedup over '{baseline.scheme}': "
                     f"{result.speedup_over(baseline):.3f}")

    # -- loads ---------------------------------------------------------
    lines.append("")
    lines.append("loads (Figure 1 classification):")
    lines.append(bar_chart(
        [("no conflict", snap["run.loads.frac_not_conflicting"]),
         ("ANC (advanceable)", snap["run.loads.frac_anc"]),
         ("AC (colliding)", snap["run.loads.frac_colliding"])],
        width=30, max_value=1.0, value_format="{:.1%}"))
    lines.append(f"collision penalties "
                 f"{int(snap['run.collision_penalties'])}   "
                 f"forwarded {int(snap['run.forwarded_loads'])}   "
                 f"L1 miss rate {snap['run.l1_miss_rate']:.1%}")

    # -- hit-miss -------------------------------------------------------
    if "run.hitmiss.accuracy" in snap:
        lines.append("")
        lines.append(f"hit-miss prediction: accuracy "
                     f"{snap['run.hitmiss.accuracy']:.1%}, "
                     f"misses caught {snap['run.hitmiss.coverage']:.1%}, "
                     f"false misses {snap['run.hitmiss.ah_pm']:.2%} "
                     f"of loads")

    # -- where the waiting happened --------------------------------------
    stall_paths = sorted(p for p in snap if p.startswith("run.stalls."))
    if stall_paths:
        lines.append("")
        total = sum(snap[p] for p in stall_paths)
        lines.append(f"stalled uop-cycles ({int(total)} total):")
        lines.append(bar_chart(
            sorted(((p.rsplit(".", 1)[1], snap[p]) for p in stall_paths),
                   key=lambda kv: -kv[1]),
            width=30, value_format="{:.0f}"))

    # -- front end --------------------------------------------------------
    if snap["run.branches"]:
        lines.append("")
        lines.append(f"branches {int(snap['run.branches'])}   "
                     f"mispredicts "
                     f"{int(snap['run.branch_mispredicts'])} "
                     f"(accuracy {snap['run.branch_accuracy']:.1%})")
    if snap["run.bank_conflicts"]:
        lines.append(f"bank conflicts {int(snap['run.bank_conflicts'])}")

    # -- squash economy -----------------------------------------------------
    lines.append("")
    squashes = int(snap["run.squashed_issues"])
    lines.append(f"squashed issues {squashes} "
                 f"({squashes / max(1, int(snap['run.cycles'])):.2f} "
                 f"per cycle)")

    # -- pipeline stage times (timeline runs only) --------------------------
    if "run.timeline.avg_window_wait" in snap:
        lines.append("")
        lines.append(
            f"average stage times: window-wait "
            f"{snap['run.timeline.avg_window_wait']:.1f}  execute "
            f"{snap['run.timeline.avg_execute']:.1f}  retire-wait "
            f"{snap['run.timeline.avg_retire_wait']:.1f} cycles")

    if "run.window_occupancy.total" in snap:
        lines.append(f"window occupancy: mean "
                     f"{snap['run.window_occupancy.mean']:.1f}, p90 "
                     f"{int(snap['run.window_occupancy.p90'])}")
    return "\n".join(lines)


def compare_report(results: List[SimResult]) -> str:
    """Side-by-side comparison of several runs of the same trace."""
    if not results:
        return "(no results)"
    trace = results[0].trace_name
    if any(r.trace_name != trace for r in results):
        raise ValueError("compare_report expects runs of one trace")
    baseline = results[0]
    lines = [f"=== {trace}: {len(results)} schemes ==="]
    header = (f"{'scheme':14s} {'cycles':>8s} {'IPC':>6s} "
              f"{'speedup':>8s} {'collisions':>11s} {'squashes':>9s}")
    lines.append(header)
    lines.append("-" * len(header))
    for r in results:
        snap = result_registry(r).snapshot()
        lines.append(f"{r.scheme:14s} {int(snap['run.cycles']):8d} "
                     f"{snap['run.ipc']:6.2f} "
                     f"{r.speedup_over(baseline):8.3f} "
                     f"{int(snap['run.collision_penalties']):11d} "
                     f"{int(snap['run.squashed_issues']):9d}")
    return "\n".join(lines)
