"""Simulation result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.stats import Histogram
from repro.common.types import HitMissClass, LoadCollisionClass
from repro.hitmiss.base import HitMissStats


@dataclass
class SimResult:
    """Everything a run of :class:`repro.engine.Machine` measured.

    The per-figure experiment harnesses consume these; nothing here is
    paper-specific beyond the taxonomies of Figure 1 and section 2.2.
    """

    trace_name: str
    scheme: str
    cycles: int = 0
    retired_uops: int = 0
    retired_loads: int = 0
    #: Figure 1 taxonomy counts over all classified loads.
    load_classes: Dict[LoadCollisionClass, int] = field(
        default_factory=lambda: {c: 0 for c in LoadCollisionClass})
    #: Loads that paid the wrong-ordering collision penalty.
    collision_penalties: int = 0
    #: Dependent-uop squashes (issued before producer data existed).
    squashed_issues: int = 0
    #: Loads served by store-to-load forwarding (when enabled).
    forwarded_loads: int = 0
    #: Same-cycle accesses to one L1 bank (bank-policy runs only).
    bank_conflicts: int = 0
    #: Front-end branch accounting (mispredicts are annotation-derived
    #: unless a live branch predictor is attached).
    branches: int = 0
    branch_mispredicts: int = 0
    #: Per-cycle scheduling-window occupancy (collect_occupancy only).
    window_occupancy: Histogram = field(
        default_factory=lambda: Histogram("window_occupancy"))
    #: Per-cycle issue slots consumed (collect_occupancy only).
    issue_width_used: Histogram = field(
        default_factory=lambda: Histogram("issue_width_used"))
    #: Per-uop lifecycle records (record_timeline only); see
    #: :mod:`repro.engine.pipeview`.
    timeline: list = field(default_factory=list)
    #: uop-cycles spent waiting, by cause (collect_stall_breakdown
    #: only): "port", "operands", "ordering", "bank".
    stall_breakdown: Dict[str, int] = field(default_factory=dict)
    #: Hit-miss outcome classes (populated when an HMP is attached).
    hitmiss: HitMissStats = field(default_factory=HitMissStats)
    l1_miss_rate: float = 0.0

    @property
    def ipc(self) -> float:
        return self.retired_uops / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches

    def speedup_over(self, baseline: "SimResult") -> float:
        """Speedup of this run relative to ``baseline`` (same trace)."""
        if baseline.trace_name != self.trace_name:
            raise ValueError("speedups compare runs of the same trace")
        if not self.cycles:
            return 0.0
        # Equal retired work by construction (same trace), so the cycle
        # ratio is the speedup.
        return baseline.cycles / self.cycles

    # -- Figure 1 taxonomy fractions ----------------------------------------

    @property
    def classified_loads(self) -> int:
        return sum(self.load_classes.values())

    def class_fraction(self, cls: LoadCollisionClass) -> float:
        total = self.classified_loads
        return self.load_classes[cls] / total if total else 0.0

    @property
    def frac_not_conflicting(self) -> float:
        return self.class_fraction(LoadCollisionClass.NOT_CONFLICTING)

    @property
    def frac_actually_colliding(self) -> float:
        return (self.class_fraction(LoadCollisionClass.AC_PC)
                + self.class_fraction(LoadCollisionClass.AC_PNC))

    @property
    def frac_anc(self) -> float:
        """Conflicting but not colliding (the advanceable majority)."""
        return (self.class_fraction(LoadCollisionClass.ANC_PC)
                + self.class_fraction(LoadCollisionClass.ANC_PNC))

    def conflicting_fraction(self, cls: LoadCollisionClass) -> float:
        """Fraction of *conflicting* loads in ``cls`` (Figure 9's axis)."""
        conflicting = (self.classified_loads
                       - self.load_classes[LoadCollisionClass.NOT_CONFLICTING])
        return self.load_classes[cls] / conflicting if conflicting else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace": self.trace_name,
            "scheme": self.scheme,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "retired_uops": self.retired_uops,
            "retired_loads": self.retired_loads,
            "collision_penalties": self.collision_penalties,
            "squashed_issues": self.squashed_issues,
            "forwarded_loads": self.forwarded_loads,
            "bank_conflicts": self.bank_conflicts,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "l1_miss_rate": self.l1_miss_rate,
            "classes": {c.value: n for c, n in self.load_classes.items()},
            "hitmiss": self.hitmiss.as_dict(),
        }

    # -- lossless serialisation ---------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Full, JSON-safe, round-trippable encoding of the result.

        Unlike :meth:`as_dict` (a reporting view with derived ratios),
        this captures every measured field — including histograms, the
        stall breakdown, the hit-miss class counts and the per-uop
        timeline — such that :meth:`from_dict` reconstructs an equal
        result.
        """
        out: Dict[str, object] = {
            "schema": 1,
            "trace_name": self.trace_name,
            "scheme": self.scheme,
            "cycles": self.cycles,
            "retired_uops": self.retired_uops,
            "retired_loads": self.retired_loads,
            "collision_penalties": self.collision_penalties,
            "squashed_issues": self.squashed_issues,
            "forwarded_loads": self.forwarded_loads,
            "bank_conflicts": self.bank_conflicts,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "l1_miss_rate": self.l1_miss_rate,
            "load_classes": {c.value: n
                             for c, n in self.load_classes.items()},
            "hitmiss": {c.value: n for c, n in self.hitmiss.counts.items()},
            "stall_breakdown": dict(self.stall_breakdown),
            "window_occupancy": {str(k): v for k, v
                                 in self.window_occupancy.items()},
            "issue_width_used": {str(k): v for k, v
                                 in self.issue_width_used.items()},
        }
        if self.timeline:
            out["timeline"] = [
                {"seq": u.seq, "pc": u.pc, "uclass": u.uclass.name,
                 "rename_cycle": u.rename_cycle,
                 "issue_cycle": u.issue_cycle,
                 "complete_cycle": u.complete_cycle,
                 "retire_cycle": u.retire_cycle,
                 "squashes": u.squashes, "collided": u.collided}
                for u in self.timeline]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimResult":
        """Reconstruct a result serialised by :meth:`to_dict`."""
        from repro.common.types import UopClass

        result = cls(trace_name=str(data["trace_name"]),
                     scheme=str(data["scheme"]))
        for name in ("cycles", "retired_uops", "retired_loads",
                     "collision_penalties", "squashed_issues",
                     "forwarded_loads", "bank_conflicts", "branches",
                     "branch_mispredicts"):
            setattr(result, name, int(data.get(name, 0)))
        result.l1_miss_rate = float(data.get("l1_miss_rate", 0.0))
        for key, count in dict(data.get("load_classes", {})).items():
            result.load_classes[LoadCollisionClass(key)] = int(count)
        for key, count in dict(data.get("hitmiss", {})).items():
            result.hitmiss.counts[HitMissClass(key)] = int(count)
        result.stall_breakdown = {
            str(k): int(v)
            for k, v in dict(data.get("stall_breakdown", {})).items()}
        for field_name in ("window_occupancy", "issue_width_used"):
            hist = getattr(result, field_name)
            for key, count in dict(data.get(field_name, {})).items():
                hist.add(int(key), int(count))
        for record in data.get("timeline", []):
            from repro.engine.pipeview import UopTimeline
            result.timeline.append(UopTimeline(
                seq=int(record["seq"]), pc=int(record["pc"]),
                uclass=UopClass[str(record["uclass"])],
                rename_cycle=int(record["rename_cycle"]),
                issue_cycle=int(record["issue_cycle"]),
                complete_cycle=int(record["complete_cycle"]),
                retire_cycle=int(record["retire_cycle"]),
                squashes=int(record.get("squashes", 0)),
                collided=bool(record.get("collided", False))))
        return result
