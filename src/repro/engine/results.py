"""Simulation result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.stats import Histogram
from repro.common.types import HitMissClass, LoadCollisionClass
from repro.hitmiss.base import HitMissStats


@dataclass
class SimResult:
    """Everything a run of :class:`repro.engine.Machine` measured.

    The per-figure experiment harnesses consume these; nothing here is
    paper-specific beyond the taxonomies of Figure 1 and section 2.2.
    """

    trace_name: str
    scheme: str
    cycles: int = 0
    retired_uops: int = 0
    retired_loads: int = 0
    #: Figure 1 taxonomy counts over all classified loads.
    load_classes: Dict[LoadCollisionClass, int] = field(
        default_factory=lambda: {c: 0 for c in LoadCollisionClass})
    #: Loads that paid the wrong-ordering collision penalty.
    collision_penalties: int = 0
    #: Dependent-uop squashes (issued before producer data existed).
    squashed_issues: int = 0
    #: Loads served by store-to-load forwarding (when enabled).
    forwarded_loads: int = 0
    #: Same-cycle accesses to one L1 bank (bank-policy runs only).
    bank_conflicts: int = 0
    #: Front-end branch accounting (mispredicts are annotation-derived
    #: unless a live branch predictor is attached).
    branches: int = 0
    branch_mispredicts: int = 0
    #: Per-cycle scheduling-window occupancy (collect_occupancy only).
    window_occupancy: Histogram = field(
        default_factory=lambda: Histogram("window_occupancy"))
    #: Per-cycle issue slots consumed (collect_occupancy only).
    issue_width_used: Histogram = field(
        default_factory=lambda: Histogram("issue_width_used"))
    #: Per-uop lifecycle records (record_timeline only); see
    #: :mod:`repro.engine.pipeview`.
    timeline: list = field(default_factory=list)
    #: uop-cycles spent waiting, by cause (collect_stall_breakdown
    #: only): "port", "operands", "ordering", "bank".
    stall_breakdown: Dict[str, int] = field(default_factory=dict)
    #: Hit-miss outcome classes (populated when an HMP is attached).
    hitmiss: HitMissStats = field(default_factory=HitMissStats)
    l1_miss_rate: float = 0.0

    @property
    def ipc(self) -> float:
        return self.retired_uops / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches

    def speedup_over(self, baseline: "SimResult") -> float:
        """Speedup of this run relative to ``baseline`` (same trace)."""
        if baseline.trace_name != self.trace_name:
            raise ValueError("speedups compare runs of the same trace")
        if not self.cycles:
            return 0.0
        # Equal retired work by construction (same trace), so the cycle
        # ratio is the speedup.
        return baseline.cycles / self.cycles

    # -- Figure 1 taxonomy fractions ----------------------------------------

    @property
    def classified_loads(self) -> int:
        return sum(self.load_classes.values())

    def class_fraction(self, cls: LoadCollisionClass) -> float:
        total = self.classified_loads
        return self.load_classes[cls] / total if total else 0.0

    @property
    def frac_not_conflicting(self) -> float:
        return self.class_fraction(LoadCollisionClass.NOT_CONFLICTING)

    @property
    def frac_actually_colliding(self) -> float:
        return (self.class_fraction(LoadCollisionClass.AC_PC)
                + self.class_fraction(LoadCollisionClass.AC_PNC))

    @property
    def frac_anc(self) -> float:
        """Conflicting but not colliding (the advanceable majority)."""
        return (self.class_fraction(LoadCollisionClass.ANC_PC)
                + self.class_fraction(LoadCollisionClass.ANC_PNC))

    def conflicting_fraction(self, cls: LoadCollisionClass) -> float:
        """Fraction of *conflicting* loads in ``cls`` (Figure 9's axis)."""
        conflicting = (self.classified_loads
                       - self.load_classes[LoadCollisionClass.NOT_CONFLICTING])
        return self.load_classes[cls] / conflicting if conflicting else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace": self.trace_name,
            "scheme": self.scheme,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "retired_uops": self.retired_uops,
            "retired_loads": self.retired_loads,
            "collision_penalties": self.collision_penalties,
            "squashed_issues": self.squashed_issues,
            "forwarded_loads": self.forwarded_loads,
            "bank_conflicts": self.bank_conflicts,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "l1_miss_rate": self.l1_miss_rate,
            "classes": {c.value: n for c, n in self.load_classes.items()},
            "hitmiss": self.hitmiss.as_dict(),
        }
