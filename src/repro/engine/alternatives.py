"""Prior-art memory ordering schemes: store sets and the store barrier.

The paper's related-work section positions the CHT against two earlier
mechanisms; implementing both lets the benchmarks test its
cost-effectiveness claim directly:

* :class:`StoreSetOrdering` — Chrysos & Emer's store sets: a load whose
  PC belongs to a store set waits for that set's last fetched store.
  Per-pair precision, but needs the SSIT+LFST tables.
* :class:`StoreBarrierOrdering` — Hesson et al.'s store barrier cache:
  a store with a violation history fences *all* younger loads.  Cheap
  but coarse — the paper's CHT is the refinement "since it deals with
  specific loads".

Both plug into the engine through the same :class:`OrderingScheme`
protocol as the paper's schemes, using the store-side hooks.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cht.barrier import StoreBarrierCache
from repro.cht.storesets import StoreSetPredictor
from repro.engine.inflight import InflightUop
from repro.engine.mob import MemoryOrderBuffer
from repro.engine.ordering import OrderingScheme


class StoreSetOrdering(OrderingScheme):
    """[Chry98] store sets as an ordering scheme."""

    name = "storesets"
    uses_cht = False

    def __init__(self, predictor: Optional[StoreSetPredictor] = None,
                 clear_interval: int = 50_000) -> None:
        self.predictor = (predictor if predictor is not None
                          else StoreSetPredictor())
        self.clear_interval = clear_interval
        self._wait_for: Dict[int, int] = {}  # load seq -> store seq
        self._store_pcs: Dict[int, int] = {}  # store seq -> pc
        self._events = 0

    # -- engine hooks ---------------------------------------------------------

    def on_rename_load(self, load: InflightUop) -> None:
        wait_seq = self.predictor.on_load_rename(load.uop.pc)
        if wait_seq is not None:
            self._wait_for[load.uop.seq] = wait_seq

    def on_rename_store(self, sta: InflightUop) -> None:
        self._store_pcs[sta.uop.seq] = sta.uop.pc
        self.predictor.on_store_rename(sta.uop.pc, sta.uop.seq)

    def on_store_data_done(self, sta_seq: int) -> None:
        pc = self._store_pcs.pop(sta_seq, None)
        if pc is not None:
            self.predictor.on_store_complete(pc, sta_seq)

    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        wait_seq = self._wait_for.get(load.uop.seq)
        if wait_seq is None:
            return True
        record = mob.store_by_seq(wait_seq)
        if record is None:
            return True  # the store retired long ago
        return record.complete(now)

    def on_retire_load(self, load: InflightUop) -> None:
        info = load.load
        assert info is not None
        self._wait_for.pop(load.uop.seq, None)
        if info.would_collide and info.collide_store_pc is not None:
            self.predictor.on_violation(load.uop.pc,
                                        info.collide_store_pc)
        self._events += 1
        if self._events >= self.clear_interval:
            self.predictor.cyclic_clear()
            self._events = 0


class StoreBarrierOrdering(OrderingScheme):
    """[Hess95] store barrier cache as an ordering scheme."""

    name = "barrier"
    uses_cht = False

    def __init__(self, cache: Optional[StoreBarrierCache] = None) -> None:
        self.cache = cache if cache is not None else StoreBarrierCache()
        self._fences: Set[int] = set()  # seqs of in-flight barrier stores
        self._store_pcs: Dict[int, int] = {}
        self._violators: Set[int] = set()  # store seqs that collided

    def on_rename_store(self, sta: InflightUop) -> None:
        self._store_pcs[sta.uop.seq] = sta.uop.pc
        if self.cache.is_barrier(sta.uop.pc):
            self._fences.add(sta.uop.seq)

    def on_store_data_done(self, sta_seq: int) -> None:
        self._fences.discard(sta_seq)
        pc = self._store_pcs.pop(sta_seq, None)
        if pc is not None:
            # "If the store did not cause a violation the counter is
            # decremented."
            self.cache.train(pc, sta_seq in self._violators)
            self._violators.discard(sta_seq)

    def may_dispatch(self, load: InflightUop, mob: MemoryOrderBuffer,
                     now: int) -> bool:
        for seq in self._fences:
            if seq >= load.uop.seq:
                continue
            record = mob.store_by_seq(seq)
            if record is not None and not record.complete(now):
                return False
        return True

    def on_retire_load(self, load: InflightUop) -> None:
        info = load.load
        assert info is not None
        if info.would_collide and info.collide_store_seq is not None:
            self._violators.add(info.collide_store_seq)
            if info.collide_store_pc is not None:
                self.cache.train(info.collide_store_pc, True)
