"""Coarse-grained switch-on-event multithreading model.

A deliberately simple in-order pipeline shared by N threads: one thread
owns the pipeline at a time; loads run through the thread's own memory
hierarchy.  The three policies differ in *when* a long-latency load
releases the pipeline:

* ``none`` — never switch: the pipeline stalls through every memory
  access (single-thread behaviour with idle co-resident threads).
* ``reactive`` — switch when a load turns out to access memory; the
  discovery costs the L2 lookup time (the miss had to reach L2 to be
  known) plus the switch penalty.
* ``predicted`` — consult a :class:`~repro.hitmiss.multilevel.MultiLevelHMP`
  at schedule time; a MEMORY prediction switches immediately, hiding
  the entire latency behind the other threads (mispredictions pay the
  wasted switch / unexpected stall).
* ``oracle`` — perfect knowledge of the level.

The model's purpose is the paper's qualitative claim: HMP-governed
switching approaches oracle switching and beats reactive switching.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.config import MemoryConfig
from repro.common.types import Uop, UopClass
from repro.hitmiss.multilevel import MemoryLevel, MultiLevelHMP
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.trace import Trace


class SwitchPolicy(enum.Enum):
    """When a long-latency load releases the shared pipeline."""

    NONE = "none"
    REACTIVE = "reactive"
    PREDICTED = "predicted"
    ORACLE = "oracle"


def make_policy(name: str) -> SwitchPolicy:
    """Parse a policy name, with a helpful error for unknown ones."""
    try:
        return SwitchPolicy(name)
    except ValueError:
        raise ValueError(f"unknown switch policy {name!r}; choose from "
                         f"{[p.value for p in SwitchPolicy]}") from None


@dataclass
class MTResult:
    """Outcome of one multithreaded run."""

    policy: str
    cycles: int = 0
    retired_uops: int = 0
    switches: int = 0
    wasted_switches: int = 0  #: switched although the load was short
    stall_cycles: int = 0  #: pipeline cycles spent waiting on memory

    @property
    def throughput(self) -> float:
        """Uops per cycle across all threads."""
        return self.retired_uops / self.cycles if self.cycles else 0.0

    def speedup_over(self, other: "MTResult") -> float:
        if not self.cycles:
            return 0.0
        return other.cycles / self.cycles


@dataclass
class _ThreadState:
    trace: Trace
    hierarchy: MemoryHierarchy
    position: int = 0
    #: Cycle at which the thread's blocking load resolves (0 = runnable).
    blocked_until: int = 0

    @property
    def finished(self) -> bool:
        return self.position >= len(self.trace.uops)


class FineGrainedMT:
    """Cycle-interleaved multithreading (the [Tull95] contrast case).

    Instead of owning the pipeline until a long event, threads rotate
    every cycle; a blocked thread simply loses its turns.  No switch
    penalty, no prediction — the throughput bound that latency-hiding
    approaches, at the cost of per-thread latency.  Included as the
    second baseline the coarse-grained policies are judged against.
    """

    def __init__(self, memory_config: Optional[MemoryConfig] = None,
                 issue_width: int = 2) -> None:
        self.memory_config = (memory_config if memory_config is not None
                              else MemoryConfig())
        self.issue_width = issue_width

    def run(self, traces: Sequence[Trace],
            max_cycles: Optional[int] = None) -> MTResult:
        """Interleave the threads cycle by cycle until all finish."""
        if not traces:
            raise ValueError("need at least one thread")
        threads = [_ThreadState(trace=t,
                                hierarchy=MemoryHierarchy(
                                    self.memory_config))
                   for t in traces]
        result = MTResult(policy="fine-grained")
        ceiling = (max_cycles if max_cycles is not None else
                   200 * sum(len(t.uops) for t in traces) + 10_000)
        mem = self.memory_config
        now = 0
        current = -1
        while any(not t.finished for t in threads):
            if now > ceiling:
                raise RuntimeError("multithreaded run exceeded its "
                                   "cycle ceiling")
            # Rotate to the next runnable thread; stall if none.
            runnable = [i for i, t in enumerate(threads)
                        if not t.finished and t.blocked_until <= now]
            if not runnable:
                wake = min(t.blocked_until for t in threads
                           if not t.finished)
                result.stall_cycles += wake - now
                now = wake
                continue
            current = next(i for i in runnable
                           if i > current % len(threads)) \
                if any(i > current % len(threads) for i in runnable) \
                else runnable[0]
            thread = threads[current]
            # One cycle's worth of issue for this thread.
            issued = 0
            while issued < self.issue_width and not thread.finished:
                uop = thread.trace.uops[thread.position]
                thread.position += 1
                result.retired_uops += 1
                issued += 1
                if uop.uclass == UopClass.LOAD:
                    assert uop.mem is not None
                    outcome = thread.hierarchy.load(uop.mem.address, now)
                    if outcome.latency > mem.l1_latency:
                        # The thread sits out the fill; others run.
                        thread.blocked_until = now + outcome.latency
                        result.switches += 1
                        break
            now += 1
        result.cycles = now
        return result


class CoarseGrainedMT:
    """Round-robin switch-on-event execution of several traces.

    Parameters
    ----------
    policy:
        When to release the pipeline on long loads.
    issue_width:
        Non-memory uops retired per cycle while a thread owns the pipe.
    switch_penalty:
        Pipeline bubble paid on every context switch.
    hmp_factory:
        Builds the per-run level predictor for the ``predicted`` policy.
    """

    def __init__(self, policy: SwitchPolicy = SwitchPolicy.PREDICTED,
                 memory_config: Optional[MemoryConfig] = None,
                 issue_width: int = 2, switch_penalty: int = 6,
                 discovery_penalty: int = 8,
                 hmp_factory: Callable[[], MultiLevelHMP] = MultiLevelHMP
                 ) -> None:
        self.policy = policy
        self.memory_config = (memory_config if memory_config is not None
                              else MemoryConfig())
        self.issue_width = issue_width
        self.switch_penalty = switch_penalty
        #: Extra cost of a *reactive* switch: by the time the L2 lookup
        #: reveals the miss, dependent work is in flight and must be
        #: squashed before the context can change.  Predicted and
        #: oracle switches happen at schedule time and avoid it.
        self.discovery_penalty = discovery_penalty
        self.hmp_factory = hmp_factory

    def run(self, traces: Sequence[Trace],
            max_cycles: Optional[int] = None) -> MTResult:
        if not traces:
            raise ValueError("need at least one thread")
        threads = [_ThreadState(trace=t,
                                hierarchy=MemoryHierarchy(
                                    self.memory_config))
                   for t in traces]
        hmp = self.hmp_factory()
        result = MTResult(policy=self.policy.value)
        ceiling = (max_cycles if max_cycles is not None else
                   200 * sum(len(t.uops) for t in traces) + 10_000)

        current = 0
        now = 0
        while any(not t.finished for t in threads):
            if now > ceiling:
                raise RuntimeError("multithreaded run exceeded its "
                                   "cycle ceiling")
            thread = threads[current]
            if thread.finished or thread.blocked_until > now:
                # Pick the next runnable thread (round robin), or stall.
                runnable = self._next_runnable(threads, current, now)
                if runnable is None:
                    # All blocked: advance to the earliest wakeup.
                    wake = min(t.blocked_until for t in threads
                               if not t.finished)
                    result.stall_cycles += wake - now
                    now = wake
                    continue
                if runnable != current:
                    current = runnable
                    now += self.switch_penalty
                    result.switches += 1
                thread = threads[current]

            now = self._run_burst(thread, hmp, now, result)

        result.cycles = now
        return result

    # ------------------------------------------------------------------

    def _next_runnable(self, threads: List[_ThreadState], current: int,
                       now: int) -> Optional[int]:
        n = len(threads)
        for offset in range(n):
            idx = (current + offset) % n
            t = threads[idx]
            if not t.finished and t.blocked_until <= now:
                return idx
        return None

    def _run_burst(self, thread: _ThreadState, hmp: MultiLevelHMP,
                   now: int, result: MTResult) -> int:
        """Execute uops until the thread blocks, yields, or finishes."""
        mem = self.memory_config
        issued_this_cycle = 0
        while not thread.finished:
            uop = thread.trace.uops[thread.position]
            if uop.uclass != UopClass.LOAD:
                thread.position += 1
                result.retired_uops += 1
                issued_this_cycle += 1
                if issued_this_cycle >= self.issue_width:
                    now += 1
                    issued_this_cycle = 0
                continue

            # A load: decide whether to switch before/after executing it.
            assert uop.mem is not None
            line = uop.mem.address // mem.l1d.line_bytes
            predicted = hmp.predict_level(uop.pc, line, now)
            outcome = thread.hierarchy.load(uop.mem.address, now)
            actual = MemoryLevel.of(outcome)
            hmp.l1.update(uop.pc, outcome.l1_hit, line, now)
            if not outcome.l1_hit:
                hmp.l2.update(uop.pc, outcome.l2_hit, line, now)
            hmp.stats.record(actual, predicted)
            thread.position += 1
            result.retired_uops += 1

            long_actual = actual == MemoryLevel.MEMORY
            if self.policy == SwitchPolicy.NONE:
                should_switch = False
                known_at = now  # irrelevant
            elif self.policy == SwitchPolicy.ORACLE:
                should_switch = long_actual
                known_at = now  # the oracle knows at schedule time
            elif self.policy == SwitchPolicy.PREDICTED:
                # A MEMORY prediction switches immediately; a missed
                # prediction is still caught reactively when the L2
                # lookup comes back empty (prediction accelerates the
                # switch, discovery backstops it).
                if predicted == MemoryLevel.MEMORY:
                    should_switch = True
                    known_at = now
                else:
                    should_switch = long_actual
                    known_at = (now + mem.l2_latency
                                + self.discovery_penalty)
            else:  # REACTIVE: the miss is discovered at the L2 lookup
                should_switch = long_actual
                known_at = (now + mem.l2_latency
                            + self.discovery_penalty)

            if should_switch:
                if not long_actual:
                    result.wasted_switches += 1
                # Release the pipe; the load completes in the background.
                thread.blocked_until = now + outcome.latency
                return max(now, known_at)

            # No switch: the pipeline absorbs the load latency inline
            # (short latencies pipeline; long ones stall).
            if outcome.latency > mem.l1_latency:
                stall = outcome.latency - mem.l1_latency
                result.stall_cycles += stall
                now += stall
            issued_this_cycle += 1
            if issued_this_cycle >= self.issue_width:
                now += 1
                issued_this_cycle = 0
        return now
