"""Switch-on-miss multithreading (the paper's stated HMP application).

Section 2.2: "Another concept in computer architecture that may benefit
from hit-miss prediction is multi threading [Tull95].  Here, the
prediction may be used to govern a thread switch if a load is predicted
to miss the L2 cache, and suffer the large latency of accessing main
memory."

This package implements a coarse-grained multithreaded core that
switches contexts on long-latency events, with the switch trigger
pluggable: reactive (switch when the miss is *discovered*), predictive
(switch at *schedule* time on a MultiLevelHMP MEMORY prediction — the
paper's proposal), or oracle.
"""

from repro.smt.coarse import (
    CoarseGrainedMT,
    FineGrainedMT,
    MTResult,
    SwitchPolicy,
    make_policy,
)

__all__ = [
    "CoarseGrainedMT",
    "FineGrainedMT",
    "MTResult",
    "SwitchPolicy",
    "make_policy",
]
