"""repro — reproduction of "Speculation Techniques for Improving Load
Related Instruction Scheduling" (Yoaz, Erez, Ronen & Jourdan, ISCA 1999).

The package implements the paper's three techniques and everything they
run on:

* :mod:`repro.cht` — Collision History Tables for speculative memory
  disambiguation (inclusive & exclusive collision predictors);
* :mod:`repro.hitmiss` — data-cache hit-miss predictors (local, hybrid
  with majority chooser, timing-enhanced);
* :mod:`repro.bank` — cache-bank predictors and the sliced-pipeline
  analysis;
* :mod:`repro.engine` — the trace-driven out-of-order core of section 3
  with the six memory ordering schemes;
* :mod:`repro.trace` — synthetic workloads standing in for the paper's
  proprietary trace groups;
* :mod:`repro.predictors` / :mod:`repro.memory` / :mod:`repro.common`
  — the branch-predictor, cache and utility substrates;
* :mod:`repro.experiments` — one harness per paper figure
  (``python -m repro.experiments --help``);
* :mod:`repro.api` — the unified :class:`~repro.api.PredictorSpec`
  construction registry for every predictor family;
* :mod:`repro.serve` — an async micro-batching prediction service over
  sharded sessions (``python -m repro.serve --help``).

Quickstart::

    from repro import build_trace, profile_for, Machine, make_scheme

    trace = build_trace(profile_for("gcc"), n_uops=20_000, seed=1)
    baseline = Machine(scheme=make_scheme("traditional")).run(trace)
    inclusive = Machine(scheme=make_scheme("inclusive")).run(trace)
    print(inclusive.speedup_over(baseline))
"""

from repro.common.config import (
    BASELINE_MACHINE,
    CacheConfig,
    ExecUnitConfig,
    LatencyConfig,
    MachineConfig,
    MemoryConfig,
)
from repro.common.types import HitMissClass, LoadCollisionClass, Uop, UopClass
from repro.trace import (
    Trace,
    TRACE_GROUPS,
    build_trace,
    profile_for,
    summarize,
)
from repro.engine import Machine, SimResult, make_scheme, SCHEME_NAMES
from repro.cht import (
    CombinedCHT,
    FullCHT,
    PeriodicClearing,
    TaggedOnlyCHT,
    TaglessCHT,
)
from repro.hitmiss import (
    AlwaysHitHMP,
    HybridHMP,
    LocalHMP,
    OracleHMP,
    TimingHMP,
)
from repro.bank import (
    AddressBankPredictor,
    make_predictor_a,
    make_predictor_b,
    make_predictor_c,
    metric,
)
from repro.fastpath import (
    default_backend,
    set_default_backend,
    use_backend,
)

__version__ = "1.0.0"

from repro.api import (  # noqa: E402 - needs __version__ for cache keys
    PredictorSpec,
    build_predictor,
    spec_for,
)

__all__ = [
    "PredictorSpec",
    "build_predictor",
    "spec_for",
    "BASELINE_MACHINE",
    "CacheConfig",
    "ExecUnitConfig",
    "LatencyConfig",
    "MachineConfig",
    "MemoryConfig",
    "HitMissClass",
    "LoadCollisionClass",
    "Uop",
    "UopClass",
    "Trace",
    "TRACE_GROUPS",
    "build_trace",
    "profile_for",
    "summarize",
    "Machine",
    "SimResult",
    "make_scheme",
    "SCHEME_NAMES",
    "CombinedCHT",
    "FullCHT",
    "PeriodicClearing",
    "TaggedOnlyCHT",
    "TaglessCHT",
    "AlwaysHitHMP",
    "HybridHMP",
    "LocalHMP",
    "OracleHMP",
    "TimingHMP",
    "AddressBankPredictor",
    "make_predictor_a",
    "make_predictor_b",
    "make_predictor_c",
    "metric",
    "default_backend",
    "set_default_backend",
    "use_backend",
    "__version__",
]
