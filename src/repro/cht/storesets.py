"""Store-sets memory dependence prediction (Chrysos & Emer, ISCA 1998).

The paper positions its CHT against store sets: "Their mechanism uses
two tables, one for associating loads and stores into sets and the
other to track the use of these store sets.  After receiving its set ID
the load checks when the last store of that set was dispatched and
executes appropriately."  The CHT claims to be "much more cost
effective"; this implementation lets the repository test that claim.

Structures (after [Chry98]):

* **SSIT** — Store Set ID Table, PC-indexed, maps loads *and* stores to
  store-set IDs.  On a memory-order violation the (load, store) pair is
  merged into one set.
* **LFST** — Last Fetched Store Table, set-indexed, tracks the most
  recent in-flight store of each set.

A load whose PC maps to a valid set must wait for the set's last
fetched store to complete; stores update the LFST as they are renamed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common import bits


class StoreSetPredictor:
    """SSIT + LFST in their textbook form.

    The engine drives it through four events: ``on_load_rename`` /
    ``on_store_rename`` (returns and updates dependences),
    ``on_store_complete`` (clears the LFST entry), and
    ``on_violation`` (set assignment/merge, the training rule).
    ``cyclic_clear`` implements the periodic invalidation [Chry98]
    recommends for recovering from stale assignments.
    """

    INVALID = -1

    def __init__(self, ssit_entries: int = 4096,
                 lfst_entries: int = 1024) -> None:
        bits.ilog2(ssit_entries)
        bits.ilog2(lfst_entries)
        self.ssit_entries = ssit_entries
        self.lfst_entries = lfst_entries
        self._ssit: List[int] = [self.INVALID] * ssit_entries
        #: set id -> seq of the last fetched, still-incomplete store.
        self._lfst: Dict[int, int] = {}
        self._next_set = 0

    def _index(self, pc: int) -> int:
        return bits.pc_index(pc, self.ssit_entries)

    def set_of(self, pc: int) -> int:
        return self._ssit[self._index(pc)]

    # -- rename-time events --------------------------------------------------

    def on_load_rename(self, pc: int) -> Optional[int]:
        """Returns the store seq this load must wait for, if any."""
        set_id = self.set_of(pc)
        if set_id == self.INVALID:
            return None
        return self._lfst.get(set_id)

    def on_store_rename(self, pc: int, seq: int) -> Optional[int]:
        """Record the store in its set's LFST.

        Returns the *previous* last store of the set: [Chry98] also
        serialises same-set stores (store-store ordering), which the
        engine may honour or ignore.
        """
        set_id = self.set_of(pc)
        if set_id == self.INVALID:
            return None
        previous = self._lfst.get(set_id)
        self._lfst[set_id] = seq
        return previous

    def on_store_complete(self, pc: int, seq: int) -> None:
        """Clear the LFST entry if this store is still its set's last."""
        set_id = self.set_of(pc)
        if set_id != self.INVALID and self._lfst.get(set_id) == seq:
            del self._lfst[set_id]

    # -- training -------------------------------------------------------------

    def on_violation(self, load_pc: int, store_pc: int) -> None:
        """Assign/merge the pair into one store set.

        The [Chry98] rules: neither has a set → create one; one has a
        set → the other joins it; both have sets → merge into the
        smaller-numbered set (we adopt the store's).
        """
        load_idx = self._index(load_pc)
        store_idx = self._index(store_pc)
        load_set = self._ssit[load_idx]
        store_set = self._ssit[store_idx]
        if load_set == self.INVALID and store_set == self.INVALID:
            set_id = self._alloc_set()
            self._ssit[load_idx] = set_id
            self._ssit[store_idx] = set_id
        elif load_set == self.INVALID:
            self._ssit[load_idx] = store_set
        elif store_set == self.INVALID:
            self._ssit[store_idx] = load_set
        else:
            winner = min(load_set, store_set)
            self._ssit[load_idx] = winner
            self._ssit[store_idx] = winner

    def _alloc_set(self) -> int:
        set_id = self._next_set
        self._next_set = (self._next_set + 1) % self.lfst_entries
        return set_id

    def cyclic_clear(self) -> None:
        self._ssit = [self.INVALID] * self.ssit_entries
        self._lfst.clear()

    @property
    def storage_bits(self) -> int:
        set_bits = bits.ilog2(self.lfst_entries)
        # SSIT entries hold a set id (+valid); LFST holds an inum tag.
        return (self.ssit_entries * (set_bits + 1)
                + self.lfst_entries * 16)

    def __repr__(self) -> str:
        return (f"StoreSetPredictor(ssit={self.ssit_entries}, "
                f"lfst={self.lfst_entries})")
