"""Opcode-annotated collision hints (trace-cache storage).

Section 2.1's alternative to dedicated tables: "include the run-time
disambiguation information along with the load instruction op-code
(annotated in the instruction or trace cache) saving the area and
complexity of separate tables.  Storing disambiguation hints within the
trace cache may also improve the disambiguation quality by allowing
different behaviors for the same load instruction based on execution
path."

:class:`AnnotatedCHT` models that storage: capacity follows the
instruction/trace cache (entries are evicted with their cache lines,
approximated by an LRU bound on distinct static loads), and an optional
*path hash* folds recent branch history into the key so one static load
can hold different hints on different paths.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.common import bits
from repro.cht.base import (
    CollisionPrediction,
    CollisionPredictor,
    NOT_COLLIDING,
)
from repro.predictors.counters import SaturatingCounter


class AnnotatedCHT(CollisionPredictor):
    """Per-(load, path) collision hints stored with the instruction.

    Parameters
    ----------
    capacity:
        Distinct (pc, path) entries the instruction/trace cache can
        annotate (LRU beyond it — the hint is lost with the line).
    path_bits:
        Width of the path signature mixed into the key; 0 disables path
        sensitivity (plain instruction-cache annotation).
    counter_bits:
        Per-annotation predictor state (1 = the paper's single bit).
    """

    def __init__(self, capacity: int = 4096, path_bits: int = 0,
                 counter_bits: int = 1,
                 track_distance: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.path_bits = path_bits
        self.counter_bits = counter_bits
        self.track_distance = track_distance
        self._path_history = 0
        self._entries: "OrderedDict[Tuple[int, int], SaturatingCounter]" = \
            OrderedDict()
        self._distances: dict = {}

    # -- path signature --------------------------------------------------------

    def observe_branch(self, taken: bool) -> None:
        """Fold a branch outcome into the path signature (trace cache
        path sensitivity).  No-op when ``path_bits`` is 0."""
        if self.path_bits:
            self._path_history = bits.shift_history(
                self._path_history, taken, self.path_bits)

    def _key(self, pc: int) -> Tuple[int, int]:
        return (pc, self._path_history if self.path_bits else 0)

    # -- CollisionPredictor protocol -------------------------------------------

    def lookup(self, pc: int) -> CollisionPrediction:
        key = self._key(pc)
        cell = self._entries.get(key)
        if cell is None or not cell.prediction:
            return NOT_COLLIDING
        distance = self._distances.get(key) if self.track_distance else None
        return CollisionPrediction(colliding=True, distance=distance)

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        key = self._key(pc)
        cell = self._entries.get(key)
        if cell is None:
            if not collided:
                return  # annotate only loads that collide
            cell = SaturatingCounter(self.counter_bits)
            self._entries[key] = cell
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._distances.pop(evicted, None)
        else:
            self._entries.move_to_end(key)
        cell.train(collided)
        if collided and distance is not None:
            current = self._distances.get(key)
            if current is None or distance < current:
                self._distances[key] = distance

    def clear(self) -> None:
        self._entries.clear()
        self._distances.clear()
        self._path_history = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def storage_bits(self) -> int:
        # The hint bits ride in existing cache lines; cost is the
        # per-line annotation, not a separate table.
        distance_bits = 6 if self.track_distance else 0
        return self.capacity * (self.counter_bits + distance_bits)

    def __repr__(self) -> str:
        return (f"AnnotatedCHT(capacity={self.capacity}, "
                f"path_bits={self.path_bits})")
