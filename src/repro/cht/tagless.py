"""Tagless CHT: direct-mapped 1-bit counters, indexed by PC bits.

"Its small entry size allows for many entries, but it suffers from
interference (aliasing)" — Figure 9 shows its accuracy improving
steadily from 2K to 32K entries as aliasing drops.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common import bits
from repro.cht.base import (
    CollisionPrediction,
    CollisionPredictor,
    NOT_COLLIDING,
)
from repro.fastpath.backend import resolve_backend
from repro.predictors.counters import SaturatingCounter


class TaglessCHT(CollisionPredictor):
    """Direct-mapped counter array with optional distance sidecar.

    ``backend`` selects the replay fast path (``repro.fastpath``); the
    scalar ``lookup``/``train`` API is identical on both backends.
    """

    def __init__(self, n_entries: int = 4096, counter_bits: int = 1,
                 track_distance: bool = False,
                 backend: str | None = None) -> None:
        bits.ilog2(n_entries)
        self.backend = resolve_backend(backend)
        self.n_entries = n_entries
        self.counter_bits = counter_bits
        self.track_distance = track_distance
        self._counters: List[SaturatingCounter] = [
            SaturatingCounter(counter_bits) for _ in range(n_entries)
        ]
        self._distances: List[Optional[int]] = [None] * n_entries

    def _index(self, pc: int) -> int:
        return bits.pc_index(pc, self.n_entries)

    def lookup(self, pc: int) -> CollisionPrediction:
        index = self._index(pc)
        if not self._counters[index].prediction:
            return NOT_COLLIDING
        distance = self._distances[index] if self.track_distance else None
        return CollisionPrediction(colliding=True, distance=distance)

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        index = self._index(pc)
        self._counters[index].train(collided)
        if collided and distance is not None:
            current = self._distances[index]
            if current is None or distance < current:
                self._distances[index] = distance
        elif not self._counters[index].prediction:
            self._distances[index] = None

    def clear(self) -> None:
        for counter in self._counters:
            counter.reset()
        self._distances = [None] * self.n_entries

    @property
    def storage_bits(self) -> int:
        distance_bits = 6 if self.track_distance else 0
        return self.n_entries * (self.counter_bits + distance_bits)

    def __repr__(self) -> str:
        return (f"TaglessCHT(entries={self.n_entries}, "
                f"bits={self.counter_bits})")
