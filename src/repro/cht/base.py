"""Collision-predictor protocol and the shared tagged-table machinery."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

from repro.common import bits


@dataclass(frozen=True)
class CollisionPrediction:
    """Answer to "will this load collide?".

    Attributes
    ----------
    colliding:
        The binary prediction.  A colliding load is held back by the
        ordering scheme; a non-colliding load may be advanced past the
        stores in the scheduling window.
    distance:
        For exclusive predictors: the minimal store distance at which
        the load has been seen to collide.  The load may safely bypass
        the ``distance - 1`` nearest older stores but must wait for all
        stores at or beyond ``distance``.  ``None`` means inclusive
        behaviour (wait for every older store).
    """

    colliding: bool
    distance: Optional[int] = None

    def __post_init__(self) -> None:
        if self.distance is not None and self.distance < 1:
            raise ValueError("collision distance counts stores, minimum 1")


NOT_COLLIDING = CollisionPrediction(colliding=False)


class CollisionPredictor(abc.ABC):
    """Interface consumed by the memory ordering schemes."""

    #: Optional :class:`repro.obs.events.EventBus`; when attached,
    #: :meth:`observed_train` reports every training step.
    obs = None

    @abc.abstractmethod
    def lookup(self, pc: int) -> CollisionPrediction:
        """Predict the collision behaviour of the load at ``pc``.

        Called when the load appears in the instruction stream, before
        scheduling (step 1 of the section 2.1 protocol).
        """

    @abc.abstractmethod
    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        """Learn the load's resolved behaviour at retirement (step 4).

        ``distance`` is the dynamic store distance of the actual
        collision (1 = nearest older store), when one occurred.
        """

    def observed_train(self, pc: int, collided: bool,
                       distance: Optional[int] = None,
                       now: int = -1) -> None:
        """:meth:`train`, plus a ``predictor-update`` event when an
        event bus is attached (the ordering schemes' hook point)."""
        self.train(pc, collided, distance)
        if self.obs is not None:
            self.obs.emit("predictor-update", now, pc=pc, family="cht",
                          predictor=type(self).__name__,
                          outcome=collided, distance=distance)

    def clear(self) -> None:
        """Wholesale invalidation (cyclic clearing support)."""
        raise NotImplementedError

    @property
    def storage_bits(self) -> int:
        """Approximate hardware budget in bits."""
        raise NotImplementedError


class NeverCollides(CollisionPredictor):
    """Degenerate predictor of the Opportunistic scheme (scheme II)."""

    def lookup(self, pc: int) -> CollisionPrediction:
        return NOT_COLLIDING

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        pass

    def clear(self) -> None:
        pass

    @property
    def storage_bits(self) -> int:
        return 0


class AlwaysCollides(CollisionPredictor):
    """Degenerate predictor recovering fully conservative ordering."""

    def lookup(self, pc: int) -> CollisionPrediction:
        return CollisionPrediction(colliding=True)

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        pass

    def clear(self) -> None:
        pass

    @property
    def storage_bits(self) -> int:
        return 0


V = TypeVar("V")


class TaggedSetAssocTable(Generic[V]):
    """An n-way set-associative, LRU-replaced table keyed by PC.

    The CHT "is organised as a cache" (section 2.1); this generic table
    provides the lookup/allocate/invalidate mechanics for the tagged
    organisations.  Values are per-entry predictor state.
    """

    def __init__(self, n_entries: int, ways: int, tag_bits: int = 16) -> None:
        if n_entries % ways:
            raise ValueError("entries must divide evenly into ways")
        self.n_entries = n_entries
        self.ways = ways
        self.n_sets = n_entries // ways
        bits.ilog2(self.n_sets)
        self.tag_bits = tag_bits
        # Each set: list of (tag, value), most recently used first.
        self._sets: List[List[Tuple[int, V]]] = [
            [] for _ in range(self.n_sets)
        ]

    def _locate(self, pc: int) -> Tuple[int, int]:
        index = bits.pc_index(pc, self.n_sets)
        tag = bits.fold(pc >> 2, self.tag_bits)
        return index, tag

    def get(self, pc: int, touch: bool = True) -> Optional[V]:
        index, tag = self._locate(pc)
        entries = self._sets[index]
        for pos, (entry_tag, value) in enumerate(entries):
            if entry_tag == tag:
                if touch and pos:
                    entries.insert(0, entries.pop(pos))
                return value
        return None

    def put(self, pc: int, value: V) -> Optional[V]:
        """Insert/overwrite; returns an evicted value, if any."""
        index, tag = self._locate(pc)
        entries = self._sets[index]
        for pos, (entry_tag, _) in enumerate(entries):
            if entry_tag == tag:
                entries.pop(pos)
                entries.insert(0, (tag, value))
                return None
        evicted = None
        if len(entries) >= self.ways:
            evicted = entries.pop()[1]
        entries.insert(0, (tag, value))
        return evicted

    def invalidate(self, pc: int) -> bool:
        index, tag = self._locate(pc)
        entries = self._sets[index]
        for pos, (entry_tag, _) in enumerate(entries):
            if entry_tag == tag:
                entries.pop(pos)
                return True
        return False

    def clear(self) -> None:
        for entries in self._sets:
            entries.clear()

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)
