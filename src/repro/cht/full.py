"""Full CHT: tagged, set-associative, counter-based, optional distance.

Figure 7's headline results use "2K entries of a 2-bit saturating counter
Full-CHT, organised as a 4-way set associative table (a new entry is
allocated only after a load actually collides)".  Because entries carry a
real counter, a load whose behaviour changes from colliding back to
non-colliding can be unlearned — the property that keeps the Full CHT's
ANC-PC rate the lowest of the four organisations (Figure 9).
"""

from __future__ import annotations

from typing import Optional

from repro.cht.base import (
    CollisionPrediction,
    CollisionPredictor,
    NOT_COLLIDING,
    TaggedSetAssocTable,
)
from repro.predictors.counters import SaturatingCounter


class _FullEntry:
    """Counter plus (for the exclusive variant) the minimal distance."""

    __slots__ = ("counter", "min_distance")

    def __init__(self, counter_bits: int) -> None:
        self.counter = SaturatingCounter(counter_bits,
                                         initial=(1 << counter_bits) - 1)
        self.min_distance: Optional[int] = None

    def observe_distance(self, distance: Optional[int]) -> None:
        if distance is None:
            return
        if self.min_distance is None or distance < self.min_distance:
            self.min_distance = distance


class FullCHT(CollisionPredictor):
    """The tagged counter-based CHT.

    Parameters
    ----------
    n_entries / ways:
        Table geometry (default: the paper's 2K, 4-way).
    counter_bits:
        Width of the per-entry saturating counter (default 2).
    track_distance:
        Enable the exclusive predictor's distance annotation.
    invalidate_on_noncolliding:
        Drop an entry once its counter fully decays to non-colliding —
        the allocation/invalidation policy example of section 2.1.
    """

    def __init__(self, n_entries: int = 2048, ways: int = 4,
                 counter_bits: int = 2, track_distance: bool = False,
                 invalidate_on_noncolliding: bool = True,
                 tag_bits: int = 16) -> None:
        self.counter_bits = counter_bits
        self.track_distance = track_distance
        self.invalidate_on_noncolliding = invalidate_on_noncolliding
        self._table: TaggedSetAssocTable[_FullEntry] = TaggedSetAssocTable(
            n_entries, ways, tag_bits)

    def lookup(self, pc: int) -> CollisionPrediction:
        entry = self._table.get(pc)
        if entry is None or not entry.counter.prediction:
            return NOT_COLLIDING
        distance = entry.min_distance if self.track_distance else None
        return CollisionPrediction(colliding=True, distance=distance)

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        entry = self._table.get(pc)
        if entry is None:
            if collided:
                # Allocate only on an actual collision — keeps the table
                # populated by the loads that matter.
                entry = _FullEntry(self.counter_bits)
                entry.observe_distance(distance)
                self._table.put(pc, entry)
            return
        entry.counter.train(collided)
        if collided:
            entry.observe_distance(distance)
        elif (self.invalidate_on_noncolliding
              and not entry.counter.prediction
              and entry.counter.value == 0):
            self._table.invalidate(pc)

    def clear(self) -> None:
        self._table.clear()

    @property
    def storage_bits(self) -> int:
        distance_bits = 6 if self.track_distance else 0
        per_entry = self._table.tag_bits + self.counter_bits + distance_bits
        return self._table.n_entries * per_entry

    def __repr__(self) -> str:
        return (f"FullCHT(entries={self._table.n_entries}, "
                f"ways={self._table.ways}, bits={self.counter_bits}, "
                f"distance={self.track_distance})")
