"""Collision History Tables — the paper's memory dependence predictor.

Section 2.1: instead of predicting load-store *pairs* (Moshovos/Sohi) or
store *sets* (Chrysos/Emer), the CHT predicts a single bit per load —
will this load collide with *any* older, not-yet-executed store in the
scheduling window?  The exclusive variant adds a minimal collision
distance so a colliding load can still bypass the stores nearer than its
colliding store.

Four practical organisations (Figure 2 / Figure 9):

* :class:`FullCHT` — tagged, set-associative, n-bit counters, optional
  distance; allocate-on-first-collision.
* :class:`TaglessCHT` — direct-mapped 1-bit counters, no tags; many
  entries, suffers aliasing.
* :class:`TaggedOnlyCHT` — tags only; presence in the table *is* the
  (sticky) colliding prediction — a 0-bit predictor.
* :class:`CombinedCHT` — tagged-only + tagless; predicts non-colliding
  only when both agree (minimises AC-PNC).

All share the :class:`CollisionPredictor` protocol the ordering schemes
consume, and all can be wrapped in :class:`PeriodicClearing` ([Chry98]'s
cyclic clearing) to let sticky predictions age out.
"""

from repro.cht.base import (
    CollisionPredictor,
    CollisionPrediction,
    NeverCollides,
    AlwaysCollides,
)
from repro.cht.full import FullCHT
from repro.cht.tagless import TaglessCHT
from repro.cht.tagged import TaggedOnlyCHT
from repro.cht.combined import CombinedCHT
from repro.cht.clearing import PeriodicClearing
from repro.cht.storesets import StoreSetPredictor
from repro.cht.barrier import StoreBarrierCache
from repro.cht.annotated import AnnotatedCHT

__all__ = [
    "CollisionPredictor",
    "CollisionPrediction",
    "NeverCollides",
    "AlwaysCollides",
    "FullCHT",
    "TaglessCHT",
    "TaggedOnlyCHT",
    "CombinedCHT",
    "PeriodicClearing",
    "StoreSetPredictor",
    "StoreBarrierCache",
    "AnnotatedCHT",
]
