"""Combined implicit-predictor + tagless CHT.

Section 2.1: "uses the Implicit-predictor outcome when the tag matches
and the Tagless result otherwise (predict a load as non-colliding only
when there is no tag match in the Tag-only CHT and the Tagless state is
non-colliding).  This configuration tries to maximize the number of
AC-PC."  An alternative composition mode ("either") predicts colliding
only when *both* tables agree, for machines where maximising ANC-PNC
matters more.
"""

from __future__ import annotations

from typing import Optional

from repro.cht.base import CollisionPrediction, CollisionPredictor
from repro.cht.tagged import TaggedOnlyCHT
from repro.cht.tagless import TaglessCHT


class CombinedCHT(CollisionPredictor):
    """Tag-only table backed by a larger tagless table.

    Parameters
    ----------
    tagged_entries / ways:
        Geometry of the tag-only component (sized like the paper's
        128..2K sweep).
    tagless_entries:
        Geometry of the tagless component (the paper pairs a 4K tagless
        table with the swept tag-only table).
    mode:
        ``"safe"`` — predict non-colliding only when both components
        say non-colliding (maximise AC-PC; the default, matching the
        Figure 9 configuration).
        ``"aggressive"`` — predict colliding only when both components
        say colliding (maximise ANC-PNC).
    """

    MODES = ("safe", "aggressive")

    def __init__(self, tagged_entries: int = 2048, ways: int = 4,
                 tagless_entries: int = 4096, mode: str = "safe",
                 track_distance: bool = False) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.track_distance = track_distance
        self.tagged = TaggedOnlyCHT(tagged_entries, ways,
                                    track_distance=track_distance)
        self.tagless = TaglessCHT(tagless_entries,
                                  track_distance=track_distance)

    def lookup(self, pc: int) -> CollisionPrediction:
        tagged_p = self.tagged.lookup(pc)
        tagless_p = self.tagless.lookup(pc)
        if self.mode == "safe":
            colliding = tagged_p.colliding or tagless_p.colliding
        else:
            colliding = tagged_p.colliding and tagless_p.colliding
        if not colliding:
            return CollisionPrediction(colliding=False)
        distance: Optional[int] = None
        if self.track_distance:
            candidates = [p.distance for p in (tagged_p, tagless_p)
                          if p.colliding and p.distance is not None]
            distance = min(candidates) if candidates else None
        return CollisionPrediction(colliding=True, distance=distance)

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        self.tagged.train(pc, collided, distance)
        self.tagless.train(pc, collided, distance)

    def clear(self) -> None:
        self.tagged.clear()
        self.tagless.clear()

    @property
    def storage_bits(self) -> int:
        return self.tagged.storage_bits + self.tagless.storage_bits

    def __repr__(self) -> str:
        return f"CombinedCHT(mode={self.mode})"
