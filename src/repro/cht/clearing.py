"""Cyclic clearing wrapper.

Sticky predictors cannot unlearn; section 2.1 notes (after [Chry98])
that "the table may be cleared occasionally to provide for behaviour
changes".  This wrapper clears the wrapped predictor every
``interval`` training events — the model's proxy for "once every
several million instructions".
"""

from __future__ import annotations

from typing import Optional

from repro.cht.base import CollisionPrediction, CollisionPredictor


class PeriodicClearing(CollisionPredictor):
    """Clear the wrapped predictor every ``interval`` retirements."""

    def __init__(self, inner: CollisionPredictor, interval: int) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        self.inner = inner
        self.interval = interval
        self._since_clear = 0
        self.clear_count = 0

    def lookup(self, pc: int) -> CollisionPrediction:
        return self.inner.lookup(pc)

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        self.inner.train(pc, collided, distance)
        self._since_clear += 1
        if self._since_clear >= self.interval:
            self.inner.clear()
            self._since_clear = 0
            self.clear_count += 1

    def clear(self) -> None:
        self.inner.clear()
        self._since_clear = 0

    @property
    def storage_bits(self) -> int:
        return self.inner.storage_bits

    def __repr__(self) -> str:
        return f"PeriodicClearing({self.inner!r}, every={self.interval})"
