"""Store Barrier Cache (Hesson, LeBlanc & Ciavaglia, 1995).

The other industrial baseline the paper discusses: "each store that
caused an ordering violation increments a saturating counter in the
barrier cache.  At fetch time of a store, the barrier cache is queried
and if the counter is set all following loads are delayed until after
the store is executed.  If the store did not cause a violation the
counter is decremented."

Note the granularity contrast the paper draws: the barrier is keyed by
*store* PC and blocks *all* younger loads, whereas the CHT is keyed by
load PC and delays only the predicted-colliding loads.
"""

from __future__ import annotations

from typing import List

from repro.common import bits
from repro.predictors.counters import SaturatingCounter


class StoreBarrierCache:
    """PC-indexed saturating counters over store violation history."""

    def __init__(self, n_entries: int = 2048, counter_bits: int = 2) -> None:
        bits.ilog2(n_entries)
        self.n_entries = n_entries
        self.counter_bits = counter_bits
        self._table: List[SaturatingCounter] = [
            SaturatingCounter(counter_bits) for _ in range(n_entries)
        ]

    def _index(self, pc: int) -> int:
        return bits.pc_index(pc, self.n_entries)

    def is_barrier(self, store_pc: int) -> bool:
        """Queried at store fetch: should younger loads be fenced?"""
        return self._table[self._index(store_pc)].prediction

    def train(self, store_pc: int, caused_violation: bool) -> None:
        """Increment on violation, decrement on clean completion."""
        self._table[self._index(store_pc)].train(caused_violation)

    def clear(self) -> None:
        for counter in self._table:
            counter.reset()

    @property
    def storage_bits(self) -> int:
        return self.n_entries * self.counter_bits

    def __repr__(self) -> str:
        return f"StoreBarrierCache(entries={self.n_entries})"
