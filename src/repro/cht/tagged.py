"""Implicit-predictor (tag-only) CHT.

"Uses tags only and implicitly marks each entry as colliding ... Such a
CHT contains only colliding loads.  Being sticky, this predictor is good
at reducing the number of actually-colliding loads predicted as
non-colliding" (section 2.1).  A hit in the table *is* the colliding
prediction — a 0-bit predictor per entry beyond the tag.

The sticky property produces Figure 9's signature trade-off: AC-PNC
drops to ~0.2 % while ANC-PC climbs to ~11 % at 2K entries, because a
load whose behaviour changes back to non-colliding stays marked until
evicted (or until a cyclic clear).
"""

from __future__ import annotations

from typing import Optional

from repro.cht.base import (
    CollisionPrediction,
    CollisionPredictor,
    NOT_COLLIDING,
    TaggedSetAssocTable,
)


class _DistanceBox:
    """Minimal-distance holder for the exclusive variant."""

    __slots__ = ("min_distance",)

    def __init__(self) -> None:
        self.min_distance: Optional[int] = None

    def observe(self, distance: Optional[int]) -> None:
        if distance is None:
            return
        if self.min_distance is None or distance < self.min_distance:
            self.min_distance = distance


class TaggedOnlyCHT(CollisionPredictor):
    """Presence-in-table = predicted colliding; sticky until evicted."""

    def __init__(self, n_entries: int = 2048, ways: int = 4,
                 track_distance: bool = False, tag_bits: int = 16) -> None:
        self.track_distance = track_distance
        self._table: TaggedSetAssocTable[_DistanceBox] = TaggedSetAssocTable(
            n_entries, ways, tag_bits)

    def lookup(self, pc: int) -> CollisionPrediction:
        entry = self._table.get(pc)
        if entry is None:
            return NOT_COLLIDING
        distance = entry.min_distance if self.track_distance else None
        return CollisionPrediction(colliding=True, distance=distance)

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        if not collided:
            return  # sticky: non-collisions never un-mark a load
        entry = self._table.get(pc)
        if entry is None:
            entry = _DistanceBox()
            self._table.put(pc, entry)
        entry.observe(distance)

    def clear(self) -> None:
        self._table.clear()

    @property
    def occupancy(self) -> int:
        """Number of loads currently marked colliding."""
        return len(self._table)

    @property
    def storage_bits(self) -> int:
        distance_bits = 6 if self.track_distance else 0
        return self._table.n_entries * (self._table.tag_bits + distance_bits)

    def __repr__(self) -> str:
        return (f"TaggedOnlyCHT(entries={self._table.n_entries}, "
                f"ways={self._table.ways})")
