"""Sharded, disk-cached experiment execution.

The experiment grids of :mod:`repro.experiments` — (scheme x profile x
trace x seed) sweeps — decompose into independent simulation *jobs*.
This package fans those jobs out over a ``multiprocessing`` worker pool
and memoises each job's result in a content-addressed on-disk cache, so
regenerating the figure suite scales with core count and repeated runs
cost (almost) nothing.

Layers
------

:mod:`repro.parallel.jobs`
    The job model: :class:`SimJob` (a picklable work unit addressed by
    a registered runner name plus a stable key) and the runner
    registry.
:mod:`repro.parallel.cache`
    The content-addressed result/trace cache.  Keys hash the full job
    identity — trace profile, seed, uop budget, machine configuration —
    plus the experiment settings and a code-version tag, so stale
    entries *miss* instead of loading.
:mod:`repro.parallel.runner`
    Serial and pooled execution: deterministic merge (result order is
    fixed by job submission order, never completion order), failure
    propagation with the original worker traceback, and per-job /
    per-worker timing records — plus the self-healing ladder: bounded
    retries with backoff, a per-job timeout watchdog, pool rebuilds
    after worker deaths with automatic serial fallback, and partial
    (degraded) results via :class:`FailedJob` placeholders.  See
    ``docs/robustness.md``.
:mod:`repro.parallel.worker`
    The functions that actually run inside pool workers.

Determinism contract: a grid run with ``workers=N`` returns exactly the
same results (bit-for-bit, including float values) as the serial run,
because every job is a pure function of its parameters and merge order
is the submission order.
"""

from repro.parallel.cache import (
    CACHE_SCHEMA,
    ResultCache,
    cache_key,
    canonical,
    key_material,
    load_or_build_trace,
)
from repro.parallel.jobs import SimJob, derive_seed, registered_kinds, sim_job
from repro.parallel.runner import (
    ExecutionPlan,
    FailedJob,
    JobFailure,
    JobRecord,
    RunReport,
    SERIAL_PLAN,
    active_plan,
    active_report,
    execution,
    run_jobs,
)

__all__ = [
    "CACHE_SCHEMA",
    "ExecutionPlan",
    "FailedJob",
    "JobFailure",
    "JobRecord",
    "ResultCache",
    "RunReport",
    "SERIAL_PLAN",
    "SimJob",
    "active_plan",
    "active_report",
    "cache_key",
    "canonical",
    "derive_seed",
    "execution",
    "key_material",
    "load_or_build_trace",
    "registered_kinds",
    "run_jobs",
    "sim_job",
]
