"""The job model: picklable work units plus the runner registry.

A :class:`SimJob` names a *registered runner* (a pure function doing one
simulation) and carries the keyword arguments it runs with.  Jobs cross
process boundaries, so everything in them must pickle; runners are
referenced by registry name — never by function object — and the module
that registered them is recorded so spawned workers can re-import it.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

JobParams = Tuple[Tuple[str, object], ...]

#: kind -> (runner, accepts a ``derived_seed`` keyword?)
_REGISTRY: Dict[str, Tuple[Callable[..., object], bool]] = {}


def sim_job(kind: str) -> Callable[[Callable[..., object]],
                                   Callable[..., object]]:
    """Register ``func`` as the runner for jobs of ``kind``.

    Runners must be deterministic functions of their keyword arguments
    (plus the optional ``derived_seed``): the disk cache and the
    serial-vs-parallel identity guarantee both depend on it.
    """

    def decorate(func: Callable[..., object]) -> Callable[..., object]:
        if kind in _REGISTRY and _REGISTRY[kind][0] is not func:
            raise ValueError(f"job kind {kind!r} already registered")
        accepts_seed = "derived_seed" in inspect.signature(func).parameters
        _REGISTRY[kind] = (func, accepts_seed)
        func.job_kind = kind  # type: ignore[attr-defined]
        return func

    return decorate


def registered_kinds() -> Tuple[str, ...]:
    """The currently registered job kinds (sorted)."""
    return tuple(sorted(_REGISTRY))


@dataclass(frozen=True)
class SimJob:
    """One independent simulation work unit.

    Attributes
    ----------
    kind:
        Registered runner name (see :func:`sim_job`).
    key:
        Stable identity within the experiment grid.  Merge order is the
        submission order of jobs, and ``key`` is what error messages,
        job manifests and cache diagnostics show — make it readable
        (e.g. ``("fig7", "cd")``).
    params:
        Keyword arguments for the runner, as a sorted tuple of
        ``(name, value)`` pairs so the job itself is hashable.
    module:
        Module that registered the runner; imported on demand when a
        worker process has not seen the registration yet.
    cacheable:
        ``False`` opts the job out of the disk cache (wall-clock
        benchmarks must re-measure, never replay).
    """

    kind: str
    key: Tuple[object, ...]
    params: JobParams = ()
    module: str = ""
    cacheable: bool = True

    @staticmethod
    def make(runner: Callable[..., object], key: Tuple[object, ...],
             cacheable: bool = True, **kwargs: object) -> "SimJob":
        """Build a job for a runner decorated with :func:`sim_job`."""
        kind = getattr(runner, "job_kind", None)
        if kind is None:
            raise ValueError(f"{runner!r} is not a registered sim_job")
        params = tuple(sorted(kwargs.items()))
        return SimJob(kind=kind, key=key, params=params,
                      module=runner.__module__, cacheable=cacheable)

    @property
    def derived_seed(self) -> int:
        """A per-job seed derived stably from the job identity.

        Workers never share RNG state; any job-local randomness must
        come from this (or from seeds passed explicitly in ``params``),
        so a job's behaviour is independent of which worker runs it.
        """
        return derive_seed(self.kind, *self.key)

    def kwargs(self) -> Dict[str, object]:
        """The runner's keyword arguments (``derived_seed`` included
        when the runner declares it)."""
        out = dict(self.params)
        _, accepts_seed = _lookup(self)
        if accepts_seed:
            out.setdefault("derived_seed", self.derived_seed)
        return out

    def run(self) -> object:
        """Execute the job in the current process."""
        runner, _ = _lookup(self)
        return runner(**self.kwargs())

    def describe(self) -> str:
        return f"{self.kind}{self.key!r}"


def _lookup(job: SimJob) -> Tuple[Callable[..., object], bool]:
    """Resolve a job's runner, importing its defining module if needed."""
    entry = _REGISTRY.get(job.kind)
    if entry is None and job.module:
        try:
            importlib.import_module(job.module)
        except ImportError:
            pass
        entry = _REGISTRY.get(job.kind)
    if entry is None:
        raise KeyError(
            f"no runner registered for job kind {job.kind!r} "
            f"(module {job.module or '?'}); import the module that "
            f"defines it before running jobs")
    return entry


def derive_seed(*parts: object) -> int:
    """A stable 63-bit seed from arbitrary (reprable) parts.

    Uses SHA-256 over the joined ``repr`` s — not ``hash()``, which is
    salted per process and would break cross-process determinism.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & (2 ** 63 - 1)
