"""Code that runs inside pool worker processes.

Kept separate from :mod:`repro.parallel.runner` so the pieces a child
process needs are importable without dragging in pool management, and so
the ``spawn`` start method (which re-imports modules rather than
inheriting the parent's) finds everything it needs: the pool initializer
re-imports :mod:`repro.experiments`, whose import registers every
experiment job kind.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Dict, Optional, Tuple

from repro.parallel.cache import ResultCache, cache_key
from repro.parallel.jobs import SimJob

#: Per-process cache handle, set up once by :func:`pool_initializer`.
_WORKER_CACHE: Optional[ResultCache] = None


def ensure_runners_registered() -> None:
    """Import the modules whose import registers the standard job kinds."""
    import repro.experiments  # noqa: F401


def pool_initializer(cache_dir: Optional[str]) -> None:
    """Run once in each worker: register runners, open the cache."""
    global _WORKER_CACHE
    ensure_runners_registered()
    _WORKER_CACHE = ResultCache(cache_dir) if cache_dir else None


def execute_one(job: SimJob, settings,
                cache: Optional[ResultCache]
                ) -> Tuple[object, float, bool]:
    """Run one job (cache-aware): ``(result, wall_seconds, cache_hit)``."""
    use_cache = cache is not None and job.cacheable
    if use_cache:
        key, material = cache_key(job, settings)
        hit, payload = cache.load(key, material)
        if hit:
            return payload, 0.0, True
    start = time.perf_counter()
    result = job.run()
    wall = time.perf_counter() - start
    if use_cache:
        cache.store(key, material, result)
    return result, wall, False


def run_job_payload(payload: Tuple[int, SimJob, object]
                    ) -> Dict[str, object]:
    """Pool entry point: execute one job, never raise.

    Failures are returned as data (original traceback text + job key)
    so the parent can cancel the rest of the grid and re-raise with
    full context instead of hanging on a dead future.
    ``KeyboardInterrupt`` propagates: the parent owns cancellation.
    """
    index, job, settings = payload
    base = {"index": index, "worker": os.getpid()}
    try:
        result, wall, hit = execute_one(job, settings, _WORKER_CACHE)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:
        return {**base, "ok": False, "error": repr(exc),
                "traceback": traceback.format_exc()}
    return {**base, "ok": True, "result": result, "wall": wall,
            "cache_hit": hit}
