"""Code that runs inside pool worker processes.

Kept separate from :mod:`repro.parallel.runner` so the pieces a child
process needs are importable without dragging in pool management, and so
the ``spawn`` start method (which re-imports modules rather than
inheriting the parent's) finds everything it needs: the pool initializer
re-imports :mod:`repro.experiments`, whose import registers every
experiment job kind.

Chaos support: the initializer also receives the plan's optional
:class:`repro.robust.faults.FaultPlan`; each job consults it immediately
before execution, which is where seeded worker kills (``os._exit``) and
stalls fire.  Process-level faults *only* exist on this side of the
fork — the runner's serial path never applies them.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Dict, Optional, Tuple

from repro.parallel.cache import ResultCache, cache_key
from repro.parallel.jobs import SimJob

#: Per-process cache handle, set up once by :func:`pool_initializer`.
_WORKER_CACHE: Optional[ResultCache] = None

#: Per-process chaos plan (``None`` outside chaos runs).
_WORKER_FAULTS = None


def ensure_runners_registered() -> None:
    """Import the modules whose import registers the standard job kinds."""
    import repro.experiments  # noqa: F401


def pool_initializer(cache_dir: Optional[str],
                     fault_plan=None) -> None:
    """Run once in each worker: register runners, open the cache,
    install the chaos plan (if any)."""
    global _WORKER_CACHE, _WORKER_FAULTS
    ensure_runners_registered()
    _WORKER_CACHE = ResultCache(cache_dir) if cache_dir else None
    _WORKER_FAULTS = fault_plan


def execute_one(job: SimJob, settings,
                cache: Optional[ResultCache]
                ) -> Tuple[object, float, bool]:
    """Run one job (cache-aware): ``(result, wall_seconds, cache_hit)``."""
    use_cache = cache is not None and job.cacheable
    if use_cache:
        key, material = cache_key(job, settings)
        hit, payload = cache.load(key, material)
        if hit:
            return payload, 0.0, True
    start = time.perf_counter()
    result = job.run()
    wall = time.perf_counter() - start
    if use_cache:
        cache.store(key, material, result)
    return result, wall, False


def run_job_payload(payload: Tuple[int, SimJob, object, int]
                    ) -> Dict[str, object]:
    """Pool entry point: execute one job, never raise.

    ``payload`` is ``(index, job, settings, attempt)`` — the attempt
    number (1-based) lets a seeded kill fault fire on the first attempt
    and spare the retry, the self-healing happy path.

    Failures are returned as data (original traceback text + job key)
    so the parent can retry or abort with full context instead of
    hanging on a dead future.  ``KeyboardInterrupt`` propagates: the
    parent owns cancellation.
    """
    index, job, settings, attempt = payload
    base = {"index": index, "worker": os.getpid(), "attempt": attempt}
    if _WORKER_FAULTS is not None:
        # May os._exit (the parent sees a dead pool) or sleep (the
        # parent's watchdog sees an overdue job).
        _WORKER_FAULTS.pre_job_fault(job, attempt, in_worker=True)
    try:
        result, wall, hit = execute_one(job, settings, _WORKER_CACHE)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:
        return {**base, "ok": False, "error": repr(exc),
                "traceback": traceback.format_exc()}
    return {**base, "ok": True, "result": result, "wall": wall,
            "cache_hit": hit}
