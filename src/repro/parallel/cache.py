"""Content-addressed on-disk cache for simulation results and traces.

Every entry is addressed by the SHA-256 of its *key material*: a
canonical JSON rendering of the full job identity — runner kind, job
key, every parameter (trace profile, seed, uop budget, machine
configuration, ...), the :class:`~repro.experiments.harness.
ExperimentSettings` in force — prefixed with the cache schema number
and the package version.  Anything that could change a result changes
the key, so stale entries *miss* instead of loading:

* a different ``ExperimentSettings`` -> different material -> miss;
* a different package version -> different material -> miss;
* a corrupted / truncated pickle -> load error -> warning + miss
  (the caller falls back to re-simulation and overwrites the entry).

Entries are pickled envelopes ``{schema, version, material, payload}``;
the envelope fields are re-verified at load time as a belt-and-braces
check against files copied between incompatible cache directories.
Writes go through a temp file + ``os.replace`` so concurrent workers
never observe a half-written entry.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import warnings
from typing import Iterable, Mapping, Optional, Tuple

import repro

#: Bump when the job/result encoding changes incompatibly: every
#: pre-existing cache entry then misses by construction.
CACHE_SCHEMA = 1

#: Code-relevant version tag baked into every key.  Module-level (not
#: inlined) so tests can simulate a package upgrade.
PACKAGE_VERSION = repro.__version__


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid currently running?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - e.g. pid out of range
        return False
    return True


def canonical(obj: object) -> object:
    """Reduce ``obj`` to JSON-encodable primitives, stably.

    Dataclasses carry their qualified type name (two configs with equal
    fields but different classes must not collide); enums their type
    and value; mappings are key-sorted.  Unknown objects fall back to
    ``repr`` — acceptable because job parameters are plain data by
    convention.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__module__}.{type(obj).__qualname__}",
                "value": canonical(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__dataclass__":
                f"{type(obj).__module__}.{type(obj).__qualname__}",
                "fields": fields}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, Mapping):
        return {str(k): canonical(v) for k, v in sorted(obj.items(),
                                                        key=lambda kv:
                                                        str(kv[0]))}
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(canonical(x)) for x in obj)
    return {"__repr__": repr(obj)}


def key_material(*parts: object) -> str:
    """The canonical string hashed into a cache key.

    The schema number and package version are always prepended, so a
    code upgrade invalidates the whole cache without any file scanning.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "version": PACKAGE_VERSION,
        "parts": [canonical(p) for p in parts],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(material: str) -> str:
    """The hex cache address of ``material``."""
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def cache_key(job, settings) -> Tuple[str, str]:
    """(hex key, material) addressing one job's result under
    ``settings``."""
    material = key_material("job", job.kind, job.key, job.params, settings)
    return content_key(material), material


class ResultCache:
    """A directory of content-addressed pickle envelopes.

    Safe for concurrent use by multiple worker processes: reads of
    missing/garbled entries degrade to misses, and writes are atomic
    renames.  ``hits`` / ``misses`` / ``stores`` count this instance's
    traffic only (each worker holds its own instance).
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Test hook: called with ``(point, path)`` at named points of
        #: the write protocol (currently ``"store:tmp-written"``,
        #: between the temp-file write and the atomic rename).  Chaos
        #: tests kill the process here to prove a mid-write death can
        #: never leave a half-written ``.pkl`` behind.
        self.fault_hook = None

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def load(self, key: str, material: str) -> Tuple[bool, object]:
        """``(True, payload)`` on a verified hit, ``(False, None)``
        otherwise."""
        path = self._path(key)
        if not os.path.exists(path):
            self.misses += 1
            return False, None
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as exc:
            warnings.warn(
                f"corrupted cache entry {path!r} ({exc!r}); "
                f"falling back to re-simulation", RuntimeWarning,
                stacklevel=2)
            self.misses += 1
            return False, None
        if (not isinstance(envelope, dict)
                or envelope.get("schema") != CACHE_SCHEMA
                or envelope.get("version") != PACKAGE_VERSION
                or envelope.get("material") != material):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, envelope.get("payload")

    def store(self, key: str, material: str, payload: object) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        envelope = {
            "schema": CACHE_SCHEMA,
            "version": PACKAGE_VERSION,
            "material": material,
            "payload": payload,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            if self.fault_hook is not None:
                self.fault_hook("store:tmp-written", tmp)
            os.replace(tmp, path)
            self.stores += 1
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)

    def sweep_stale_tmp(self) -> list:
        """Remove ``*.tmp.<pid>`` droppings of dead writer processes.

        A worker killed between its temp-file write and the atomic
        rename leaves the temp file behind (its ``finally`` never ran).
        The entry itself is intact-or-absent either way; this reclaims
        the disk.  Only files whose embedded pid is no longer alive are
        touched, so live concurrent writers are never raced.  Returns
        the removed paths.
        """
        removed = []
        for dirpath, _, filenames in os.walk(self.root):
            for filename in filenames:
                base, sep, pid_text = filename.rpartition(".tmp.")
                if not sep or not pid_text.isdigit():
                    continue
                if _pid_alive(int(pid_text)):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - racing removal
                    continue
                removed.append(path)
        return removed

    def stats(self) -> Mapping[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}


# --------------------------------------------------------------------------
# Trace caching
# --------------------------------------------------------------------------

def trace_cache_key(profile, name: str, n_uops: int,
                    seed: int) -> Tuple[str, str]:
    """Cache address of one built trace (profile + identity + budget)."""
    material = key_material("trace", profile, name, n_uops, seed)
    return content_key(material), material


def load_or_build_trace(profile, n_uops: int, seed: int, name: str,
                        cache: Optional[ResultCache]):
    """Fetch a built trace from ``cache``, building (and storing) on
    miss.

    Building is deterministic in ``(profile, n_uops, seed)``, so the
    cached uop stream is identical to a fresh build — the cache only
    removes the rebuild cost in cold worker processes and across runs.
    """
    from repro.trace.builder import build_trace

    if cache is None:
        return build_trace(profile, n_uops=n_uops, seed=seed, name=name)
    key, material = trace_cache_key(profile, name, n_uops, seed)
    hit, trace = cache.load(key, material)
    if hit:
        return trace
    trace = build_trace(profile, n_uops=n_uops, seed=seed, name=name)
    cache.store(key, material, trace)
    return trace
