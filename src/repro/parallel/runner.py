"""Serial and pooled job execution with deterministic merging.

``run_jobs(jobs)`` is the one entry point: it executes every job —
in-process, or fanned out over a ``multiprocessing`` pool — and returns
their results *in submission order*.  Completion order never leaks into
results, so a grid run with ``workers=N`` is bit-identical to the
serial run.

Execution is configured by an ambient :class:`ExecutionPlan` (installed
with the :func:`execution` context manager, usually by the CLI) so the
experiment modules never thread worker/cache knobs through their
signatures; calling ``run_jobs`` outside any context runs serially with
no cache — exactly the pre-parallel behaviour.

Failure semantics: the first failing job aborts the grid.  The original
worker traceback and the job key are carried in :class:`JobFailure` —
a worker that raises (or dies) surfaces, it never hangs the merge.
``KeyboardInterrupt`` cancels outstanding jobs and tears the pool down
before propagating.
"""

from __future__ import annotations

import contextlib
import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel.cache import ResultCache
from repro.parallel.jobs import SimJob
from repro.parallel.worker import (
    ensure_runners_registered,
    execute_one,
    pool_initializer,
    run_job_payload,
)


@dataclass(frozen=True)
class ExecutionPlan:
    """How a grid of jobs should be executed.

    ``workers <= 1`` runs serially in-process; ``cache_dir=None`` or
    ``use_cache=False`` disables the disk cache.  The default plan is
    therefore exactly the historical serial behaviour.
    """

    workers: int = 0
    cache_dir: Optional[str] = None
    use_cache: bool = True

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    @property
    def effective_cache_dir(self) -> Optional[str]:
        return self.cache_dir if self.use_cache else None


SERIAL_PLAN = ExecutionPlan()


class JobFailure(RuntimeError):
    """A job raised (or its worker died); carries the original context."""

    def __init__(self, job: SimJob, detail: str) -> None:
        super().__init__(
            f"simulation job {job.describe()} failed:\n{detail}")
        self.job = job
        self.detail = detail


@dataclass
class JobRecord:
    """Bookkeeping for one executed job (manifests, timing breakdowns)."""

    kind: str
    key: Tuple[object, ...]
    wall_seconds: float
    cache_hit: bool
    worker: str  # "serial" or the worker pid
    figure: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "key": list(self.key),
            "wall_seconds": self.wall_seconds,
            "cache_hit": self.cache_hit,
            "worker": self.worker,
            "figure": self.figure,
        }


@dataclass
class RunReport:
    """Accumulated job records for one :func:`execution` context."""

    records: List[JobRecord] = field(default_factory=list)
    workers: int = 0
    cache_dir: Optional[str] = None

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cache_hits / self.n_jobs if self.records else 0.0

    @property
    def sim_seconds(self) -> float:
        """Total in-job wall clock (summed across workers)."""
        return sum(r.wall_seconds for r in self.records)

    def worker_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-worker job counts and in-job wall clock."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            slot = out.setdefault(record.worker,
                                  {"jobs": 0, "wall_seconds": 0.0,
                                   "cache_hits": 0})
            slot["jobs"] += 1
            slot["wall_seconds"] += record.wall_seconds
            slot["cache_hits"] += 1 if record.cache_hit else 0
        return out

    def tag(self, figure: str) -> None:
        """Label all still-untagged records with ``figure``."""
        for record in self.records:
            if not record.figure:
                record.figure = figure

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "n_jobs": self.n_jobs,
            "n_cache_hits": self.n_cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "sim_seconds": self.sim_seconds,
            "worker_breakdown": self.worker_breakdown(),
            "jobs": [r.as_dict() for r in self.records],
        }


# Ambient plan/report stack.  A stack (not a single slot) so nested
# contexts — e.g. a test wrapping CLI code that installs its own plan —
# restore correctly.
_ACTIVE: List[Tuple[ExecutionPlan, RunReport]] = []


@contextlib.contextmanager
def execution(plan: ExecutionPlan):
    """Install ``plan`` as the ambient execution plan.

    Yields the :class:`RunReport` that ``run_jobs`` calls inside the
    context will append to.
    """
    report = RunReport(workers=plan.workers,
                       cache_dir=plan.effective_cache_dir)
    _ACTIVE.append((plan, report))
    try:
        yield report
    finally:
        _ACTIVE.pop()


def active_plan() -> ExecutionPlan:
    """The innermost installed plan (:data:`SERIAL_PLAN` outside any
    :func:`execution` context)."""
    return _ACTIVE[-1][0] if _ACTIVE else SERIAL_PLAN


def active_report() -> Optional[RunReport]:
    """The innermost context's report, or ``None`` outside any."""
    return _ACTIVE[-1][1] if _ACTIVE else None


def run_jobs(jobs: Sequence[SimJob], settings=None,
             plan: Optional[ExecutionPlan] = None) -> List[object]:
    """Execute ``jobs`` under ``plan`` (default: the ambient plan).

    Returns one result per job, **in the order of ``jobs``** regardless
    of completion order.  ``settings`` is folded into every cache key so
    results computed under different experiment settings never alias.
    """
    if plan is None:
        plan = active_plan()
    report = active_report()
    jobs = list(jobs)
    if not jobs:
        return []
    ensure_runners_registered()
    if plan.parallel and len(jobs) > 1:
        outcomes = _run_pooled(jobs, settings, plan)
    else:
        outcomes = _run_serial(jobs, settings, plan)
    results: List[object] = []
    for job, (result, record) in zip(jobs, outcomes):
        if report is not None:
            report.records.append(record)
        results.append(result)
    return results


def _run_serial(jobs: Sequence[SimJob], settings,
                plan: ExecutionPlan) -> List[Tuple[object, JobRecord]]:
    cache_dir = plan.effective_cache_dir
    cache = ResultCache(cache_dir) if cache_dir else None
    out: List[Tuple[object, JobRecord]] = []
    for job in jobs:
        try:
            result, wall, hit = execute_one(job, settings, cache)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            raise JobFailure(job, traceback.format_exc()) from exc
        out.append((result, JobRecord(kind=job.kind, key=job.key,
                                      wall_seconds=wall, cache_hit=hit,
                                      worker="serial")))
    return out


def _run_pooled(jobs: Sequence[SimJob], settings,
                plan: ExecutionPlan) -> List[Tuple[object, JobRecord]]:
    n_workers = min(plan.workers, len(jobs), (os.cpu_count() or 1) * 2)
    payloads = [(i, job, settings) for i, job in enumerate(jobs)]
    slots: List[Optional[Tuple[object, JobRecord]]] = [None] * len(jobs)
    executor = ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=pool_initializer,
        initargs=(plan.effective_cache_dir,))
    try:
        future_to_job = {executor.submit(run_job_payload, p): p[1]
                         for p in payloads}
        pending = set(future_to_job)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                job = future_to_job[future]
                try:
                    payload = future.result()
                except BrokenProcessPool as exc:
                    raise JobFailure(
                        job, f"worker process died unexpectedly "
                             f"({exc}); the job was lost before it "
                             f"could report a traceback") from exc
                if not payload["ok"]:
                    raise JobFailure(job, payload["traceback"])
                record = JobRecord(kind=job.kind, key=job.key,
                                   wall_seconds=payload["wall"],
                                   cache_hit=payload["cache_hit"],
                                   worker=str(payload["worker"]))
                slots[payload["index"]] = (payload["result"], record)
    except (JobFailure, KeyboardInterrupt):
        # Abort the rest of the grid: drop queued jobs, stop waiting on
        # running ones, then re-raise with the original context.
        _shutdown(executor)
        raise
    else:
        executor.shutdown(wait=True)
    assert all(slot is not None for slot in slots)
    return slots  # type: ignore[return-value]


def _shutdown(executor: ProcessPoolExecutor) -> None:
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - pre-3.9 signature
        executor.shutdown(wait=False)
