"""Serial and pooled job execution with deterministic merging.

``run_jobs(jobs)`` is the one entry point: it executes every job —
in-process, or fanned out over a ``multiprocessing`` pool — and returns
their results *in submission order*.  Completion order never leaks into
results, so a grid run with ``workers=N`` is bit-identical to the
serial run.

Execution is configured by an ambient :class:`ExecutionPlan` (installed
with the :func:`execution` context manager, usually by the CLI) so the
experiment modules never thread worker/cache knobs through their
signatures; calling ``run_jobs`` outside any context runs serially with
no cache — exactly the pre-parallel behaviour.

Failure semantics — the self-healing ladder:

1. A job that raises is retried up to ``plan.max_retries`` times with
   exponential backoff (``retry_backoff * 2**retry``); retries are
   deferred, not slept in the merge loop, so other jobs keep draining.
2. A worker-pool death (a worker segfaulted, was OOM-killed, or a
   chaos plan ``os._exit``-ed it) loses *no finished work*: done
   results are harvested, the pool is rebuilt, and unfinished jobs are
   resubmitted — up to ``plan.max_pool_rebuilds`` times, after which
   the remaining jobs fall back to serial in-process execution (where
   process-level chaos faults never fire, by construction).
3. With ``plan.job_timeout`` set, a heartbeat watchdog kills the pool
   under any job running past its deadline and charges that job a
   retry; queued-but-unstarted jobs are re-queued free of charge.
4. A job that exhausts its retries either aborts the grid with
   :class:`JobFailure` (default) or — with ``plan.allow_partial`` —
   yields a :class:`FailedJob` placeholder so the rest of the grid
   still completes; the run is then *degraded* and every failure is
   recorded on the :class:`RunReport` for the manifest.

``KeyboardInterrupt`` terminates worker processes (no orphans), drops
queued jobs, and propagates.
"""

from __future__ import annotations

import contextlib
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel.cache import ResultCache
from repro.parallel.jobs import SimJob
from repro.parallel.worker import (
    ensure_runners_registered,
    execute_one,
    pool_initializer,
    run_job_payload,
)


@dataclass(frozen=True)
class ExecutionPlan:
    """How a grid of jobs should be executed.

    ``workers <= 1`` runs serially in-process; ``cache_dir=None`` or
    ``use_cache=False`` disables the disk cache.  The default plan is
    therefore exactly the historical serial behaviour: no retries, no
    timeouts, fail on the first error.

    Robustness knobs
    ----------------
    max_retries:
        Per-job retry budget for jobs that raise or time out.
    retry_backoff:
        Base backoff in seconds; retry *n* of a job is deferred
        ``retry_backoff * 2**(n-1)`` seconds.
    job_timeout:
        Per-job wall-clock budget in seconds (``None`` = unlimited).
        Enforced by a heartbeat watchdog on the pooled path only.
    heartbeat:
        Watchdog poll interval in seconds.
    allow_partial:
        ``True`` replaces exhausted jobs with :class:`FailedJob`
        placeholders instead of raising — the grid completes degraded.
    max_pool_rebuilds:
        Worker-pool deaths tolerated (rebuild + resubmit) before the
        remaining jobs fall back to serial execution.
    serial_fallback:
        Whether that fallback is taken (``False`` raises instead).
    fault_plan:
        Optional :class:`repro.robust.faults.FaultPlan` shipped to the
        workers — chaos-testing hook; process-level faults only ever
        fire inside pool workers.
    """

    workers: int = 0
    cache_dir: Optional[str] = None
    use_cache: bool = True
    max_retries: int = 0
    retry_backoff: float = 0.1
    job_timeout: Optional[float] = None
    heartbeat: float = 0.25
    allow_partial: bool = False
    max_pool_rebuilds: int = 2
    serial_fallback: bool = True
    fault_plan: Optional[object] = None

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    @property
    def effective_cache_dir(self) -> Optional[str]:
        return self.cache_dir if self.use_cache else None


SERIAL_PLAN = ExecutionPlan()


class JobFailure(RuntimeError):
    """A job raised (or its worker died); carries the original context."""

    def __init__(self, job: SimJob, detail: str, attempts: int = 1) -> None:
        super().__init__(
            f"simulation job {job.describe()} failed "
            f"after {attempts} attempt(s):\n{detail}")
        self.job = job
        self.detail = detail
        self.attempts = attempts


@dataclass(frozen=True)
class FailedJob:
    """Placeholder result for a job that exhausted its retries.

    Only ever appears in ``run_jobs`` results under
    ``plan.allow_partial``; consumers must test for it (or read the
    report's ``failures``) before using grid results positionally.
    """

    kind: str
    key: Tuple[object, ...]
    error: str
    attempts: int

    def as_dict(self) -> Dict[str, object]:
        return {"status": "failed", "kind": self.kind,
                "key": list(self.key), "error": self.error,
                "attempts": self.attempts}


@dataclass
class JobRecord:
    """Bookkeeping for one executed job (manifests, timing breakdowns)."""

    kind: str
    key: Tuple[object, ...]
    wall_seconds: float
    cache_hit: bool
    worker: str  # "serial" or the worker pid
    figure: str = ""
    attempts: int = 1
    status: str = "ok"  # "ok" | "failed"

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "key": list(self.key),
            "wall_seconds": self.wall_seconds,
            "cache_hit": self.cache_hit,
            "worker": self.worker,
            "figure": self.figure,
            "attempts": self.attempts,
            "status": self.status,
        }


@dataclass
class RunReport:
    """Accumulated job records for one :func:`execution` context."""

    records: List[JobRecord] = field(default_factory=list)
    workers: int = 0
    cache_dir: Optional[str] = None
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    failures: List[Dict[str, object]] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cache_hits / self.n_jobs if self.records else 0.0

    @property
    def sim_seconds(self) -> float:
        """Total in-job wall clock (summed across workers)."""
        return sum(r.wall_seconds for r in self.records)

    @property
    def degraded(self) -> bool:
        """Did any job ultimately fail (partial results)?"""
        return bool(self.failures)

    def worker_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-worker job counts and in-job wall clock."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            slot = out.setdefault(record.worker,
                                  {"jobs": 0, "wall_seconds": 0.0,
                                   "cache_hits": 0})
            slot["jobs"] += 1
            slot["wall_seconds"] += record.wall_seconds
            slot["cache_hits"] += 1 if record.cache_hit else 0
        return out

    def tag(self, figure: str) -> None:
        """Label all still-untagged records (and failures) with
        ``figure``."""
        for record in self.records:
            if not record.figure:
                record.figure = figure
        for failure in self.failures:
            if not failure.get("figure"):
                failure["figure"] = figure

    def extend(self, other: "RunReport") -> None:
        """Fold another report (e.g. one figure's) into this one."""
        self.records.extend(other.records)
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.pool_rebuilds += other.pool_rebuilds
        self.serial_fallbacks += other.serial_fallbacks
        self.failures.extend(other.failures)

    def healing_summary(self) -> Dict[str, object]:
        """The manifest's ``degraded`` section: every self-healing
        action taken and every job lost."""
        return {
            "degraded": self.degraded,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "failures": list(self.failures),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "n_jobs": self.n_jobs,
            "n_cache_hits": self.n_cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "sim_seconds": self.sim_seconds,
            "worker_breakdown": self.worker_breakdown(),
            "healing": self.healing_summary(),
            "jobs": [r.as_dict() for r in self.records],
        }


# Ambient plan/report stack.  A stack (not a single slot) so nested
# contexts — e.g. a test wrapping CLI code that installs its own plan —
# restore correctly.
_ACTIVE: List[Tuple[ExecutionPlan, RunReport]] = []


@contextlib.contextmanager
def execution(plan: ExecutionPlan):
    """Install ``plan`` as the ambient execution plan.

    Yields the :class:`RunReport` that ``run_jobs`` calls inside the
    context will append to.
    """
    report = RunReport(workers=plan.workers,
                       cache_dir=plan.effective_cache_dir)
    _ACTIVE.append((plan, report))
    try:
        yield report
    finally:
        _ACTIVE.pop()


def active_plan() -> ExecutionPlan:
    """The innermost installed plan (:data:`SERIAL_PLAN` outside any
    :func:`execution` context)."""
    return _ACTIVE[-1][0] if _ACTIVE else SERIAL_PLAN


def active_report() -> Optional[RunReport]:
    """The innermost context's report, or ``None`` outside any."""
    return _ACTIVE[-1][1] if _ACTIVE else None


def run_jobs(jobs: Sequence[SimJob], settings=None,
             plan: Optional[ExecutionPlan] = None) -> List[object]:
    """Execute ``jobs`` under ``plan`` (default: the ambient plan).

    Returns one result per job, **in the order of ``jobs``** regardless
    of completion order.  ``settings`` is folded into every cache key so
    results computed under different experiment settings never alias.
    Under ``plan.allow_partial``, exhausted jobs yield
    :class:`FailedJob` placeholders instead of aborting the grid.
    """
    if plan is None:
        plan = active_plan()
    report = active_report()
    jobs = list(jobs)
    if not jobs:
        return []
    ensure_runners_registered()
    stats = RunReport(workers=plan.workers,
                      cache_dir=plan.effective_cache_dir)
    if plan.parallel and len(jobs) > 1:
        outcomes = _run_pooled(jobs, settings, plan, stats)
    else:
        outcomes = _run_serial(jobs, settings, plan, stats)
    results: List[object] = []
    for job, (result, record) in zip(jobs, outcomes):
        if report is not None:
            report.records.append(record)
        results.append(result)
    if report is not None:
        report.retries += stats.retries
        report.timeouts += stats.timeouts
        report.pool_rebuilds += stats.pool_rebuilds
        report.serial_fallbacks += stats.serial_fallbacks
        report.failures.extend(stats.failures)
    return results


Outcome = Tuple[object, JobRecord]


def _failed_outcome(job: SimJob, detail: str, attempts: int,
                    plan: ExecutionPlan, stats: RunReport) -> Outcome:
    """Record an exhausted job; raises unless partial results are on."""
    if not plan.allow_partial:
        raise JobFailure(job, detail, attempts)
    stats.failures.append({"kind": job.kind, "key": list(job.key),
                           "attempts": attempts, "error": detail,
                           "figure": ""})
    record = JobRecord(kind=job.kind, key=job.key, wall_seconds=0.0,
                       cache_hit=False, worker="failed",
                       attempts=attempts, status="failed")
    placeholder = FailedJob(kind=job.kind, key=job.key,
                            error=detail, attempts=attempts)
    return placeholder, record


def _run_serial(jobs: Sequence[SimJob], settings, plan: ExecutionPlan,
                stats: RunReport) -> List[Outcome]:
    cache_dir = plan.effective_cache_dir
    cache = ResultCache(cache_dir) if cache_dir else None
    out: List[Outcome] = []
    for job in jobs:
        out.append(_run_one_serial(job, settings, plan, cache, stats))
    return out


def _run_one_serial(job: SimJob, settings, plan: ExecutionPlan,
                    cache: Optional[ResultCache],
                    stats: RunReport) -> Outcome:
    """One job on the serial path, honouring the retry budget.

    Process-level chaos faults (kill/stall) never fire here — the
    serial path is the safe harbour the pool falls back to.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            result, wall, hit = execute_one(job, settings, cache)
        except KeyboardInterrupt:
            raise
        except Exception:
            detail = traceback.format_exc()
            if attempts <= plan.max_retries:
                stats.retries += 1
                _backoff(plan, attempts)
                continue
            return _failed_outcome(job, detail, attempts, plan, stats)
        return result, JobRecord(kind=job.kind, key=job.key,
                                 wall_seconds=wall, cache_hit=hit,
                                 worker="serial", attempts=attempts)


def _backoff(plan: ExecutionPlan, attempts: int) -> None:
    if plan.retry_backoff > 0:
        time.sleep(plan.retry_backoff * (2 ** (attempts - 1)))


@dataclass
class _JobState:
    """Watchdog bookkeeping for one not-yet-finished pooled job."""

    index: int
    job: SimJob
    attempts: int = 0  # attempts handed to a worker so far
    retries: int = 0   # error/timeout retries consumed


def _run_pooled(jobs: Sequence[SimJob], settings, plan: ExecutionPlan,
                stats: RunReport) -> List[Outcome]:
    n_workers = min(plan.workers, len(jobs), (os.cpu_count() or 1) * 2)
    slots: List[Optional[Outcome]] = [None] * len(jobs)
    states = {i: _JobState(i, job) for i, job in enumerate(jobs)}
    unfinished = set(states)
    executor = _make_executor(n_workers, plan)
    #: future -> (index, submission wall-clock time)
    in_flight: Dict[Future, Tuple[int, float]] = {}
    #: index -> earliest resubmission time (deferred retry backoff)
    deferred: Dict[int, float] = {}

    def submit(index: int) -> None:
        state = states[index]
        state.attempts += 1
        payload = (index, state.job, settings, state.attempts)
        in_flight[executor.submit(run_job_payload, payload)] = \
            (index, time.monotonic())

    def settle(index: int, outcome: Outcome) -> None:
        slots[index] = outcome
        unfinished.discard(index)

    def handle_pool_death(resubmit: bool) -> None:
        """Harvest done work, kill the pool, optionally rebuild it."""
        nonlocal executor
        for future, (index, _) in list(in_flight.items()):
            if index not in unfinished:
                continue
            if future.done() and not future.cancelled():
                try:
                    payload = future.result()
                except BaseException:
                    continue  # died with the pool; will resubmit
                if payload.get("ok"):
                    settle(index, _payload_outcome(states[index], payload))
        in_flight.clear()
        _shutdown(executor, kill=True)
        if resubmit and unfinished:
            executor = _make_executor(min(n_workers, len(unfinished)),
                                      plan)
            for index in sorted(unfinished):
                if index not in deferred:
                    submit(index)

    def fail_attempt(index: int, detail: str, timed_out: bool) -> None:
        state = states[index]
        if timed_out:
            stats.timeouts += 1
        if state.retries < plan.max_retries:
            state.retries += 1
            stats.retries += 1
            deferred[index] = (time.monotonic() + plan.retry_backoff
                               * (2 ** (state.retries - 1)))
        else:
            settle(index, _failed_outcome(state.job, detail,
                                          state.attempts, plan, stats))

    try:
        for index in range(len(jobs)):
            submit(index)
        while unfinished:
            try:
                now = time.monotonic()
                for index, due in sorted(deferred.items()):
                    if index in unfinished and due <= now:
                        del deferred[index]
                        submit(index)
                timeout = (plan.heartbeat
                           if plan.job_timeout is not None or deferred
                           else None)
                done, _ = wait(set(in_flight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    index, _started = in_flight.pop(future)
                    if index not in unfinished or future.cancelled():
                        continue
                    state = states[index]
                    payload = future.result()
                    if payload["ok"]:
                        settle(index, _payload_outcome(state, payload))
                    else:
                        fail_attempt(index, payload["traceback"],
                                     timed_out=False)
                if plan.job_timeout is not None:
                    _enforce_timeouts(plan, in_flight, unfinished,
                                      states, submit, fail_attempt,
                                      handle_pool_death)
            except BrokenProcessPool:
                # A worker died mid-grid (chaos kill, segfault, OOM).
                # We cannot know which job killed it, so nobody is
                # charged a retry; the rebuild budget bounds the loop,
                # then the remaining jobs go serial — the safe harbour
                # where process-level faults never fire.
                if stats.pool_rebuilds >= plan.max_pool_rebuilds:
                    if not plan.serial_fallback:
                        survivor = states[min(unfinished)]
                        raise JobFailure(
                            survivor.job,
                            "worker pool died repeatedly "
                            f"({stats.pool_rebuilds} rebuilds) and "
                            "serial fallback is disabled",
                            survivor.attempts) from None
                    handle_pool_death(resubmit=False)
                    raise _SerialFallback() from None
                stats.pool_rebuilds += 1
                handle_pool_death(resubmit=True)
    except _SerialFallback:
        stats.serial_fallbacks += 1
        cache_dir = plan.effective_cache_dir
        cache = ResultCache(cache_dir) if cache_dir else None
        for index in sorted(unfinished):
            settle(index, _run_one_serial(states[index].job, settings,
                                          plan, cache, stats))
    except (JobFailure, KeyboardInterrupt):
        # Abort the rest of the grid: terminate workers (no orphans),
        # drop queued jobs, then re-raise with the original context.
        _shutdown(executor, kill=True)
        raise
    else:
        executor.shutdown(wait=True)
    if plan.effective_cache_dir:
        ResultCache(plan.effective_cache_dir).sweep_stale_tmp()
    assert all(slot is not None for slot in slots)
    return slots  # type: ignore[return-value]


class _SerialFallback(Exception):
    """Internal control flow: the pool is done for, go serial."""


def _payload_outcome(state: _JobState, payload: Dict[str, object]) -> Outcome:
    record = JobRecord(kind=state.job.kind, key=state.job.key,
                       wall_seconds=payload["wall"],
                       cache_hit=payload["cache_hit"],
                       worker=str(payload["worker"]),
                       attempts=state.attempts)
    return payload["result"], record


def _enforce_timeouts(plan, in_flight, unfinished, states, submit,
                      fail_attempt, handle_pool_death) -> None:
    """Kill the pool under any job past its deadline.

    The deadline is measured from submission; a queued job that never
    started is simply cancelled and re-queued free of charge (its
    ``future.cancel()`` succeeds), so only genuinely running overdue
    jobs are charged a timeout.
    """
    now = time.monotonic()
    overdue_running = []
    for future, (index, started) in list(in_flight.items()):
        if index not in unfinished or future.done():
            continue
        if now - started <= plan.job_timeout:
            continue
        if future.cancel():
            del in_flight[future]
            submit(index)  # was only queued; fresh deadline, no charge
        else:
            overdue_running.append(index)
    if overdue_running:
        for index in overdue_running:
            fail_attempt(
                index,
                f"job exceeded its {plan.job_timeout}s timeout "
                f"(attempt {states[index].attempts}); its worker was "
                f"killed", timed_out=True)
        # The only way to stop a running job is to kill its worker —
        # which kills the whole pool; finished siblings are harvested
        # and the rest resubmitted.  Deliberate, so not a "rebuild".
        handle_pool_death(resubmit=True)


def _make_executor(n_workers: int,
                   plan: ExecutionPlan) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=max(1, n_workers),
        initializer=pool_initializer,
        initargs=(plan.effective_cache_dir, plan.fault_plan))


def _shutdown(executor: ProcessPoolExecutor, kill: bool = False) -> None:
    if kill:
        # Terminate live workers so a cancelled grid leaves no orphan
        # processes burning CPU on jobs nobody will collect.
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - racing process exit
                pass
    try:
        executor.shutdown(wait=True, cancel_futures=True)
    except TypeError:  # pragma: no cover - pre-3.9 signature
        executor.shutdown(wait=True)
