"""Trace serialisation.

Traces are cheap to regenerate (deterministic from (profile, seed)), but
persisting them lets benchmark runs share identical inputs and lets users
inspect them.  The format is a compact line-oriented text format, one uop
per line, with a two-line header — easy to diff and to parse elsewhere.
"""

from __future__ import annotations

import io
import os
from typing import List, Optional, TextIO, Union

from repro.common.types import MemAccess, Uop, UopClass
from repro.trace.trace import Trace

FORMAT_VERSION = 1
_NONE = "-"


def _encode_uop(uop: Uop) -> str:
    fields = [
        str(uop.seq),
        format(uop.pc, "x"),
        uop.uclass.name,
        ",".join(map(str, uop.srcs)) or _NONE,
        _NONE if uop.dst is None else str(uop.dst),
        _NONE if uop.mem is None else f"{uop.mem.address:x}:{uop.mem.size}",
        _NONE if uop.sta_seq is None else str(uop.sta_seq),
        "T" if uop.taken else "N",
        "M" if uop.mispredicted else "-",
    ]
    return " ".join(fields)


def _decode_uop(line: str) -> Uop:
    parts = line.split()
    if len(parts) != 9:
        raise ValueError(f"malformed uop line: {line!r}")
    seq, pc, uclass, srcs, dst, mem, sta_seq, taken, mispred = parts
    mem_access = None
    if mem != _NONE:
        addr, size = mem.split(":")
        mem_access = MemAccess(address=int(addr, 16), size=int(size))
    return Uop(
        seq=int(seq),
        pc=int(pc, 16),
        uclass=UopClass[uclass],
        srcs=tuple() if srcs == _NONE else tuple(map(int, srcs.split(","))),
        dst=None if dst == _NONE else int(dst),
        mem=mem_access,
        sta_seq=None if sta_seq == _NONE else int(sta_seq),
        taken=taken == "T",
        mispredicted=mispred == "M",
    )


def dump(trace: Trace, target: Union[str, os.PathLike, TextIO]) -> None:
    """Write ``trace`` to a path or text stream."""
    if isinstance(target, (str, os.PathLike)):
        with open(target, "w", encoding="ascii") as handle:
            dump(trace, handle)
        return
    target.write(f"# repro-trace v{FORMAT_VERSION} "
                 f"name={trace.name} group={trace.group} "
                 f"seed={trace.seed} n={len(trace)}\n")
    for uop in trace.uops:
        target.write(_encode_uop(uop))
        target.write("\n")


def load(source: Union[str, os.PathLike, TextIO]) -> Trace:
    """Read a trace written by :func:`dump`."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="ascii") as handle:
            return load(handle)
    header = source.readline()
    if not header.startswith("# repro-trace"):
        raise ValueError("not a repro trace file")
    meta = dict(part.split("=", 1) for part in header.split()
                if "=" in part)
    uops: List[Uop] = []
    for line in source:
        line = line.strip()
        if line and not line.startswith("#"):
            uops.append(_decode_uop(line))
    expected = int(meta.get("n", len(uops)))
    if expected != len(uops):
        raise ValueError(f"trace truncated: header says {expected} uops, "
                         f"found {len(uops)}")
    return Trace(name=meta.get("name", "trace"), uops=uops,
                 group=meta.get("group", ""), seed=int(meta.get("seed", 0)))


def dumps(trace: Trace) -> str:
    """Serialise to a string (round-trips with :func:`loads`)."""
    buffer = io.StringIO()
    dump(trace, buffer)
    return buffer.getvalue()


def loads(text: str) -> Trace:
    """Parse a trace from a string produced by :func:`dumps`."""
    return load(io.StringIO(text))
