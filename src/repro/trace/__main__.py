"""Trace CLI: ``python -m repro.trace <command>``.

Commands::

    list                       show the seven trace groups and rosters
    build NAME [--uops N]      build a trace and print its summary
    dump NAME FILE [--uops N]  build a trace and write it to FILE
    show FILE [--head N]       summarise (and preview) a trace file
"""

from __future__ import annotations

import argparse
import sys

from repro.trace import trace_io
from repro.trace.builder import build_trace
from repro.trace.trace import summarize
from repro.trace.workloads import (
    TRACE_GROUPS,
    UnknownTraceError,
    profile_for,
    trace_seed,
)


def _cmd_list(args: argparse.Namespace) -> int:
    for group, names in TRACE_GROUPS.items():
        print(f"{group:12s} ({len(names)}): {', '.join(names)}")
    return 0


def _build(args: argparse.Namespace):
    if args.uops < 1:
        raise ValueError(f"--uops must be >= 1, got {args.uops}")
    return build_trace(profile_for(args.name, code_scale=args.code_scale),
                       n_uops=args.uops, seed=trace_seed(args.name),
                       name=args.name)


def _cmd_build(args: argparse.Namespace) -> int:
    trace = _build(args)
    print(summarize(trace))
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    trace = _build(args)
    trace_io.dump(trace, args.file)
    print(f"wrote {len(trace)} uops to {args.file}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    trace = trace_io.load(args.file)
    print(f"{trace.name} (group={trace.group}, seed={trace.seed})")
    print(summarize(trace))
    for uop in trace.uops[:args.head]:
        mem = f" mem={uop.mem.address:#x}" if uop.mem else ""
        print(f"  {uop.seq:6d} {uop.uclass.name:6s} pc={uop.pc:#x}{mem}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.trace")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list trace groups").set_defaults(
        fn=_cmd_list)

    p_build = sub.add_parser("build", help="build and summarise a trace")
    p_build.add_argument("name")
    p_build.add_argument("--uops", type=int, default=30_000)
    p_build.add_argument("--code-scale", type=int, default=1)
    p_build.set_defaults(fn=_cmd_build)

    p_dump = sub.add_parser("dump", help="build a trace and write it")
    p_dump.add_argument("name")
    p_dump.add_argument("file")
    p_dump.add_argument("--uops", type=int, default=30_000)
    p_dump.add_argument("--code-scale", type=int, default=1)
    p_dump.set_defaults(fn=_cmd_dump)

    p_show = sub.add_parser("show", help="summarise a trace file")
    p_show.add_argument("file")
    p_show.add_argument("--head", type=int, default=0)
    p_show.set_defaults(fn=_cmd_show)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (UnknownTraceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
