"""Additional scene types for custom workloads.

The seven built-in profiles use the scene catalogue in
:mod:`repro.trace.builder`; these extras are for users composing their
own workloads (none of the calibrated profiles depend on them, so they
can evolve freely):

* :class:`Matrix2DScene` — blocked row/column walks over a 2-D array:
  row walks stride by the element size (spatially local, bank-periodic);
  column walks stride by the row pitch (one access per line, and — when
  the pitch is a multiple of ``2 * line`` — *bank-pathological*: every
  access lands on the same bank, the classic power-of-two-pitch problem
  for banked caches).
* :class:`ProducerConsumerScene` — a store queue written by one code
  region and drained by another: tunable store-to-load distance makes
  it a collision dial for disambiguation studies.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.trace.builder import Scene, TraceBuilder


class Matrix2DScene(Scene):
    """Alternating row-major and column-major walks over a matrix."""

    def __init__(self, pc_base: int, base: int, rows: int = 64,
                 cols: int = 64, element_bytes: int = 8,
                 accesses_per_visit: int = 8) -> None:
        super().__init__(pc_base)
        if rows < 2 or cols < 2:
            raise ValueError("matrix needs at least 2x2 elements")
        self.base = base
        self.rows = rows
        self.cols = cols
        self.element_bytes = element_bytes
        self.accesses_per_visit = accesses_per_visit
        self._row = 0
        self._col = 0
        self._column_phase = False

    @property
    def row_pitch(self) -> int:
        return self.cols * self.element_bytes

    def _address(self) -> int:
        return (self.base + self._row * self.row_pitch
                + self._col * self.element_bytes)

    def _advance(self) -> None:
        if self._column_phase:
            self._row += 1
            if self._row >= self.rows:
                self._row = 0
                self._col = (self._col + 1) % self.cols
        else:
            self._col += 1
            if self._col >= self.cols:
                self._col = 0
                self._row = (self._row + 1) % self.rows

    def emit(self, builder: TraceBuilder, rng: random.Random) -> None:
        pc = self.pc_base if not self._column_phase else self.pc_base + 0x80
        for i in range(self.accesses_per_visit):
            load = builder.emit_load(pc + 8 * i, self._address(), rng)
            builder.emit_int(pc + 8 * i + 4, rng, srcs=(load.dst,))
            self._advance()
        # Alternate phases between visits: row-walks then column-walks.
        self._column_phase = not self._column_phase


class ProducerConsumerScene(Scene):
    """A circular buffer: produce (store) then consume (load) later.

    ``lag`` controls how many slots behind the producer the consumer
    reads; small lags put the matching store inside the scheduling
    window (collisions), large lags drain through memory (clean loads).
    """

    def __init__(self, pc_base: int, base: int, n_slots: int = 16,
                 slot_bytes: int = 8, lag: int = 2,
                 items_per_visit: int = 2) -> None:
        super().__init__(pc_base)
        if not 1 <= lag < n_slots:
            raise ValueError("lag must be in [1, n_slots)")
        self.base = base
        self.n_slots = n_slots
        self.slot_bytes = slot_bytes
        self.lag = lag
        self.items_per_visit = items_per_visit
        self._head = 0

    def _slot_address(self, index: int) -> int:
        return self.base + (index % self.n_slots) * self.slot_bytes

    def emit(self, builder: TraceBuilder, rng: random.Random) -> None:
        pc = self.pc_base
        for i in range(self.items_per_visit):
            builder.emit_store(pc + 16 * i,
                               self._slot_address(self._head), rng)
            if self._head >= self.lag:
                load = builder.emit_load(
                    pc + 16 * i + 8,
                    self._slot_address(self._head - self.lag), rng)
                builder.emit_int(pc + 16 * i + 12, rng, srcs=(load.dst,))
            self._head += 1
