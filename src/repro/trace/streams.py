"""Address-stream models.

Each static load/store site in a synthetic program draws its effective
addresses from a stream.  The stream menagerie covers the behaviours
that make the paper's predictors work (or fail):

* :class:`StrideStream` — array walks.  Perfectly predictable by a
  stride address predictor; produces periodic miss patterns (one miss
  per cache line) and periodic bank sequences.
* :class:`PointerChaseStream` — a fixed random permutation cycle.
  Address sequence is repeatable but stride-free; miss behaviour
  depends on the working-set size.
* :class:`RandomStream` — uniform accesses in a region; adversarial
  for every predictor.
* :class:`HotColdStream` — mostly-hot accesses with occasional cold
  excursions; yields the bursty, history-correlated misses that local
  hit-miss predictors capture.
"""

from __future__ import annotations

import abc
import random
from typing import List, Optional

from repro.fastpath import HAS_NUMPY
from repro.fastpath.backend import resolve_backend


class AddressStream(abc.ABC):
    """A generator of effective byte addresses for one access site."""

    @abc.abstractmethod
    def next(self, rng: random.Random) -> int:
        """Produce the next effective address."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Rewind to the initial state."""

    def materialize(self, n: int, rng: random.Random,
                    backend: Optional[str] = None) -> List[int]:
        """The next ``n`` addresses as a list — exactly what ``n``
        successive :meth:`next` calls would return, with the stream
        state advanced identically.

        With ``backend="vectorized"`` (or the process default), streams
        whose walk is rng-free (stride walks, pointer chases) batch the
        block in closed form; rng-consuming streams always take the
        scalar loop so the shared ``rng`` consumption order — and hence
        every downstream draw — is preserved bit for bit.
        """
        if resolve_backend(backend) == "vectorized" and HAS_NUMPY:
            batch = self._materialize_vectorized(n)
            if batch is not None:
                return batch
        return [self.next(rng) for _ in range(n)]

    def _materialize_vectorized(self, n: int) -> Optional[List[int]]:
        """Batch kernel hook; ``None`` means "no exact kernel"."""
        return None


class StrideStream(AddressStream):
    """A strided walk over ``[base, base + extent)``, wrapping at the end."""

    def __init__(self, base: int, stride: int, extent: int) -> None:
        if extent <= 0:
            raise ValueError("extent must be positive")
        if stride == 0:
            raise ValueError("stride must be non-zero")
        self.base = base
        self.stride = stride
        self.extent = extent
        self._offset = 0

    def next(self, rng: random.Random) -> int:
        address = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.extent
        return address

    def _materialize_vectorized(self, n: int) -> List[int]:
        from repro.fastpath.tracegen import materialize_stride
        return materialize_stride(self, n)

    def reset(self) -> None:
        self._offset = 0

    def __repr__(self) -> str:
        return (f"StrideStream(base={self.base:#x}, stride={self.stride}, "
                f"extent={self.extent})")


class RandomStream(AddressStream):
    """Uniformly random aligned accesses within a region."""

    def __init__(self, base: int, extent: int, align: int = 4) -> None:
        if extent < align:
            raise ValueError("extent must cover at least one access")
        self.base = base
        self.extent = extent
        self.align = align

    def next(self, rng: random.Random) -> int:
        slots = self.extent // self.align
        return self.base + rng.randrange(slots) * self.align

    def reset(self) -> None:
        pass  # stateless

    def __repr__(self) -> str:
        return f"RandomStream(base={self.base:#x}, extent={self.extent})"


class PointerChaseStream(AddressStream):
    """Follow a fixed random permutation over node addresses.

    The permutation is built once from ``perm_seed`` so the chase is
    repeatable across runs; the traversal revisits nodes cyclically,
    giving temporal locality bounded by the node count.
    """

    def __init__(self, base: int, n_nodes: int, node_bytes: int = 64,
                 perm_seed: int = 1) -> None:
        if n_nodes < 2:
            raise ValueError("need at least two nodes")
        self.base = base
        self.n_nodes = n_nodes
        self.node_bytes = node_bytes
        order = list(range(n_nodes))
        random.Random(perm_seed).shuffle(order)
        # successor[i] = node after i in the single cycle defined by order.
        self._successor: List[int] = [0] * n_nodes
        for pos, node in enumerate(order):
            self._successor[node] = order[(pos + 1) % n_nodes]
        self._current = order[0]

    def next(self, rng: random.Random) -> int:
        address = self.base + self._current * self.node_bytes
        self._current = self._successor[self._current]
        return address

    def _materialize_vectorized(self, n: int) -> List[int]:
        from repro.fastpath.tracegen import materialize_pointer_chase
        return materialize_pointer_chase(self, n)

    def reset(self) -> None:
        # Restart from node 0's successor chain head deterministically.
        self._current = 0

    def __repr__(self) -> str:
        return (f"PointerChaseStream(base={self.base:#x}, "
                f"nodes={self.n_nodes})")


class HotColdStream(AddressStream):
    """Mostly-hot accesses with cold excursions in bursts.

    With probability ``p_cold_burst`` the stream enters a cold burst of
    geometric length, drawing from the cold stream; otherwise it draws
    from the hot stream.  Bursts produce the *runs* of misses that give
    per-load history predictive power.
    """

    def __init__(self, hot: AddressStream, cold: AddressStream,
                 p_cold_burst: float = 0.02,
                 burst_continue: float = 0.7) -> None:
        if not 0.0 <= p_cold_burst <= 1.0:
            raise ValueError("p_cold_burst must be a probability")
        if not 0.0 <= burst_continue < 1.0:
            raise ValueError("burst_continue must be in [0, 1)")
        self.hot = hot
        self.cold = cold
        self.p_cold_burst = p_cold_burst
        self.burst_continue = burst_continue
        self._in_burst = False

    def next(self, rng: random.Random) -> int:
        if self._in_burst:
            self._in_burst = rng.random() < self.burst_continue
            return self.cold.next(rng)
        if rng.random() < self.p_cold_burst:
            self._in_burst = True
            return self.cold.next(rng)
        return self.hot.next(rng)

    def reset(self) -> None:
        self._in_burst = False
        self.hot.reset()
        self.cold.reset()

    def __repr__(self) -> str:
        return f"HotColdStream(p_cold={self.p_cold_burst})"
