"""Workload profiles for the paper's seven trace groups.

Section 3 uses SpecInt95 (8 traces), SpecFP95 (10), SysmarkNT (8),
Sysmark95 (8), Games (5), Java (5) and TPC (2).  Each profile below is a
declarative recipe mixing the scene types of :mod:`repro.trace.builder`
so the group's qualitative signature matches what section 4 reports:

=============  ==============================================================
Group          Signature reproduced
=============  ==============================================================
SpecInt95      call-heavy, small working sets (high L1 hit rate), regular
               collisions, moderately predictable misses
SpecFP95       loop/stride dominated, streaming misses that are *highly*
               predictable (85 % AM-PM catch in Figure 10), few collisions
SysmarkNT      call + OS-like mix, highest collision rates, misses only
               34 % predictable (hot/cold bursts)
Sysmark95      like NT with a milder collision profile
Games          array + random mix, moderate everything
Java           pointer-chase heavy, frequent calls, irregular collisions
TPC            random-access dominated, higher miss rate, low predictability
=============  ==============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.trace.builder import (
    ArrayLoopScene,
    BranchScene,
    CallScene,
    HEAP_BASE,
    HEAP_REGION_BYTES,
    PointerChaseScene,
    RandomAccessScene,
    WeightedScene,
)
from repro.trace.streams import (
    HotColdStream,
    PointerChaseStream,
    RandomStream,
    StrideStream,
)

KB = 1024


@dataclass(frozen=True)
class WorkloadProfile:
    """Declarative recipe for one trace group.

    Weights select among scene kinds; the remaining fields parameterise
    the scenes.  ``instantiate`` builds fresh scene instances (streams
    hold state) for a given seed, applying mild per-seed jitter so the
    several traces of a group are siblings, not clones.
    """

    name: str
    group: str
    # Scene mix weights.
    call_weight: float = 3.0
    array_weight: float = 3.0
    chase_weight: float = 0.5
    random_weight: float = 0.5
    branch_weight: float = 2.0
    # Call-scene parameters.
    call_gap_short: int = 9
    call_gap_long: int = 32
    n_call_sites: int = 6
    p_reload: float = 0.95
    phase_flip_fraction: float = 0.15  #: fraction of call sites that flip
    # Array-scene parameters.
    n_hot_arrays: int = 2
    hot_array_kb: int = 2
    n_cold_arrays: int = 1
    cold_array_kb: int = 160
    array_stride: int = 64
    cold_burst_p: float = 0.015
    fp_fraction: float = 0.0
    #: Fraction of the array weight given to cold (missing) arrays.
    cold_array_fraction: float = 0.1
    # Pointer-chase parameters.
    chase_nodes: int = 32
    # Random-access parameters.
    random_region_kb: int = 4
    p_alias: float = 0.2
    # Branch parameters.
    p_mispredict: float = 0.04
    # Address-register stability (see repro.trace.builder.STABLE_REGS).
    p_stable_load_addr: float = 0.85
    p_stable_sta_addr: float = 0.7
    #: Static code-footprint multiplier: scales the number of call and
    #: branch scene instances (and thus distinct load PCs) without
    #: changing the dynamic mix.  Used by capacity-sensitive predictor
    #: studies (Figure 9), where table size only matters when the
    #: static load population stresses it.
    code_scale: int = 1

    def instantiate(self, seed: int) -> List[WeightedScene]:
        rng = random.Random(seed ^ 0x5EED)
        scenes: List[WeightedScene] = []
        region = 0

        def heap(kb: int) -> int:
            nonlocal region
            # Stagger region bases by a pseudo-random number of cache
            # lines: 16MB-aligned bases would map every region's first
            # line onto cache set 0, creating artificial conflict
            # thrash in both cache levels.
            stagger = (region * 97 + seed * 13) % 512 * 64
            base = HEAP_BASE + region * HEAP_REGION_BYTES + stagger
            region += 1
            if kb * KB > HEAP_REGION_BYTES - 512 * 64:
                raise ValueError("scene region exceeds heap slot")
            return base

        def pc_base(region_base: int, i: int) -> int:
            # Stagger code addresses: page-aligned scene bases would
            # alias systematically in PC-indexed predictor tables.
            return region_base + i * 0x1000 + (i * 0x94) % 0x400

        # One shared write-back scratch region: store pressure without
        # footprint growth (it stays L1-resident).
        scratch_base = heap(2)

        def scratch_stream() -> StrideStream:
            return StrideStream(scratch_base, 64, 2 * KB)

        # --- Call scenes: the collision factories --------------------------
        if self.call_weight > 0:
            n_sites = self.n_call_sites * self.code_scale
            n_flips = max(0, round(n_sites * self.phase_flip_fraction))
            for i in range(n_sites):
                gap = (self.call_gap_short if i % 2 == 0
                       else self.call_gap_long)
                gap += rng.randint(0, 2)
                flip = 400 + rng.randint(0, 400) if i < n_flips else None
                scenes.append(WeightedScene(
                    CallScene(pc_base=pc_base(0x40_0000, i),
                              n_args=2 + (i % 2), gap=gap,
                              p_reload=self.p_reload,
                              save_restore=True, frame_slot=i,
                              phase_flip_at=flip),
                    weight=self.call_weight / n_sites))

        # --- Array scenes ---------------------------------------------------
        if self.array_weight > 0:
            hot_weight = self.array_weight * (1 - self.cold_array_fraction)
            cold_weight = self.array_weight * self.cold_array_fraction
            for i in range(self.n_hot_arrays):
                extent = self.hot_array_kb * KB
                stream = StrideStream(heap(self.hot_array_kb),
                                      self.array_stride, extent)
                scenes.append(WeightedScene(
                    ArrayLoopScene(pc_base=pc_base(0x50_0000, i),
                                   streams=[stream],
                                   store_stream=scratch_stream(),
                                   fp_fraction=self.fp_fraction),
                    weight=hot_weight / self.n_hot_arrays))
            hot_bases = [sc.scene.streams[0].base for sc in scenes
                         if isinstance(sc.scene, ArrayLoopScene)]
            for i in range(self.n_cold_arrays):
                extent = self.cold_array_kb * KB
                base = heap(self.cold_array_kb)
                # Cold arrays stream line-to-line: one access per line,
                # so each cold access is one (predictable) miss rather
                # than a burst of dynamic misses.
                cold = StrideStream(base, 64, extent)
                # The hot half of the burst mix walks a *shared* hot
                # region (the first hot array) so its lines are kept
                # resident by the main loop scenes.
                hot_base = hot_bases[i % len(hot_bases)] if hot_bases \
                    else heap(2)
                hot = StrideStream(hot_base, self.array_stride,
                                   self.hot_array_kb * KB)
                stream = HotColdStream(hot, cold,
                                       p_cold_burst=self.cold_burst_p)
                out = scratch_stream()
                scenes.append(WeightedScene(
                    ArrayLoopScene(pc_base=pc_base(0x58_0000, i),
                                   streams=[cold if self.group == "SpecFP95"
                                            else stream],
                                   store_stream=out,
                                   fp_fraction=self.fp_fraction),
                    weight=cold_weight / max(1, self.n_cold_arrays)))

        # --- Pointer chase ---------------------------------------------------
        if self.chase_weight > 0:
            stream = PointerChaseStream(heap(self.chase_nodes * 64 // KB + 1),
                                        n_nodes=self.chase_nodes,
                                        perm_seed=seed + 17)
            scenes.append(WeightedScene(
                PointerChaseScene(pc_base=0x60_0000, stream=stream),
                weight=self.chase_weight))

        # --- Random access ----------------------------------------------------
        if self.random_weight > 0:
            region_stream = RandomStream(heap(self.random_region_kb),
                                         self.random_region_kb * KB)
            scenes.append(WeightedScene(
                RandomAccessScene(pc_base=0x70_0000, region=region_stream,
                                  p_alias=self.p_alias),
                weight=self.random_weight))

        # --- Branchy filler ----------------------------------------------------
        if self.branch_weight > 0:
            for i in range(self.code_scale):
                scenes.append(WeightedScene(
                    BranchScene(pc_base=pc_base(0x80_0000, i),
                                p_mispredict=self.p_mispredict,
                                scratch=scratch_stream()),
                    weight=self.branch_weight / self.code_scale))

        return scenes


# ---------------------------------------------------------------------------
# Group definitions.  Trace name lists follow the paper (Figure 7 labels the
# SysmarkNT traces cd/ex/fl/pd/pm/pp/wd/wp).
# ---------------------------------------------------------------------------

_SPECINT = WorkloadProfile(
    name="specint", group="SpecInt95",
    call_weight=3.5, array_weight=2.5, chase_weight=0.7, random_weight=0.3,
    branch_weight=2.0, cold_array_kb=128, random_region_kb=4,
    cold_burst_p=0.06, chase_nodes=32, p_mispredict=0.05)

_SPECFP = WorkloadProfile(
    name="specfp", group="SpecFP95",
    call_weight=0.8, array_weight=6.0,
    branch_weight=1.0, n_hot_arrays=2, hot_array_kb=4,
    n_cold_arrays=2, cold_array_kb=96,
    cold_array_fraction=0.045, chase_weight=0.05, random_weight=0.05,
    fp_fraction=0.35, p_reload=0.9, p_mispredict=0.01)

_SYSMARK_NT = WorkloadProfile(
    name="sysnt", group="SysmarkNT",
    call_weight=4.5, array_weight=2.0, chase_weight=0.5, random_weight=0.8,
    branch_weight=2.0, n_call_sites=8, p_reload=0.97,
    phase_flip_fraction=0.12, cold_array_kb=160, random_region_kb=8,
    cold_burst_p=0.12, p_alias=0.3, p_mispredict=0.06)

_SYSMARK_95 = WorkloadProfile(
    name="sys95", group="Sysmark95",
    call_weight=3.0, array_weight=2.5, chase_weight=0.5, random_weight=0.7,
    branch_weight=2.3, n_call_sites=7, p_reload=0.9,
    phase_flip_fraction=0.2, cold_burst_p=0.1, p_alias=0.25,
    p_mispredict=0.05)

_GAMES = WorkloadProfile(
    name="games", group="Games",
    call_weight=2.0, array_weight=4.0, chase_weight=0.5, random_weight=1.0,
    branch_weight=1.5, n_hot_arrays=3, hot_array_kb=2,
    cold_array_kb=160, fp_fraction=0.25, p_reload=0.85,
    cold_burst_p=0.06, p_mispredict=0.04)

_JAVA = WorkloadProfile(
    name="java", group="Java",
    call_weight=3.5, array_weight=1.5, chase_weight=1.0, random_weight=0.8,
    branch_weight=1.7, chase_nodes=64, p_reload=0.85, random_region_kb=4,
    p_stable_sta_addr=0.55,
    phase_flip_fraction=0.25, p_alias=0.3, p_mispredict=0.06)

_TPC = WorkloadProfile(
    name="tpc", group="TPC",
    call_weight=1.5, array_weight=1.0, chase_weight=0.8, random_weight=2.0,
    branch_weight=1.2, random_region_kb=8, chase_nodes=64,
    p_alias=0.25, cold_burst_p=0.04, p_mispredict=0.05)

_GROUP_PROFILES: Dict[str, WorkloadProfile] = {
    "SpecInt95": _SPECINT,
    "SpecFP95": _SPECFP,
    "SysmarkNT": _SYSMARK_NT,
    "Sysmark95": _SYSMARK_95,
    "Games": _GAMES,
    "Java": _JAVA,
    "TPC": _TPC,
}

#: Trace names per group, following the paper's counts (and Figure 7's
#: labels for the SysmarkNT traces).
TRACE_GROUPS: Dict[str, List[str]] = {
    "SpecInt95": ["compress", "gcc", "go", "ijpeg", "li", "m88ksim",
                  "perl", "vortex"],
    "SpecFP95": ["applu", "apsi", "fpppp", "hydro2d", "mgrid", "su2cor",
                 "swim", "tomcatv", "turb3d", "wave5"],
    "SysmarkNT": ["cd", "ex", "fl", "pd", "pm", "pp", "wd", "wp"],
    "Sysmark95": ["s95a", "s95b", "s95c", "s95d", "s95e", "s95f",
                  "s95g", "s95h"],
    "Games": ["quake", "unreal", "forsaken", "incoming", "turok"],
    "Java": ["jack", "javac", "jess", "db", "mtrt"],
    "TPC": ["tpcc", "tpcd"],
}


class UnknownTraceError(KeyError):
    """An unknown trace name, with "did you mean" suggestions.

    Subclasses :class:`KeyError` so pre-existing callers that caught
    the raw error keep working; ``__str__`` is overridden because
    ``KeyError`` would repr-quote the whole message.
    """

    def __init__(self, name: str) -> None:
        import difflib
        known = known_trace_names()
        suggestions = difflib.get_close_matches(name, known, n=3,
                                                cutoff=0.5)
        message = f"unknown trace name {name!r}."
        if suggestions:
            message += " Did you mean: " + ", ".join(suggestions) + "?"
        message += (" Known traces: "
                    + "; ".join(f"{group}: {', '.join(names)}"
                                for group, names in TRACE_GROUPS.items()))
        super().__init__(message)
        self.name = name
        self.suggestions = suggestions

    def __str__(self) -> str:
        return self.args[0]


def known_trace_names() -> List[str]:
    """Every valid trace name, in group declaration order."""
    return [name for names in TRACE_GROUPS.values() for name in names]


def resolve_trace_name(name: str) -> str:
    """Validate a trace name, raising :class:`UnknownTraceError` (with
    suggestions) when it is not one of the paper's traces."""
    for names in TRACE_GROUPS.values():
        if name in names:
            return name
    raise UnknownTraceError(name)


def group_names() -> List[str]:
    """The seven trace-group names, in declaration order."""
    return list(TRACE_GROUPS)


def group_of(trace_name: str) -> str:
    """The group a trace name belongs to.

    Raises :class:`UnknownTraceError` (a :class:`KeyError`) with
    "did you mean" suggestions for unknown names.
    """
    for group, names in TRACE_GROUPS.items():
        if trace_name in names:
            return group
    raise UnknownTraceError(trace_name)


def profile_for(trace_name: str, code_scale: int = 1) -> WorkloadProfile:
    """The workload profile used by the named trace.

    ``code_scale`` multiplies the static code footprint (see
    :attr:`WorkloadProfile.code_scale`).
    """
    profile = _GROUP_PROFILES[group_of(trace_name)]
    if code_scale != 1:
        from dataclasses import replace
        profile = replace(profile, code_scale=code_scale)
    return profile


def trace_seed(trace_name: str) -> int:
    """Deterministic per-trace seed: stable across sessions and runs."""
    group = group_of(trace_name)
    index = TRACE_GROUPS[group].index(trace_name)
    base = sorted(TRACE_GROUPS).index(group)
    return 1000 * (base + 1) + index
