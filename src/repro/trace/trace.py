"""Trace container and quick summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.common.types import Uop, UopClass


@dataclass
class Trace:
    """A dynamic uop stream plus its provenance.

    Traces are immutable by convention once built; the engine only
    iterates them.
    """

    name: str
    uops: List[Uop]
    group: str = ""
    seed: int = 0

    def __len__(self) -> int:
        return len(self.uops)

    def __iter__(self) -> Iterator[Uop]:
        return iter(self.uops)

    def __getitem__(self, index: int) -> Uop:
        return self.uops[index]

    def loads(self) -> Iterator[Uop]:
        return (u for u in self.uops if u.uclass == UopClass.LOAD)

    def stores(self) -> Iterator[Uop]:
        return (u for u in self.uops if u.uclass == UopClass.STA)

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace over ``uops[start:stop]`` (shares uop objects)."""
        return Trace(name=f"{self.name}[{start}:{stop}]",
                     uops=self.uops[start:stop], group=self.group,
                     seed=self.seed)


@dataclass(frozen=True)
class TraceSummary:
    """Headline mix statistics of a trace."""

    n_uops: int
    n_loads: int
    n_stores: int
    n_branches: int
    n_static_load_pcs: int
    load_fraction: float
    store_fraction: float

    def __str__(self) -> str:
        return (f"{self.n_uops} uops: {self.load_fraction:.1%} loads, "
                f"{self.store_fraction:.1%} stores, "
                f"{self.n_static_load_pcs} static load PCs")


def summarize(trace: Trace) -> TraceSummary:
    """Compute the mix summary of ``trace``."""
    n_loads = n_stores = n_branches = 0
    load_pcs = set()
    for uop in trace.uops:
        if uop.uclass == UopClass.LOAD:
            n_loads += 1
            load_pcs.add(uop.pc)
        elif uop.uclass == UopClass.STA:
            n_stores += 1
        elif uop.uclass == UopClass.BRANCH:
            n_branches += 1
    n = len(trace.uops)
    return TraceSummary(
        n_uops=n,
        n_loads=n_loads,
        n_stores=n_stores,
        n_branches=n_branches,
        n_static_load_pcs=len(load_pcs),
        load_fraction=n_loads / n if n else 0.0,
        store_fraction=n_stores / n if n else 0.0,
    )


def validate(trace: Trace) -> None:
    """Structural sanity checks; raises ``ValueError`` on violation.

    * sequence numbers are dense and increasing;
    * every STD points at an earlier STA with the same pc;
    * loads and STAs carry memory accesses.
    """
    sta_seqs = {}
    for i, uop in enumerate(trace.uops):
        if uop.seq != i:
            raise ValueError(f"uop {i} has seq {uop.seq}; expected dense seqs")
        if uop.uclass == UopClass.STA:
            sta_seqs[uop.seq] = uop
        elif uop.uclass == UopClass.STD:
            if uop.sta_seq not in sta_seqs:
                raise ValueError(f"STD at seq {uop.seq} has no earlier STA")
