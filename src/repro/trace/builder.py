"""Synthetic program builder.

A trace is produced by repeatedly executing *scenes* — static code
fragments with fixed instruction pointers — chosen by weighted random
selection.  Because scene PCs are fixed, every dynamic execution of a
scene re-visits the same static load/store sites, giving the predictors
the per-PC recurrence they rely on.

Scene catalogue (mirrors the behaviours sections 2.1-2.3 call out):

* :class:`CallScene` — push/load parameter pairs and register
  save/restore across a simulated call: the canonical *colliding* loads.
* :class:`ArrayLoopScene` — strided array walks: periodic misses,
  periodic banks, no collisions.
* :class:`PointerChaseScene` — dependent-chain loads over a fixed
  permutation: latency-bound, miss rate set by working-set size.
* :class:`RandomAccessScene` — TPC-style random reads/writes with
  occasional read-after-write to the same slot: irregular collisions.
* :class:`BranchScene` — control-flow filler with tunable
  predictability (exercises the front end).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.types import MemAccess, Uop, UopClass
from repro.trace.streams import (
    AddressStream,
    HotColdStream,
    PointerChaseStream,
    RandomStream,
    StrideStream,
)
from repro.trace.trace import Trace

N_ARCH_REGS = 16

#: Registers reserved as stable bases (stack/globals): they are never
#: allocated as destinations, so values read from them are always ready
#: at rename — mirroring real code, where load/store addresses usually
#: come from long-lived base registers while store *data* is freshly
#: computed ("the store address is often calculated before the data",
#: section 1.1).
STABLE_REGS = (14, 15)
N_ALLOC_REGS = 14

#: Address-space carve-up (byte addresses).  Regions are far apart so
#: cross-scene accidental collisions cannot happen; stack is shared so
#: call scenes interact realistically.
STACK_BASE = 0x7FFF_0000
HEAP_BASE = 0x1000_0000
HEAP_REGION_BYTES = 0x0100_0000


class TraceBuilder:
    """Accumulates uops, managing sequence numbers, registers and stack."""

    def __init__(self, p_stable_load_addr: float = 0.85,
                 p_stable_sta_addr: float = 0.7) -> None:
        self.uops: List[Uop] = []
        self._next_reg = 0
        self._recent_dsts: List[int] = [0]
        self.stack_pointer = STACK_BASE
        self.p_stable_load_addr = p_stable_load_addr
        self.p_stable_sta_addr = p_stable_sta_addr
        self._recent_load_dsts: List[int] = []

    # -- register plumbing --------------------------------------------------

    def _alloc_reg(self) -> int:
        reg = self._next_reg
        self._next_reg = (self._next_reg + 1) % N_ALLOC_REGS
        self._recent_dsts.append(reg)
        if len(self._recent_dsts) > 8:
            self._recent_dsts.pop(0)
        return reg

    def pick_src(self, rng: random.Random, depth: int = 4) -> int:
        """A source register among recently produced values."""
        pool = self._recent_dsts[-depth:]
        return rng.choice(pool)

    def addr_src_for(self, rng: random.Random, p_stable: float) -> int:
        """An address register: stable base or recent computation.

        Non-stable addresses chain off a recent load result when one is
        available (pointer dereference / computed address through a
        loaded value) — these are the accesses whose address generation
        is genuinely late, keeping STAs unresolved at the time younger
        loads reach their dispatch opportunity.
        """
        if rng.random() < p_stable:
            return rng.choice(STABLE_REGS)
        if self._recent_load_dsts and rng.random() < 0.6:
            return rng.choice(self._recent_load_dsts)
        return self.pick_src(rng)

    # -- uop emission -------------------------------------------------------

    def emit_int(self, pc: int, rng: random.Random,
                 srcs: Optional[Tuple[int, ...]] = None,
                 uclass: UopClass = UopClass.INT) -> Uop:
        if srcs is None:
            srcs = (self.pick_src(rng),)
        uop = Uop(seq=len(self.uops), pc=pc, uclass=uclass, srcs=srcs,
                  dst=self._alloc_reg())
        self.uops.append(uop)
        return uop

    def emit_load(self, pc: int, address: int, rng: random.Random,
                  addr_src: Optional[int] = None) -> Uop:
        if addr_src is None:
            addr_src = self.addr_src_for(rng, self.p_stable_load_addr)
        uop = Uop(seq=len(self.uops), pc=pc, uclass=UopClass.LOAD,
                  srcs=(addr_src,), dst=self._alloc_reg(),
                  mem=MemAccess(address))
        self.uops.append(uop)
        self._recent_load_dsts.append(uop.dst)
        if len(self._recent_load_dsts) > 4:
            self._recent_load_dsts.pop(0)
        return uop

    def emit_store(self, pc: int, address: int, rng: random.Random,
                   data_src: Optional[int] = None,
                   p_stable_addr: Optional[float] = None) -> Tuple[Uop, Uop]:
        """Emit the STA/STD pair for one store (P6 decomposition).

        The STA's address register is usually a stable base (executes
        early); the STD's data register is a recently produced value
        (executes late) — the asymmetry the P6 decomposition exploits.
        ``p_stable_addr`` overrides the builder default: stack pushes
        pass a high value (sp-relative addresses resolve early), output
        and spill stores a low one (computed addresses resolve late).
        """
        if p_stable_addr is None:
            p_stable_addr = self.p_stable_sta_addr
        sta = Uop(seq=len(self.uops), pc=pc, uclass=UopClass.STA,
                  srcs=(self.addr_src_for(rng, p_stable_addr),),
                  mem=MemAccess(address))
        self.uops.append(sta)
        src = data_src if data_src is not None else self.pick_src(rng, depth=2)
        std = Uop(seq=len(self.uops), pc=pc + 1, uclass=UopClass.STD,
                  srcs=(src,), sta_seq=sta.seq)
        self.uops.append(std)
        return sta, std

    def emit_branch(self, pc: int, rng: random.Random, p_taken: float,
                    p_mispredict: float) -> Uop:
        uop = Uop(seq=len(self.uops), pc=pc, uclass=UopClass.BRANCH,
                  srcs=(self.pick_src(rng),), dst=None,
                  taken=rng.random() < p_taken,
                  mispredicted=rng.random() < p_mispredict)
        self.uops.append(uop)
        return uop

    def emit_filler(self, pc_base: int, rng: random.Random, count: int,
                    fp_fraction: float = 0.0) -> None:
        """Emit ``count`` ALU uops (INT, with an FP sprinkle)."""
        for i in range(count):
            uclass = (UopClass.FP if rng.random() < fp_fraction
                      else UopClass.INT)
            self.emit_int(pc_base + 4 * i, rng, uclass=uclass)

    def __len__(self) -> int:
        return len(self.uops)


class Scene(abc.ABC):
    """A static code fragment executed many times at fixed PCs."""

    def __init__(self, pc_base: int) -> None:
        self.pc_base = pc_base
        self.visits = 0

    @abc.abstractmethod
    def emit(self, builder: TraceBuilder, rng: random.Random) -> None:
        """Append one dynamic execution of the scene."""

    def run(self, builder: TraceBuilder, rng: random.Random) -> None:
        self.visits += 1
        self.emit(builder, rng)


class CallScene(Scene):
    """A call site: push arguments, enter callee, load them back.

    Parameters
    ----------
    n_args:
        Arguments pushed (stores) and reloaded in the callee.
    gap:
        Filler uops between the pushes and the argument loads.  A small
        gap keeps the stores un-executed when the loads become ready —
        true collisions; a large gap lets stores drain first.
    p_reload:
        Probability a given argument is actually reloaded from memory
        this visit (otherwise it stays in a register — the load site's
        behaviour varies, which non-sticky predictors can track).
    save_restore:
        Whether to add a register save (store at entry) / restore
        (load at exit) pair — the second colliding idiom of section 2.1.
    phase_flip_at:
        If set, after this many visits the scene stops reloading from
        the stack (simulating a program phase change: colliding loads
        turning non-colliding).
    """

    def __init__(self, pc_base: int, n_args: int = 2, gap: int = 3,
                 p_reload: float = 1.0, save_restore: bool = True,
                 frame_bytes: int = 64, frame_slot: int = 0,
                 phase_flip_at: Optional[int] = None) -> None:
        super().__init__(pc_base)
        self.n_args = n_args
        self.gap = gap
        self.p_reload = p_reload
        self.save_restore = save_restore
        self.frame_bytes = frame_bytes
        #: Each call site owns a distinct stack slice, as different call
        #: sites sit at different stack depths in real programs.  This
        #: keeps collision behaviour consistent per load PC (no erratic
        #: cross-site frame aliasing).
        self.frame_slot = frame_slot
        self.phase_flip_at = phase_flip_at

    def emit(self, builder: TraceBuilder, rng: random.Random) -> None:
        pc = self.pc_base
        sp = STACK_BASE - (self.frame_slot + 1) * 2 * self.frame_bytes
        reload_now = self.p_reload
        if self.phase_flip_at is not None and self.visits > self.phase_flip_at:
            reload_now = 0.0

        # Push arguments (stores to the new frame's argument slots).
        # Push addresses are sp-relative: known early (high stability).
        # Half the arguments were computed long ago (data ready at
        # rename); the rest are freshly produced values whose STD
        # resolves late — those are the pushes the reloads collide with.
        for i in range(self.n_args):
            data_src = (rng.choice(STABLE_REGS) if rng.random() < 0.45
                        else None)
            builder.emit_store(pc + 8 * i, sp + 8 + 4 * i, rng,
                               data_src=data_src, p_stable_addr=0.95)
        pc += 8 * self.n_args

        if self.save_restore:
            builder.emit_store(pc, sp + 4, rng,
                               p_stable_addr=0.95)  # save a callee-saved reg
            pc += 4

        # Callee-local store: a computed (late) address that no later
        # load in the window reads.  This is the unresolved STA that
        # makes the argument reloads *conflicting* — and under the
        # Traditional scheme needlessly delays them.  PC offsets are
        # static whether or not the store is emitted this visit, so
        # every site keeps a single instruction pointer.
        gap_head = self.gap // 2
        builder.emit_filler(pc, rng, gap_head)
        pc += 4 * gap_head
        if rng.random() < 0.7:
            data = rng.choice(STABLE_REGS) if rng.random() < 0.6 else None
            builder.emit_store(pc, sp + 32 + 4 * (self.visits % 8), rng,
                               data_src=data, p_stable_addr=0.25)
        pc += 8
        builder.emit_filler(pc, rng, self.gap - gap_head)
        pc += 4 * (self.gap - gap_head)

        # Callee body: reload the arguments (colliding loads) and use them.
        for i in range(self.n_args):
            if rng.random() < reload_now:
                load = builder.emit_load(pc + 8 * i, sp + 8 + 4 * i, rng)
                builder.emit_int(pc + 8 * i + 4, rng, srcs=(load.dst,))
            else:
                builder.emit_filler(pc + 8 * i, rng, 2)
        pc += 8 * self.n_args

        if self.save_restore:
            restore = builder.emit_load(pc, sp + 4, rng)
            builder.emit_int(pc + 4, rng, srcs=(restore.dst,))
            pc += 8

        # "return": the frame is popped (no explicit bookkeeping needed
        # since each site owns its slice).


class ArrayLoopScene(Scene):
    """One iteration burst of a strided loop over heap arrays."""

    def __init__(self, pc_base: int, streams: Sequence[AddressStream],
                 iters_per_visit: int = 4, uses_per_load: int = 2,
                 store_stream: Optional[AddressStream] = None,
                 p_store: float = 0.4, fp_fraction: float = 0.0) -> None:
        super().__init__(pc_base)
        if not streams:
            raise ValueError("need at least one load stream")
        self.streams = list(streams)
        self.iters_per_visit = iters_per_visit
        self.uses_per_load = uses_per_load
        self.store_stream = store_stream
        self.p_store = p_store
        self.fp_fraction = fp_fraction

    def emit(self, builder: TraceBuilder, rng: random.Random) -> None:
        for _ in range(self.iters_per_visit):
            pc = self.pc_base
            for s, stream in enumerate(self.streams):
                load = builder.emit_load(pc + 16 * s, stream.next(rng), rng)
                for u in range(self.uses_per_load):
                    uclass = (UopClass.FP
                              if rng.random() < self.fp_fraction
                              else UopClass.INT)
                    builder.emit_int(pc + 16 * s + 4 * (u + 1), rng,
                                     srcs=(load.dst,), uclass=uclass)
            pc += 16 * len(self.streams)
            # Loop output store (result write-back): its address never
            # matches a later load in the window, so nearby loads become
            # conflicting-but-not-colliding — the advanceable majority.
            if self.store_stream is not None \
                    and rng.random() < self.p_store:
                data = (rng.choice(STABLE_REGS)
                        if rng.random() < 0.6 else None)
                builder.emit_store(pc, self.store_stream.next(rng), rng,
                                   data_src=data, p_stable_addr=0.3)
            pc += 8
            builder.emit_branch(pc, rng, p_taken=0.95, p_mispredict=0.01)


class PointerChaseScene(Scene):
    """Dependent-chain loads following a fixed permutation."""

    def __init__(self, pc_base: int, stream: PointerChaseStream,
                 hops_per_visit: int = 6) -> None:
        super().__init__(pc_base)
        self.stream = stream
        self.hops_per_visit = hops_per_visit

    def emit(self, builder: TraceBuilder, rng: random.Random) -> None:
        prev_dst: Optional[int] = None
        for hop in range(self.hops_per_visit):
            address = self.stream.next(rng)
            load = builder.emit_load(self.pc_base, address, rng,
                                     addr_src=prev_dst)
            builder.emit_int(self.pc_base + 4, rng, srcs=(load.dst,))
            prev_dst = load.dst


class RandomAccessScene(Scene):
    """Random reads/writes over a region with read-after-write aliasing.

    With probability ``p_alias`` a load re-reads the slot just written —
    an *irregular* collision that the same static load PC sometimes does
    and sometimes does not exhibit.
    """

    def __init__(self, pc_base: int, region: RandomStream,
                 ops_per_visit: int = 4, p_store: float = 0.3,
                 p_alias: float = 0.25) -> None:
        super().__init__(pc_base)
        self.region = region
        self.ops_per_visit = ops_per_visit
        self.p_store = p_store
        self.p_alias = p_alias
        self._last_written: Optional[int] = None

    def emit(self, builder: TraceBuilder, rng: random.Random) -> None:
        pc = self.pc_base
        for i in range(self.ops_per_visit):
            if rng.random() < self.p_store:
                address = self.region.next(rng)
                builder.emit_store(pc + 12 * i, address, rng)
                self._last_written = address
            else:
                if (self._last_written is not None
                        and rng.random() < self.p_alias):
                    address = self._last_written
                else:
                    address = self.region.next(rng)
                load = builder.emit_load(pc + 12 * i + 8, address, rng)
                builder.emit_int(pc + 12 * i + 4, rng, srcs=(load.dst,))


class BranchScene(Scene):
    """Short blocks of compute separated by branches."""

    def __init__(self, pc_base: int, n_branches: int = 3,
                 block_size: int = 3, p_taken: float = 0.6,
                 p_mispredict: float = 0.05,
                 scratch: Optional[AddressStream] = None,
                 p_store: float = 0.5) -> None:
        super().__init__(pc_base)
        self.n_branches = n_branches
        self.block_size = block_size
        self.p_taken = p_taken
        self.p_mispredict = p_mispredict
        self.scratch = scratch
        self.p_store = p_store

    def emit(self, builder: TraceBuilder, rng: random.Random) -> None:
        pc = self.pc_base
        for b in range(self.n_branches):
            builder.emit_filler(pc, rng, self.block_size)
            pc += 4 * self.block_size
            # Spill stores: write-only scratch traffic that creates
            # store pressure (conflicts) without collisions.
            if self.scratch is not None and rng.random() < self.p_store:
                data = (rng.choice(STABLE_REGS)
                        if rng.random() < 0.6 else None)
                builder.emit_store(pc, self.scratch.next(rng), rng,
                                   data_src=data, p_stable_addr=0.3)
            pc += 8
            builder.emit_branch(pc, rng, self.p_taken, self.p_mispredict)
            pc += 4


@dataclass
class WeightedScene:
    """A scene with its selection weight in the trace mix."""

    scene: Scene
    weight: float


def build_from_scenes(name: str, scenes: Sequence[WeightedScene],
                      n_uops: int, seed: int, group: str = "",
                      p_stable_load_addr: float = 0.85,
                      p_stable_sta_addr: float = 0.7) -> Trace:
    """Run weighted scene selection until at least ``n_uops`` are emitted."""
    if not scenes:
        raise ValueError("need at least one scene")
    rng = random.Random(seed)
    builder = TraceBuilder(p_stable_load_addr=p_stable_load_addr,
                           p_stable_sta_addr=p_stable_sta_addr)
    population = [ws.scene for ws in scenes]
    weights = [ws.weight for ws in scenes]
    while len(builder) < n_uops:
        scene = rng.choices(population, weights=weights, k=1)[0]
        scene.run(builder, rng)
    return Trace(name=name, uops=builder.uops, group=group, seed=seed)


def build_trace(profile, n_uops: int, seed: int, name: Optional[str] = None):
    """Build a trace from a :class:`repro.trace.workloads.WorkloadProfile`.

    Defined here (not in ``workloads``) to keep the profile module
    declarative; re-exported through the package namespace.
    """
    scenes = profile.instantiate(seed)
    return build_from_scenes(
        name or profile.name, scenes, n_uops, seed, group=profile.group,
        p_stable_load_addr=profile.p_stable_load_addr,
        p_stable_sta_addr=profile.p_stable_sta_addr)
