"""Synthetic trace substrate.

The paper drives its simulator with 30M-instruction IA-32 traces of
SpecInt95, SpecFP95, SysmarkNT, Sysmark95, Games, Java and TPC.  Those
traces are proprietary, so this package synthesises equivalents: static
program skeletons (call sites with push/load parameter pairs, register
save/restore, array loops, pointer chases) executed with stochastic
control flow.  Each of the seven workload profiles is calibrated so the
load-classification mix, L1 miss rate, and bank/miss predictability match
the per-group statistics reported in section 4.

The key property preserved is *per-static-load behavioural recurrence*:
colliding loads tend to collide again, miss behaviour is bursty and
history-correlated, and bank sequences follow stride patterns — exactly
the regularities the CHT, hit-miss and bank predictors exploit.
"""

from repro.trace.streams import (
    AddressStream,
    StrideStream,
    RandomStream,
    PointerChaseStream,
    HotColdStream,
)
from repro.trace.trace import Trace, TraceSummary, summarize
from repro.trace.workloads import (
    WorkloadProfile,
    TRACE_GROUPS,
    profile_for,
    group_names,
)
from repro.trace.builder import TraceBuilder, build_trace
from repro.trace import io as trace_io

__all__ = [
    "AddressStream",
    "StrideStream",
    "RandomStream",
    "PointerChaseStream",
    "HotColdStream",
    "Trace",
    "TraceSummary",
    "summarize",
    "WorkloadProfile",
    "TRACE_GROUPS",
    "profile_for",
    "group_names",
    "TraceBuilder",
    "build_trace",
    "trace_io",
]
