"""Text rendering helpers: aligned tables, bar charts and line plots.

The experiment harnesses print the paper's figures as text; these
helpers make the output read like the figures rather than raw tables —
horizontal bars for the classification/accuracy figures and multi-series
line plots for the metric curves.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

BAR_CHAR = "#"
FILL_CHAR = "."


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 40,
              max_value: Optional[float] = None,
              value_format: str = "{:.3f}", title: str = "") -> str:
    """Horizontal bar chart: one labelled bar per (label, value) row."""
    if not rows:
        return title
    peak = max_value if max_value is not None else max(v for _, v in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines: List[str] = [title] if title else []
    for label, value in rows:
        filled = int(round(width * min(value, peak) / peak))
        bar = BAR_CHAR * filled + FILL_CHAR * (width - filled)
        lines.append(f"{label.ljust(label_width)} |{bar}| "
                     f"{value_format.format(value)}")
    return "\n".join(lines)


def stacked_bar_chart(rows: Sequence[Tuple[str, Mapping[str, float]]],
                      segment_chars: Mapping[str, str],
                      width: int = 40, title: str = "") -> str:
    """Stacked horizontal bars for fraction breakdowns (sum <= 1).

    ``segment_chars`` maps each segment name to its one-character fill,
    in drawing order; a legend line is appended.
    """
    if not rows:
        return title
    label_width = max(len(label) for label, _ in rows)
    lines: List[str] = [title] if title else []
    for label, segments in rows:
        bar = ""
        for name, char in segment_chars.items():
            value = segments.get(name, 0.0)
            bar += char * int(round(width * value))
        bar = bar[:width].ljust(width, " ")
        lines.append(f"{label.ljust(label_width)} |{bar}|")
    legend = "  ".join(f"{char}={name}"
                       for name, char in segment_chars.items())
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def line_plot(series: Mapping[str, Sequence[Tuple[float, float]]],
              width: int = 60, height: int = 16, title: str = "",
              x_label: str = "", y_label: str = "") -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series is a list of (x, y) points; the k-th series is drawn
    with the k-th marker character.  Later series overwrite earlier
    ones where they coincide.
    """
    markers = "ABCDEFGH*+ox"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        grid[height - 1 - row][col] = marker

    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            plot(x, y, marker)

    lines: List[str] = [title] if title else []
    lines.append(f"{y_hi:8.2f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:8.2f} +" + "-" * width + "+")
    lines.append(" " * 10 + f"{x_lo:<8.2f}"
                 + " " * max(0, width - 16) + f"{x_hi:>8.2f}")
    legend = "  ".join(f"{marker}={name}" for (name, _), marker
                       in zip(series.items(), markers))
    lines.append(" " * 10 + legend)
    if x_label:
        lines.append(" " * 10 + f"x: {x_label}")
    if y_label:
        lines.append(" " * 10 + f"y: {y_label}")
    return "\n".join(lines)


def speedup_chart(speedups: Mapping[str, float], width: int = 40,
                  title: str = "") -> str:
    """Bar chart of speedups with the 1.0 baseline subtracted out."""
    rows = [(name, max(0.0, value - 1.0))
            for name, value in speedups.items()]
    peak = max((v for _, v in rows), default=0.0) or 1.0
    chart = bar_chart(rows, width=width, max_value=peak,
                      value_format="+{:.1%}", title=title)
    return chart
