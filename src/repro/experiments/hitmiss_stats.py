"""Figure 10: hit-miss predictor statistical accuracy.

For each trace group (SpecFP95, SpecInt95, SysmarkNT, Others) the paper
reports — as fractions of all loads — the actual miss rate (MISSES),
the misses the predictor catches (AM-PM), and the hits it mispredicts
as misses (AH-PM), for the local-only predictor and for the hybrid
chooser.  Headlines: the local predictor catches 34-85 % of misses at
0.07-0.32 % false-miss cost; the chooser cuts the false misses several
fold "while sacrificing little in the AM-PM rate"; AM-PM outweighs
AH-PM by at least 5:1.

Methodology matches the paper's "statistical simulations (no effect on
scheduling)": one engine pass records the (pc, hit) outcome stream;
each predictor replays it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.api import PredictorSpec, build_predictor, spec_for
from repro.engine.machine import Machine
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
)
from repro.hitmiss.base import HitMissPredictor, HitMissStats
from repro.hitmiss.oracle import AlwaysHitHMP
from repro.parallel import SimJob, run_jobs, sim_job


@dataclass(frozen=True)
class HitMissEvent:
    """One dynamic load's L1 outcome, in execution order."""

    pc: int
    line: int
    now: int
    hit: bool


class _RecordingHMP(AlwaysHitHMP):
    """Baseline predictor that records the resolved outcome stream."""

    def __init__(self) -> None:
        self.events: List[HitMissEvent] = []

    def update(self, pc, hit, line=None, now=0):  # type: ignore[override]
        self.events.append(HitMissEvent(pc=pc, line=line or 0, now=now,
                                        hit=hit))


@lru_cache(maxsize=64)
def _hitmiss_events(name: str, n_uops: int) -> Tuple[HitMissEvent, ...]:
    trace = get_trace(name, n_uops)
    recorder = _RecordingHMP()
    Machine(hmp=recorder).run(trace)
    return tuple(recorder.events)


def hitmiss_events(names: Sequence[str],
                   settings: ExperimentSettings = DEFAULT_SETTINGS
                   ) -> List[Tuple[str, Tuple[HitMissEvent, ...]]]:
    """The recorded per-trace (pc, line, hit) outcome streams."""
    return [(n, _hitmiss_events(n, settings.n_uops)) for n in names]


def replay(events: Sequence[HitMissEvent], hmp: HitMissPredictor,
           warm: bool = False) -> HitMissStats:
    """Replay an outcome stream through a predictor (predict → train).

    ``warm=True`` trains on one full pass first and measures the
    second, emulating the steady state the paper's 30M-instruction
    traces reach (cold-start mispredictions amortised away).

    A predictor constructed with ``backend="vectorized"`` replays
    through the batch kernels of :mod:`repro.fastpath` — by contract
    bit-identical to the scalar loop below (pinned by
    ``tests/fastpath/``).
    """
    import repro.fastpath as fastpath
    if fastpath.enabled(hmp):
        from repro.fastpath import hitmiss as fp_hitmiss
        if fp_hitmiss.supports(hmp):
            return _replay_vectorized(events, hmp, warm)
    if warm:
        for event in events:
            hmp.update(event.pc, event.hit, event.line, event.now)
    stats = HitMissStats()
    for event in events:
        predicted_hit = hmp.predict_hit(event.pc, event.line, event.now)
        stats.record(event.hit, predicted_hit)
        hmp.update(event.pc, event.hit, event.line, event.now)
    return stats


def _replay_vectorized(events: Sequence[HitMissEvent],
                       hmp: HitMissPredictor, warm: bool) -> HitMissStats:
    """The fastpath replay: batch kernels plus vectorized accounting."""
    from repro.common.types import HitMissClass
    from repro.fastpath.hitmiss import event_arrays, replay_hits
    pcs, hits = event_arrays(events)
    if warm:  # predictions are pure, so a discarded replay trains
        replay_hits(hmp, pcs, hits)
    predicted = replay_hits(hmp, pcs, hits)
    stats = HitMissStats()
    stats.counts[HitMissClass.AH_PH] = int((hits & predicted).sum())
    stats.counts[HitMissClass.AH_PM] = int((hits & ~predicted).sum())
    stats.counts[HitMissClass.AM_PH] = int((~hits & predicted).sum())
    stats.counts[HitMissClass.AM_PM] = int((~hits & ~predicted).sum())
    return stats


#: Figure 10's grouping ("Others" = Games + Java + TPC).
FIG10_GROUPS: Dict[str, Tuple[str, ...]] = {
    "SpecFP": ("SpecFP95",),
    "SpecINT": ("SpecInt95",),
    "SysmarkNT": ("SysmarkNT",),
    "Others": ("Games", "Java", "TPC"),
}

#: (label, spec) — Figure 10's two contenders, as
#: :class:`~repro.api.spec.PredictorSpec` values built through
#: :func:`repro.api.build_predictor`.
PREDICTORS: Tuple[Tuple[str, PredictorSpec], ...] = (
    ("local", spec_for("hmp.local", size=2048, history=8)),
    ("chooser", spec_for("hmp.hybrid")),
)


@sim_job("hitmiss-accuracy")
def _hitmiss_trace_leaf(name: str, n_uops: int,
                        warm: bool) -> Dict[str, HitMissStats]:
    """One trace: record the outcome stream, replay every predictor."""
    events = _hitmiss_events(name, n_uops)
    return {pred_label: replay(events, build_predictor(spec), warm=warm)
            for pred_label, spec in PREDICTORS}


def run_fig10(settings: ExperimentSettings = DEFAULT_SETTINGS,
              warm: bool = True) -> Dict:
    """Measure the Figure 10 predictor accuracies per group."""
    grid: List[Tuple[str, str]] = []
    for group_label, group_names in FIG10_GROUPS.items():
        for g in group_names:
            for name in group_traces(g, settings):
                grid.append((group_label, name))
    jobs = [SimJob.make(_hitmiss_trace_leaf,
                        key=("hitmiss-accuracy", name),
                        name=name, n_uops=settings.n_uops, warm=warm)
            for _, name in grid]
    per_trace = run_jobs(jobs, settings)
    by_group: Dict[str, List[Dict[str, HitMissStats]]] = {}
    for (group_label, _), stats in zip(grid, per_trace):
        by_group.setdefault(group_label, []).append(stats)
    rows: List[Dict] = []
    for group_label in FIG10_GROUPS:
        for pred_label, _ in PREDICTORS:
            total = HitMissStats()
            for stats in by_group[group_label]:
                total.merge(stats[pred_label])
            rows.append({
                "group": group_label,
                "predictor": pred_label,
                "misses": total.miss_rate,
                "am_pm": total.am_pm_fraction,
                "ah_pm": total.ah_pm_fraction,
                "coverage": total.miss_coverage,
                "ratio": total.catch_to_false_ratio,
            })
    return {"figure": "fig10", "rows": rows}


def render_fig10(data: Dict) -> str:
    """Render the Figure 10 table."""
    rows = [[r["group"], r["predictor"], r["misses"], r["am_pm"],
             r["ah_pm"], r["coverage"],
             ("inf" if r["ratio"] == float("inf") else round(r["ratio"], 1))]
            for r in data["rows"]]
    return format_table(
        ["group", "predictor", "MISSES", "AM-PM", "AH-PM", "coverage",
         "AM-PM:AH-PM"],
        rows,
        title="Figure 10 — hit-miss predictor accuracy "
              "(fractions of all loads)")
