"""Experiment harnesses — one per figure of the paper's evaluation.

Each module exposes a ``run(...)`` function returning plain data plus a
``render(...)`` helper producing the text table/series the paper's
figure reports.  ``python -m repro.experiments <fig>`` runs one from the
command line; ``python -m repro.experiments all`` regenerates everything
(this is how EXPERIMENTS.md is produced).

==========  ==========================================================
fig5        load scheduling classification per trace group
fig6        classification vs. scheduling window size (SysmarkNT)
fig7        speedup vs. memory ordering scheme (SysmarkNT traces)
fig8        speedup vs. machine configuration (EU/MEM sweep)
fig9        CHT organisation/size accuracy sweep
fig10       hit-miss predictor statistical accuracy per group
fig11       hit-miss prediction speedup
fig12       bank predictor metric vs. misprediction penalty
==========  ==========================================================
"""

from repro.experiments.harness import (
    ExperimentSettings,
    get_trace,
    group_traces,
    format_table,
)
from repro.experiments import (
    classification,
    ordering_speedup,
    machine_sweep,
    cht_accuracy,
    hitmiss_stats,
    hitmiss_speedup,
    bank_metric,
    extensions,
)

EXPERIMENTS = {
    "fig5": classification.run_fig5,
    "fig6": classification.run_fig6,
    "fig7": ordering_speedup.run_fig7,
    "fig8": machine_sweep.run_fig8,
    "fig9": cht_accuracy.run_fig9,
    "fig10": hitmiss_stats.run_fig10,
    "fig11": hitmiss_speedup.run_fig11,
    "fig12": bank_metric.run_fig12,
    "ext-penalty": extensions.run_penalty_sweep,
    "ext-prior-art": extensions.run_prior_art,
    "ext-smt": extensions.run_smt,
    "ext-bank-perf": extensions.run_bank_perf,
    "ext-prefetch": extensions.run_prefetch,
}

__all__ = [
    "ExperimentSettings",
    "get_trace",
    "group_traces",
    "format_table",
    "EXPERIMENTS",
    "classification",
    "ordering_speedup",
    "machine_sweep",
    "cht_accuracy",
    "hitmiss_stats",
    "hitmiss_speedup",
    "bank_metric",
    "extensions",
]
