"""Command-line entry point: ``python -m repro.experiments <figure>``.

Examples::

    python -m repro.experiments fig7
    python -m repro.experiments all --uops 50000 --traces-per-group 3
    python -m repro.experiments fig9 --json fig9.json
    python -m repro.experiments classification --workers 4 \\
        --cache-dir .exp-cache --json a.json

Figures accept either the paper's figure ids (``fig5``..``fig12``,
``ext-*``) or the experiment-module aliases (``classification`` =
fig5+fig6, ``hitmiss_speedup`` = fig11, ...).  ``--workers N`` shards
the experiment grid over a process pool; ``--cache-dir`` adds a
content-addressed on-disk result cache so repeated runs replay instead
of re-simulating (see docs/parallel.md).  Both are output-invariant:
the ``--json`` payload is byte-identical across serial, parallel and
cached runs.

Failed jobs are retried (``--retries``, with exponential backoff) and
hung jobs time out (``--timeout``); worker deaths rebuild the pool and
fall back to serial execution — see docs/robustness.md.  A figure
whose jobs still fail after all that is recorded and skipped (or, with
``--fail-fast``, aborts the remaining figures); either way every
completed figure's data is still written to ``--json`` and the run
manifest gains a ``healing`` section describing the degradation.
``--chaos SPEC`` injects deterministic faults for testing the above.

Exit codes
----------

==  ============================================================
0   every requested figure completed
2   usage error (bad figure, trace name, or flag value)
3   degraded: at least one job/figure ultimately failed; partial
    ``--json`` / manifest artifacts were still written
==  ============================================================
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments import EXPERIMENTS
from repro.experiments.harness import ExperimentSettings
from repro.experiments import (
    bank_metric,
    classification,
    cht_accuracy,
    extensions,
    hitmiss_speedup,
    hitmiss_stats,
    machine_sweep,
    ordering_speedup,
)
from repro.parallel import ExecutionPlan, JobFailure, RunReport, execution
from repro.robust.faults import corrupt_cache, parse_chaos_spec

#: Exit status when the run completed but lost at least one job/figure.
EXIT_DEGRADED = 3

RENDERERS: Dict[str, Callable] = {
    "fig5": classification.render_fig5,
    "fig6": classification.render_fig6,
    "fig7": ordering_speedup.render_fig7,
    "fig8": machine_sweep.render_fig8,
    "fig9": cht_accuracy.render_fig9,
    "fig10": hitmiss_stats.render_fig10,
    "fig11": hitmiss_speedup.render_fig11,
    "fig12": bank_metric.render_fig12,
    "ext-penalty": extensions.render_penalty_sweep,
    "ext-prior-art": extensions.render_prior_art,
    "ext-smt": extensions.render_smt,
    "ext-bank-perf": extensions.render_bank_perf,
    "ext-prefetch": extensions.render_prefetch,
}

#: Module-name aliases: one experiment module = one or more figures.
ALIASES: Dict[str, Tuple[str, ...]] = {
    "classification": ("fig5", "fig6"),
    "ordering_speedup": ("fig7",),
    "machine_sweep": ("fig8",),
    "cht_accuracy": ("fig9",),
    "hitmiss_stats": ("fig10",),
    "hitmiss_speedup": ("fig11",),
    "bank_metric": ("fig12",),
    "extensions": ("ext-bank-perf", "ext-penalty", "ext-prefetch",
                   "ext-prior-art", "ext-smt"),
}


def _expand_figures(selector: str) -> List[str]:
    if selector == "all":
        # Paper figures first, extension studies after.
        figures = sorted(n for n in EXPERIMENTS if n.startswith("fig"))
        figures += sorted(n for n in EXPERIMENTS if n.startswith("ext"))
        return figures
    if selector in ALIASES:
        return list(ALIASES[selector])
    return [selector]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.")
    parser.add_argument("figure",
                        choices=sorted(EXPERIMENTS) + sorted(ALIASES)
                        + ["all"],
                        help="which figure (or experiment module) to "
                             "regenerate")
    parser.add_argument("--uops", type=int, default=30_000,
                        help="dynamic uops per trace (default 30000)")
    parser.add_argument("--traces-per-group", type=int, default=2,
                        help="traces per group; 0 = the full roster")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="shard the experiment grid over N worker "
                             "processes (0/1 = serial)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed on-disk result/trace "
                             "cache; repeated runs replay cached "
                             "simulations instead of recomputing them")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir (neither read nor "
                             "write cache entries)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="re-run a failed/timed-out job up to N "
                             "times with exponential backoff "
                             "(default 2)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job timeout (pooled runs only); "
                             "overdue jobs are killed and charged a "
                             "retry")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first figure whose jobs "
                             "exhaust their retries instead of "
                             "continuing with the remaining figures")
    parser.add_argument("--chaos", metavar="SPEC", default=None,
                        help="inject deterministic faults, e.g. "
                             "'worker-kill,cache-corrupt' or "
                             "'worker-kill=0.5,flip-cht=0.1' (see "
                             "docs/robustness.md for the grammar)")
    parser.add_argument("--chaos-seed", type=int, default=0,
                        metavar="SEED",
                        help="seed for the --chaos fault plan "
                             "(default 0)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the raw result data as JSON "
                             "(a dict keyed by figure name)")
    parser.add_argument("--obs-dir", metavar="DIR", default=None,
                        help="write observability artifacts (run "
                             "manifest with per-figure perf_counter "
                             "timings, per-job records and worker "
                             "timing breakdowns, plus the raw data) "
                             "into DIR")
    args = parser.parse_args(argv)
    if args.uops < 1:
        parser.error(f"--uops must be >= 1, got {args.uops}")
    if args.traces_per_group < 0:
        parser.error("--traces-per-group must be >= 0, "
                     f"got {args.traces_per_group}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    fault_plan = None
    if args.chaos:
        try:
            fault_plan = parse_chaos_spec(args.chaos,
                                          seed=args.chaos_seed)
        except ValueError as exc:
            parser.error(f"--chaos: {exc}")

    settings = ExperimentSettings(
        n_uops=args.uops,
        traces_per_group=(None if args.traces_per_group == 0
                          else args.traces_per_group))
    plan = ExecutionPlan(workers=args.workers, cache_dir=args.cache_dir,
                         use_cache=not args.no_cache,
                         max_retries=args.retries,
                         job_timeout=args.timeout,
                         fault_plan=fault_plan)
    if (fault_plan is not None and fault_plan.corrupt_cache_fraction
            and plan.effective_cache_dir
            and os.path.isdir(plan.effective_cache_dir)):
        hit = corrupt_cache(plan.effective_cache_dir,
                            fraction=fault_plan.corrupt_cache_fraction,
                            seed=fault_plan.seed)
        print(f"[chaos: corrupted {len(hit)} cache entries in "
              f"{plan.effective_cache_dir}]")

    figures = _expand_figures(args.figure)
    collected: Dict[str, object] = {}
    timings: Dict[str, float] = {}
    report = RunReport(workers=plan.workers,
                       cache_dir=plan.effective_cache_dir)
    wall_start = time.perf_counter()
    for figure in figures:
        # perf_counter, not time.time: monotonic and immune to
        # wall-clock adjustments (NTP slew would skew the timings).
        start = time.perf_counter()
        failure = None
        try:
            with execution(plan) as fig_report:
                data = EXPERIMENTS[figure](settings)
        except JobFailure as exc:
            failure = exc
        elapsed = time.perf_counter() - start
        fig_report.tag(figure)
        report.extend(fig_report)
        timings[figure] = elapsed
        if failure is not None:
            # The figure is lost but the run keeps going: record the
            # failure, surface it, and move on (unless --fail-fast).
            report.failures.append({
                "figure": figure,
                "kind": failure.job.kind,
                "key": list(failure.job.key),
                "attempts": failure.attempts,
                "error": failure.detail,
            })
            collected[figure] = {"error": str(failure)}
            print(f"error: {figure}: job {failure.job.describe()} "
                  f"failed after {failure.attempts} attempt(s)",
                  file=sys.stderr)
            if args.fail_fast:
                print("[--fail-fast: skipping remaining figures]",
                      file=sys.stderr)
                break
            continue
        collected[figure] = data
        print(RENDERERS[figure](data))
        print(f"[{figure} done in {elapsed:.1f}s]")
        print()
    total_wall = time.perf_counter() - wall_start
    if plan.effective_cache_dir:
        print(f"[cache: {report.n_cache_hits}/{report.n_jobs} job hits "
              f"({report.cache_hit_rate:.0%}) in "
              f"{plan.effective_cache_dir}]")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"wrote raw data to {args.json}")
    if args.obs_dir:
        _write_obs_artifacts(args.obs_dir, figures, timings, collected,
                             settings, report, total_wall)
    if plan.effective_cache_dir:
        # Always leave a run manifest next to the cache, so warm-vs-cold
        # wall clock and hit rates are recorded even without --obs-dir.
        manifest = _build_manifest(figures, timings, settings, report,
                                   total_wall)
        manifest.write(os.path.join(plan.effective_cache_dir,
                                    "last_run_manifest.json"))
    if report.degraded:
        n = len(report.failures)
        print(f"error: run degraded: {n} failure(s); partial results "
              "were written (see the manifest's 'healing' section)",
              file=sys.stderr)
        return EXIT_DEGRADED
    return 0


def _build_manifest(figures, timings: Dict[str, float],
                    settings: ExperimentSettings, report: RunReport,
                    total_wall: float):
    """The run manifest: config, timings, and the parallel/cache story."""
    from repro.obs.registry import MetricsRegistry
    from repro.obs.sinks import RunManifest, git_revision

    registry = MetricsRegistry("experiments")
    registry.set("parallel.workers", report.workers)
    registry.set("parallel.jobs", report.n_jobs)
    registry.set("parallel.cache_hits", report.n_cache_hits)
    registry.set("parallel.cache_hit_rate", report.cache_hit_rate)
    registry.set("parallel.sim_seconds", report.sim_seconds)
    registry.set("parallel.wall_seconds", total_wall)
    registry.set("healing.degraded", int(report.degraded))
    registry.set("healing.retries", report.retries)
    registry.set("healing.timeouts", report.timeouts)
    registry.set("healing.pool_rebuilds", report.pool_rebuilds)
    registry.set("healing.serial_fallbacks", report.serial_fallbacks)
    registry.set("healing.failures", len(report.failures))
    for worker, stats in report.worker_breakdown().items():
        registry.ingest(f"workers.{worker}", stats)

    return RunManifest(
        name="experiments:" + ",".join(figures),
        config={"n_uops": settings.n_uops,
                "traces_per_group": settings.traces_per_group,
                "workers": report.workers,
                "cache_dir": report.cache_dir},
        git_rev=git_revision(),
        n_uops=settings.n_uops,
        wall_seconds=total_wall,
        phases=dict(timings),
        metrics=registry.snapshot(),
        extra={"figures": list(figures),
               "healing": report.healing_summary(),
               "parallel": {
                   "workers": report.workers,
                   "cache_dir": report.cache_dir,
                   "n_jobs": report.n_jobs,
                   "n_cache_hits": report.n_cache_hits,
                   "cache_hit_rate": report.cache_hit_rate,
                   "sim_seconds": report.sim_seconds,
                   "worker_breakdown": report.worker_breakdown(),
               }},
    )


def _write_obs_artifacts(obs_dir: str, figures, timings: Dict[str, float],
                         collected: Dict[str, object],
                         settings: ExperimentSettings,
                         report: RunReport, total_wall: float) -> None:
    """Emit run manifest + per-job records + raw data for this run."""
    os.makedirs(obs_dir, exist_ok=True)
    manifest = _build_manifest(figures, timings, settings, report,
                               total_wall)
    manifest.write(os.path.join(obs_dir, "manifest.json"))
    with open(os.path.join(obs_dir, "jobs.json"), "w",
              encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, default=str)
    with open(os.path.join(obs_dir, "data.json"), "w",
              encoding="utf-8") as handle:
        json.dump(collected, handle, indent=2, default=str)
    print(f"wrote observability artifacts to {obs_dir}/ "
          "(manifest.json, jobs.json, data.json)")


if __name__ == "__main__":
    sys.exit(main())
