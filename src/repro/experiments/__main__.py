"""Command-line entry point: ``python -m repro.experiments <figure>``.

Examples::

    python -m repro.experiments fig7
    python -m repro.experiments all --uops 50000 --traces-per-group 3
    python -m repro.experiments fig9 --json fig9.json
    python -m repro.experiments classification --workers 4 \\
        --cache-dir .exp-cache --json a.json

Figures accept either the paper's figure ids (``fig5``..``fig12``,
``ext-*``) or the experiment-module aliases (``classification`` =
fig5+fig6, ``hitmiss_speedup`` = fig11, ...).  ``--workers N`` shards
the experiment grid over a process pool; ``--cache-dir`` adds a
content-addressed on-disk result cache so repeated runs replay instead
of re-simulating (see docs/parallel.md).  Both are output-invariant:
the ``--json`` payload is byte-identical across serial, parallel and
cached runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments import EXPERIMENTS
from repro.experiments.harness import ExperimentSettings
from repro.experiments import (
    bank_metric,
    classification,
    cht_accuracy,
    extensions,
    hitmiss_speedup,
    hitmiss_stats,
    machine_sweep,
    ordering_speedup,
)
from repro.parallel import ExecutionPlan, RunReport, execution

RENDERERS: Dict[str, Callable] = {
    "fig5": classification.render_fig5,
    "fig6": classification.render_fig6,
    "fig7": ordering_speedup.render_fig7,
    "fig8": machine_sweep.render_fig8,
    "fig9": cht_accuracy.render_fig9,
    "fig10": hitmiss_stats.render_fig10,
    "fig11": hitmiss_speedup.render_fig11,
    "fig12": bank_metric.render_fig12,
    "ext-penalty": extensions.render_penalty_sweep,
    "ext-prior-art": extensions.render_prior_art,
    "ext-smt": extensions.render_smt,
    "ext-bank-perf": extensions.render_bank_perf,
    "ext-prefetch": extensions.render_prefetch,
}

#: Module-name aliases: one experiment module = one or more figures.
ALIASES: Dict[str, Tuple[str, ...]] = {
    "classification": ("fig5", "fig6"),
    "ordering_speedup": ("fig7",),
    "machine_sweep": ("fig8",),
    "cht_accuracy": ("fig9",),
    "hitmiss_stats": ("fig10",),
    "hitmiss_speedup": ("fig11",),
    "bank_metric": ("fig12",),
    "extensions": ("ext-bank-perf", "ext-penalty", "ext-prefetch",
                   "ext-prior-art", "ext-smt"),
}


def _expand_figures(selector: str) -> List[str]:
    if selector == "all":
        # Paper figures first, extension studies after.
        figures = sorted(n for n in EXPERIMENTS if n.startswith("fig"))
        figures += sorted(n for n in EXPERIMENTS if n.startswith("ext"))
        return figures
    if selector in ALIASES:
        return list(ALIASES[selector])
    return [selector]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.")
    parser.add_argument("figure",
                        choices=sorted(EXPERIMENTS) + sorted(ALIASES)
                        + ["all"],
                        help="which figure (or experiment module) to "
                             "regenerate")
    parser.add_argument("--uops", type=int, default=30_000,
                        help="dynamic uops per trace (default 30000)")
    parser.add_argument("--traces-per-group", type=int, default=2,
                        help="traces per group; 0 = the full roster")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="shard the experiment grid over N worker "
                             "processes (0/1 = serial)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed on-disk result/trace "
                             "cache; repeated runs replay cached "
                             "simulations instead of recomputing them")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir (neither read nor "
                             "write cache entries)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the raw result data as JSON "
                             "(a dict keyed by figure name)")
    parser.add_argument("--obs-dir", metavar="DIR", default=None,
                        help="write observability artifacts (run "
                             "manifest with per-figure perf_counter "
                             "timings, per-job records and worker "
                             "timing breakdowns, plus the raw data) "
                             "into DIR")
    args = parser.parse_args(argv)

    settings = ExperimentSettings(
        n_uops=args.uops,
        traces_per_group=(None if args.traces_per_group == 0
                          else args.traces_per_group))
    plan = ExecutionPlan(workers=args.workers, cache_dir=args.cache_dir,
                         use_cache=not args.no_cache)

    figures = _expand_figures(args.figure)
    collected: Dict[str, object] = {}
    timings: Dict[str, float] = {}
    report = RunReport(workers=plan.workers,
                       cache_dir=plan.effective_cache_dir)
    wall_start = time.perf_counter()
    for figure in figures:
        # perf_counter, not time.time: monotonic and immune to
        # wall-clock adjustments (NTP slew would skew the timings).
        start = time.perf_counter()
        with execution(plan) as fig_report:
            data = EXPERIMENTS[figure](settings)
        elapsed = time.perf_counter() - start
        fig_report.tag(figure)
        report.records.extend(fig_report.records)
        collected[figure] = data
        timings[figure] = elapsed
        print(RENDERERS[figure](data))
        print(f"[{figure} done in {elapsed:.1f}s]")
        print()
    total_wall = time.perf_counter() - wall_start
    if plan.effective_cache_dir:
        print(f"[cache: {report.n_cache_hits}/{report.n_jobs} job hits "
              f"({report.cache_hit_rate:.0%}) in "
              f"{plan.effective_cache_dir}]")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"wrote raw data to {args.json}")
    if args.obs_dir:
        _write_obs_artifacts(args.obs_dir, figures, timings, collected,
                             settings, report, total_wall)
    if plan.effective_cache_dir:
        # Always leave a run manifest next to the cache, so warm-vs-cold
        # wall clock and hit rates are recorded even without --obs-dir.
        manifest = _build_manifest(figures, timings, settings, report,
                                   total_wall)
        manifest.write(os.path.join(plan.effective_cache_dir,
                                    "last_run_manifest.json"))
    return 0


def _build_manifest(figures, timings: Dict[str, float],
                    settings: ExperimentSettings, report: RunReport,
                    total_wall: float):
    """The run manifest: config, timings, and the parallel/cache story."""
    from repro.obs.registry import MetricsRegistry
    from repro.obs.sinks import RunManifest, git_revision

    registry = MetricsRegistry("experiments")
    registry.set("parallel.workers", report.workers)
    registry.set("parallel.jobs", report.n_jobs)
    registry.set("parallel.cache_hits", report.n_cache_hits)
    registry.set("parallel.cache_hit_rate", report.cache_hit_rate)
    registry.set("parallel.sim_seconds", report.sim_seconds)
    registry.set("parallel.wall_seconds", total_wall)
    for worker, stats in report.worker_breakdown().items():
        registry.ingest(f"workers.{worker}", stats)

    return RunManifest(
        name="experiments:" + ",".join(figures),
        config={"n_uops": settings.n_uops,
                "traces_per_group": settings.traces_per_group,
                "workers": report.workers,
                "cache_dir": report.cache_dir},
        git_rev=git_revision(),
        n_uops=settings.n_uops,
        wall_seconds=total_wall,
        phases=dict(timings),
        metrics=registry.snapshot(),
        extra={"figures": list(figures),
               "parallel": {
                   "workers": report.workers,
                   "cache_dir": report.cache_dir,
                   "n_jobs": report.n_jobs,
                   "n_cache_hits": report.n_cache_hits,
                   "cache_hit_rate": report.cache_hit_rate,
                   "sim_seconds": report.sim_seconds,
                   "worker_breakdown": report.worker_breakdown(),
               }},
    )


def _write_obs_artifacts(obs_dir: str, figures, timings: Dict[str, float],
                         collected: Dict[str, object],
                         settings: ExperimentSettings,
                         report: RunReport, total_wall: float) -> None:
    """Emit run manifest + per-job records + raw data for this run."""
    os.makedirs(obs_dir, exist_ok=True)
    manifest = _build_manifest(figures, timings, settings, report,
                               total_wall)
    manifest.write(os.path.join(obs_dir, "manifest.json"))
    with open(os.path.join(obs_dir, "jobs.json"), "w",
              encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, default=str)
    with open(os.path.join(obs_dir, "data.json"), "w",
              encoding="utf-8") as handle:
        json.dump(collected, handle, indent=2, default=str)
    print(f"wrote observability artifacts to {obs_dir}/ "
          "(manifest.json, jobs.json, data.json)")


if __name__ == "__main__":
    sys.exit(main())
