"""Command-line entry point: ``python -m repro.experiments <figure>``.

Examples::

    python -m repro.experiments fig7
    python -m repro.experiments all --uops 50000 --traces-per-group 3
    python -m repro.experiments fig9 --json fig9.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict

from repro.experiments import EXPERIMENTS
from repro.experiments.harness import ExperimentSettings
from repro.experiments import (
    bank_metric,
    classification,
    cht_accuracy,
    extensions,
    hitmiss_speedup,
    hitmiss_stats,
    machine_sweep,
    ordering_speedup,
)

RENDERERS: Dict[str, Callable] = {
    "fig5": classification.render_fig5,
    "fig6": classification.render_fig6,
    "fig7": ordering_speedup.render_fig7,
    "fig8": machine_sweep.render_fig8,
    "fig9": cht_accuracy.render_fig9,
    "fig10": hitmiss_stats.render_fig10,
    "fig11": hitmiss_speedup.render_fig11,
    "fig12": bank_metric.render_fig12,
    "ext-penalty": extensions.render_penalty_sweep,
    "ext-prior-art": extensions.render_prior_art,
    "ext-smt": extensions.render_smt,
    "ext-bank-perf": extensions.render_bank_perf,
    "ext-prefetch": extensions.render_prefetch,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.")
    parser.add_argument("figure",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which figure to regenerate")
    parser.add_argument("--uops", type=int, default=30_000,
                        help="dynamic uops per trace (default 30000)")
    parser.add_argument("--traces-per-group", type=int, default=2,
                        help="traces per group; 0 = the full roster")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the raw result data as JSON "
                             "(a dict keyed by figure name)")
    parser.add_argument("--obs-dir", metavar="DIR", default=None,
                        help="write observability artifacts (run "
                             "manifest with per-figure perf_counter "
                             "timings, plus the raw data) into DIR")
    args = parser.parse_args(argv)

    settings = ExperimentSettings(
        n_uops=args.uops,
        traces_per_group=(None if args.traces_per_group == 0
                          else args.traces_per_group))

    if args.figure == "all":
        # Paper figures first, extension studies after.
        figures = sorted(n for n in EXPERIMENTS if n.startswith("fig"))
        figures += sorted(n for n in EXPERIMENTS if n.startswith("ext"))
    else:
        figures = [args.figure]
    collected: Dict[str, object] = {}
    timings: Dict[str, float] = {}
    for figure in figures:
        # perf_counter, not time.time: monotonic and immune to
        # wall-clock adjustments (NTP slew would skew the timings).
        start = time.perf_counter()
        data = EXPERIMENTS[figure](settings)
        elapsed = time.perf_counter() - start
        collected[figure] = data
        timings[figure] = elapsed
        print(RENDERERS[figure](data))
        print(f"[{figure} done in {elapsed:.1f}s]")
        print()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"wrote raw data to {args.json}")
    if args.obs_dir:
        _write_obs_artifacts(args.obs_dir, figures, timings, collected,
                             settings)
    return 0


def _write_obs_artifacts(obs_dir: str, figures, timings: Dict[str, float],
                         collected: Dict[str, object],
                         settings: ExperimentSettings) -> None:
    """Emit a run manifest (+ raw data) for this experiment invocation."""
    from repro.obs.sinks import RunManifest, git_revision

    os.makedirs(obs_dir, exist_ok=True)
    manifest = RunManifest(
        name="experiments:" + ",".join(figures),
        config={"n_uops": settings.n_uops,
                "traces_per_group": settings.traces_per_group},
        git_rev=git_revision(),
        n_uops=settings.n_uops,
        wall_seconds=sum(timings.values()),
        phases=dict(timings),
        extra={"figures": list(figures)},
    )
    manifest.write(os.path.join(obs_dir, "manifest.json"))
    with open(os.path.join(obs_dir, "data.json"), "w",
              encoding="utf-8") as handle:
        json.dump(collected, handle, indent=2, default=str)
    print(f"wrote observability artifacts to {obs_dir}/ "
          "(manifest.json, data.json)")


if __name__ == "__main__":
    sys.exit(main())
