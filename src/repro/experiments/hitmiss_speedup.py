"""Figure 11: speedup of hit-miss prediction.

Performance simulations "on top of our highest performing configuration
(4 gen. / 2 mem. EUs and perfect disambiguation)": speedup over the
no-HMP (always-predict-hit) machine for the local predictor, the hybrid
chooser, the local predictor with timing information, and a perfect
predictor.  The paper's headlines: perfect ≈ 6 %, local+timing ≈ 45 %
of that potential (~2.5 %), and a positive with-timing vs. no-timing
gap.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import build_predictor, spec_for
from repro.common.config import BASELINE_MACHINE, MachineConfig
from repro.common.stats import geometric_mean
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
)
from repro.hitmiss.base import HitMissPredictor
from repro.hitmiss.oracle import OracleHMP
from repro.hitmiss.timing import TimingHMP
from repro.memory.hierarchy import MemoryHierarchy
from repro.parallel import SimJob, run_jobs, sim_job

#: The paper's Figure 11 machine: 4 integer / 2 memory units.
FIG11_CONFIG = BASELINE_MACHINE.with_units(4, 2)

HMP_KINDS = ("local", "chooser", "local+timing", "perfect")


#: Spec of the table-based local predictor Figure 11 builds on.
_LOCAL_SPEC = spec_for("hmp.local", size=2048, history=8)


def _build_machine(kind: Optional[str],
                   config: MachineConfig) -> Machine:
    """A perfect-disambiguation machine with the requested HMP.

    Table-backed predictors are constructed through
    :func:`repro.api.build_predictor`; the timing wrapper and the
    oracle close over live machine state, so they stay bespoke.
    """
    hierarchy = MemoryHierarchy(config.memory)
    hmp: HitMissPredictor
    if kind is None:
        hmp = build_predictor(spec_for("hmp.always-hit"))
    elif kind == "local":
        hmp = build_predictor(_LOCAL_SPEC)
    elif kind == "chooser":
        hmp = build_predictor(spec_for("hmp.hybrid"))
    elif kind == "local+timing":
        hmp = TimingHMP(build_predictor(_LOCAL_SPEC),
                        mshr=hierarchy.mshr, serviced=hierarchy.serviced)
    elif kind == "perfect":
        hmp = OracleHMP(lambda pc, line, now:
                        hierarchy.would_hit_l1(
                            (line or 0) * config.memory.l1d.line_bytes,
                            now))
    else:
        raise ValueError(f"unknown HMP kind {kind!r}")
    return Machine(config=config, scheme=make_scheme("perfect"),
                   hmp=hmp, hierarchy=hierarchy)


@sim_job("hmp-speedups")
def _hmp_speedups_leaf(name: str, config: MachineConfig,
                       n_uops: int) -> Dict[str, float]:
    """One trace's HMP speedups over always-hit — one job."""
    trace = get_trace(name, n_uops)
    baseline = _build_machine(None, config).run(trace)
    out: Dict[str, float] = {}
    for kind in HMP_KINDS:
        result = _build_machine(kind, config).run(trace)
        out[kind] = result.speedup_over(baseline)
    return out


def speedups_for_trace(name: str,
                       config: MachineConfig = FIG11_CONFIG,
                       settings: ExperimentSettings = DEFAULT_SETTINGS
                       ) -> Dict[str, float]:
    """HMP speedups over the always-hit baseline for one trace."""
    return _hmp_speedups_leaf(name, config, settings.n_uops)


def run_fig11(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Measure the Figure 11 speedups per group."""
    groups = {"SpecInt95": "SpecInt95", "SysmarkNT": "SysmarkNT"}
    grid = [(label, name) for label, group in groups.items()
            for name in group_traces(group, settings)]
    jobs = [SimJob.make(_hmp_speedups_leaf, key=("hmp-speedups", name),
                        name=name, config=FIG11_CONFIG,
                        n_uops=settings.n_uops)
            for _, name in grid]
    results = run_jobs(jobs, settings)
    per_group: Dict[str, Dict[str, float]] = {}
    acc_by_label: Dict[str, Dict[str, List[float]]] = {}
    for (label, _), speedups in zip(grid, results):
        acc = acc_by_label.setdefault(label,
                                      {k: [] for k in HMP_KINDS})
        for k in HMP_KINDS:
            acc[k].append(speedups[k])
    for label in groups:
        per_group[label] = {k: geometric_mean(v)
                            for k, v in acc_by_label[label].items()}
    average = {
        k: geometric_mean([per_group[g][k] for g in per_group])
        for k in HMP_KINDS
    }
    return {"figure": "fig11", "groups": per_group, "average": average}


def render_fig11(data: Dict) -> str:
    """Render the Figure 11 table."""
    headers = ["group"] + list(HMP_KINDS)
    rows: List[List[object]] = []
    for group, speedups in data["groups"].items():
        rows.append([group] + [speedups[k] for k in HMP_KINDS])
    rows.append(["average"] + [data["average"][k] for k in HMP_KINDS])
    return format_table(
        headers, rows,
        title="Figure 11 — hit-miss prediction speedup over no-HMP "
              "(perfect disambiguation, 4 EU / 2 MEM)")
