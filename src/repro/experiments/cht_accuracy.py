"""Figure 9: CHT organisation/size accuracy sweep.

The paper evaluates four CHT organisations over sizes, reporting the
four Figure 1 cells as fractions of *conflicting* loads:

* Full CHT, 128..2K entries — balanced (2K: ~3.4 % ANC-PC, 0.9 %
  AC-PNC), best at limiting ANC-PC because counters can unlearn;
* Tagless, 2K..32K — improves steadily with size (less aliasing);
* Tagged-only, 128..2K — sticky: AC-PNC lowest (~0.2 %) but ANC-PC
  high (~11 %);
* Combined, 128..2K tag table + 4K tagless — safest (~0.16 % AC-PNC)
  at the cost of the most ANC-PC.

Methodology mirrors the paper's statistical simulations: one engine
pass records each load's (pc, conflicting, collided, distance) ground
truth at its dispatch opportunity; every CHT configuration then replays
the identical event stream (predict, then train).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.api import PredictorSpec, build_predictor, spec_for
from repro.cht.base import CollisionPredictor
from repro.cht.tagless import TaglessCHT
from repro.engine.machine import Machine
from repro.engine.ordering import TraditionalOrdering
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    group_traces,
)
from repro.parallel import SimJob, run_jobs, sim_job
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed

#: Static-code multiplier: table capacity only matters when the static
#: load population stresses it, so Figure 9's traces carry a larger
#: (more SysmarkNT-like) code footprint than the other experiments'.
CODE_SCALE = 24


@dataclass(frozen=True)
class LoadEvent:
    """Ground truth for one dynamic load, in retirement order."""

    pc: int
    conflicting: bool
    collided: bool
    distance: int  # 0 when not colliding


class _RecordingOrdering(TraditionalOrdering):
    """Traditional ordering that records each load's ground truth."""

    def __init__(self) -> None:
        self.events: List[LoadEvent] = []

    def on_retire_load(self, load) -> None:
        info = load.load
        if info is None or info.conflicting is None:
            return
        self.events.append(LoadEvent(
            pc=load.uop.pc,
            conflicting=bool(info.conflicting),
            collided=bool(info.would_collide),
            distance=info.collide_distance or 0,
        ))


@lru_cache(maxsize=64)
def _collision_events(name: str, n_uops: int) -> Tuple[LoadEvent, ...]:
    trace = build_trace(profile_for(name, code_scale=CODE_SCALE),
                        n_uops=n_uops, seed=trace_seed(name), name=name)
    scheme = _RecordingOrdering()
    Machine(scheme=scheme).run(trace)
    return tuple(scheme.events)


def collision_events(names: Sequence[str],
                     settings: ExperimentSettings = DEFAULT_SETTINGS
                     ) -> List[Tuple[str, Tuple[LoadEvent, ...]]]:
    """The recorded per-trace ground-truth streams."""
    return [(n, _collision_events(n, settings.n_uops)) for n in names]


@dataclass
class ChtAccuracy:
    """The four Figure 1 cells, counted over one replay."""

    conflicting: int = 0
    ac_pc: int = 0
    ac_pnc: int = 0
    anc_pc: int = 0
    anc_pnc: int = 0

    def record(self, event: LoadEvent, predicted_colliding: bool) -> None:
        if not event.conflicting:
            return
        self.conflicting += 1
        if event.collided:
            if predicted_colliding:
                self.ac_pc += 1
            else:
                self.ac_pnc += 1
        elif predicted_colliding:
            self.anc_pc += 1
        else:
            self.anc_pnc += 1

    def fraction(self, count: int) -> float:
        return count / self.conflicting if self.conflicting else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "AC-PC": self.fraction(self.ac_pc),
            "AC-PNC": self.fraction(self.ac_pnc),
            "ANC-PC": self.fraction(self.anc_pc),
            "ANC-PNC": self.fraction(self.anc_pnc),
        }


class EventArrayCache:
    """Lazy one-shot conversion of a ``LoadEvent`` stream into the
    kernel arrays of :func:`repro.fastpath.cht.event_arrays`.

    Replaying the same stream through many CHT configurations (the
    Figure 9 sweep replays it through twenty) pays the Python-object
    decomposition once instead of per configuration.  The scalar path
    never touches it.
    """

    def __init__(self, events: Sequence[LoadEvent]) -> None:
        self._events = events
        self._arrays = None

    def get(self):
        if self._arrays is None:
            from repro.fastpath.cht import event_arrays
            self._arrays = event_arrays(self._events)
        return self._arrays


def replay(events: Sequence[LoadEvent], cht: CollisionPredictor,
           warm: bool = False,
           arrays: EventArrayCache = None) -> ChtAccuracy:
    """Replay a ground-truth stream through one CHT (predict → train).

    With ``warm=True`` the stream is replayed twice and only the second
    pass is measured: the paper's 30M-instruction traces amortise each
    load's first (unavoidable) mispredictions to nothing, and the warm
    pass emulates that steady state on reduced traces.

    A CHT constructed with ``backend="vectorized"`` replays through the
    batch kernels of :mod:`repro.fastpath` — by contract bit-identical
    to the scalar loop below (pinned by ``tests/fastpath/``).  Callers
    replaying one stream through several CHTs can pass a shared
    :class:`EventArrayCache` built over the same ``events``.
    """
    import repro.fastpath as fastpath
    if fastpath.enabled(cht) and type(cht) is TaglessCHT:
        return _replay_vectorized(events, cht, warm, arrays)
    if warm:
        for event in events:
            cht.train(event.pc, event.collided,
                      event.distance if event.collided else None)
    acc = ChtAccuracy()
    for event in events:
        prediction = cht.lookup(event.pc)
        acc.record(event, prediction.colliding)
        cht.train(event.pc, event.collided,
                  event.distance if event.collided else None)
    return acc


def _replay_vectorized(events: Sequence[LoadEvent], cht: TaglessCHT,
                       warm: bool,
                       arrays: EventArrayCache = None) -> ChtAccuracy:
    """The fastpath replay: batch kernels plus vectorized accounting."""
    from repro.fastpath.cht import tagless_replay
    if arrays is None:
        arrays = EventArrayCache(events)
    pcs, conflicting, collided, distances = arrays.get()
    if warm:  # lookups are pure, so a discarded replay is a train pass
        tagless_replay(cht, pcs, collided, distances)
    predicted = tagless_replay(cht, pcs, collided, distances)
    acc = ChtAccuracy()
    acc.conflicting = int(conflicting.sum())
    acc.ac_pc = int((conflicting & collided & predicted).sum())
    acc.ac_pnc = int((conflicting & collided & ~predicted).sum())
    acc.anc_pc = int((conflicting & ~collided & predicted).sum())
    acc.anc_pnc = int((conflicting & ~collided & ~predicted).sum())
    return acc


#: (organisation label, size label, spec) — the Figure 9 sweep.  Every
#: configuration is a :class:`~repro.api.spec.PredictorSpec`, so the
#: sweep is serialisable and each table is built with
#: :func:`repro.api.build_predictor`.
CONFIGURATIONS: Tuple[Tuple[str, int, PredictorSpec], ...] = tuple(
    [("full", n, spec_for("cht.full", size=n, ways=4, bits=2))
     for n in (128, 256, 512, 1024, 2048)]
    + [("tagless", n, spec_for("cht.tagless", size=n, bits=1))
       for n in (2048, 4096, 8192, 16384, 32768)]
    + [("tagged-only", n, spec_for("cht.tagged", size=n, ways=4))
       for n in (128, 256, 512, 1024, 2048)]
    + [("combined", n, spec_for("cht.combined", tagged_size=n, ways=4,
                                tagless_size=4096))
       for n in (128, 256, 512, 1024, 2048)]
)


@sim_job("cht-accuracy")
def _cht_trace_leaf(name: str, n_uops: int, warm: bool) -> List[Dict]:
    """One trace: record ground truth, replay every CHT configuration.

    Returns raw per-configuration *counts* (not fractions) so the
    aggregation step can sum across traces exactly as the serial code
    always has.
    """
    events = _collision_events(name, n_uops)
    shared = EventArrayCache(events)
    out: List[Dict] = []
    for kind, size, spec in CONFIGURATIONS:
        acc = replay(events, build_predictor(spec), warm=warm,
                     arrays=shared)
        out.append({"kind": kind, "entries": size,
                    "conflicting": acc.conflicting, "ac_pc": acc.ac_pc,
                    "ac_pnc": acc.ac_pnc, "anc_pc": acc.anc_pc,
                    "anc_pnc": acc.anc_pnc})
    return out


def run_fig9(settings: ExperimentSettings = DEFAULT_SETTINGS,
             group: str = "SysmarkNT", warm: bool = True) -> Dict:
    """Sweep the CHT organisations/sizes over recorded events."""
    names = group_traces(group, settings)
    jobs = [SimJob.make(_cht_trace_leaf, key=("cht-accuracy", name),
                        name=name, n_uops=settings.n_uops, warm=warm)
            for name in names]
    per_trace = run_jobs(jobs, settings)
    rows: List[Dict] = []
    for i, (kind, size, _) in enumerate(CONFIGURATIONS):
        total = ChtAccuracy()
        for counts in per_trace:
            cell = counts[i]
            total.conflicting += cell["conflicting"]
            total.ac_pc += cell["ac_pc"]
            total.ac_pnc += cell["ac_pnc"]
            total.anc_pc += cell["anc_pc"]
            total.anc_pnc += cell["anc_pnc"]
        rows.append({"kind": kind, "entries": size, **total.as_dict()})
    return {"figure": "fig9", "group": group, "rows": rows}


def render_fig9(data: Dict) -> str:
    """Render the Figure 9 accuracy table."""
    rows = [[r["kind"], r["entries"], r["AC-PC"], r["AC-PNC"],
             r["ANC-PC"], r["ANC-PNC"]] for r in data["rows"]]
    return format_table(
        ["organisation", "entries", "AC-PC", "AC-PNC", "ANC-PC",
         "ANC-PNC"],
        rows,
        title="Figure 9 — CHT accuracy (fractions of conflicting loads)")
