"""Extension experiments beyond the paper's figures.

Registered in the CLI alongside fig5..fig12:

* ``ext-penalty`` — sensitivity of the Figure 7 scheme ordering to the
  collision penalty (the paper fixes it at 8 cycles; section 4.3's
  lesson that "the misprediction penalty is crucial" applies to the
  disambiguation side too).
* ``ext-prior-art`` — the CHT against the store barrier [Hess95] and
  store sets [Chry98], in speedup *and* storage.
* ``ext-smt`` — the section 2.2 multithreading application: throughput
  under the four switch policies.
* ``ext-bank-perf`` — a *performance* evaluation of bank prediction
  (the paper only evaluated it statistically, §3.2): the engine issues
  loads onto a 2-banked L1 under oblivious / predicted / oracle
  steering.
* ``ext-prefetch`` — the §2.2 closing remark ("we can of course fetch
  the data ahead of time"): a stride prefetcher versus the hit-miss
  predictor, per trace group — the two mechanisms compete for the same
  regularity.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.common.config import BASELINE_MACHINE
from repro.common.stats import geometric_mean
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
)
from repro.parallel import SimJob, run_jobs, sim_job


# --------------------------------------------------------------------------
# ext-penalty: collision-penalty sensitivity
# --------------------------------------------------------------------------

PENALTY_SWEEP = (2, 8, 16)
PENALTY_SCHEMES = ("opportunistic", "inclusive", "perfect")


@sim_job("penalty-speedups")
def _penalty_leaf(name: str, penalty: int,
                  n_uops: int) -> Dict[str, float]:
    """One (trace x collision-penalty) cell of the sensitivity sweep."""
    config = replace(BASELINE_MACHINE,
                     latency=replace(BASELINE_MACHINE.latency,
                                     collision_penalty=penalty))
    trace = get_trace(name, n_uops)
    baseline = Machine(config=config,
                       scheme=make_scheme("traditional")).run(trace)
    out: Dict[str, float] = {}
    for scheme in PENALTY_SCHEMES:
        result = Machine(config=config,
                         scheme=make_scheme(scheme)).run(trace)
        out[scheme] = result.speedup_over(baseline)
    return out


def run_penalty_sweep(settings: ExperimentSettings = DEFAULT_SETTINGS,
                      penalties: Sequence[int] = PENALTY_SWEEP) -> Dict:
    """Scheme speedups under different collision penalties.

    The prediction-based scheme's edge over blind speculation
    (opportunistic) should widen as collisions get more expensive.
    """
    names = group_traces("SysmarkNT", settings)
    grid = [(penalty, name) for penalty in penalties for name in names]
    jobs = [SimJob.make(_penalty_leaf,
                        key=("penalty-speedups", penalty, name),
                        name=name, penalty=penalty,
                        n_uops=settings.n_uops)
            for penalty, name in grid]
    results = run_jobs(jobs, settings)
    by_penalty: Dict[int, Dict[str, List[float]]] = {}
    for (penalty, _), speedups in zip(grid, results):
        acc = by_penalty.setdefault(penalty,
                                    {s: [] for s in PENALTY_SCHEMES})
        for s in PENALTY_SCHEMES:
            acc[s].append(speedups[s])
    rows = [{"penalty": penalty,
             **{s: geometric_mean(v)
                for s, v in by_penalty[penalty].items()}}
            for penalty in penalties]
    return {"figure": "ext-penalty", "rows": rows}


def render_penalty_sweep(data: Dict) -> str:
    """Render the penalty-sensitivity table."""
    rows = [[r["penalty"]] + [r[s] for s in PENALTY_SCHEMES]
            for r in data["rows"]]
    table = format_table(["penalty"] + list(PENALTY_SCHEMES), rows,
                         title="Extension — scheme speedup vs. collision "
                               "penalty (SysmarkNT)")
    note = ("\nreading: the inclusive-vs-opportunistic gap widens as "
            "wrong ordering\ngets more expensive — prediction matters "
            "most when speculation is risky.")
    return table + note


# --------------------------------------------------------------------------
# ext-prior-art: CHT vs store sets vs store barrier
# --------------------------------------------------------------------------

PRIOR_ART_SCHEMES = ("barrier", "storesets", "inclusive", "exclusive",
                     "perfect")


def _scheme_storage(scheme) -> int:
    if scheme.name == "storesets":
        return scheme.predictor.storage_bits
    if scheme.name == "barrier":
        return scheme.cache.storage_bits
    if getattr(scheme, "uses_cht", False):
        return scheme.cht.storage_bits
    return 0


@sim_job("prior-art")
def _prior_art_leaf(name: str, n_uops: int) -> Dict[str, Dict]:
    """One trace against every prior-art scheme (+ storage budgets)."""
    trace = get_trace(name, n_uops)
    baseline = Machine(scheme=make_scheme("traditional")).run(trace)
    speedups: Dict[str, float] = {}
    storage: Dict[str, int] = {}
    for scheme_name in PRIOR_ART_SCHEMES:
        scheme = make_scheme(scheme_name)
        result = Machine(scheme=scheme).run(trace)
        speedups[scheme_name] = result.speedup_over(baseline)
        storage[scheme_name] = _scheme_storage(scheme)
    return {"speedups": speedups, "storage": storage}


def run_prior_art(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Compare the CHT schemes with store sets and the barrier."""
    names = (group_traces("SysmarkNT", settings)
             + group_traces("SpecInt95", settings))
    jobs = [SimJob.make(_prior_art_leaf, key=("prior-art", name),
                        name=name, n_uops=settings.n_uops)
            for name in names]
    results = run_jobs(jobs, settings)
    acc: Dict[str, List[float]] = {s: [] for s in PRIOR_ART_SCHEMES}
    storage: Dict[str, int] = {}
    for leaf in results:
        for s in PRIOR_ART_SCHEMES:
            acc[s].append(leaf["speedups"][s])
            storage[s] = leaf["storage"][s]
    rows = [{"scheme": s, "speedup": geometric_mean(v),
             "storage_bytes": storage[s] // 8}
            for s, v in acc.items()]
    return {"figure": "ext-prior-art", "rows": rows}


def render_prior_art(data: Dict) -> str:
    """Render the prior-art speedup/storage table."""
    rows = [[r["scheme"], r["speedup"], r["storage_bytes"]]
            for r in data["rows"]]
    table = format_table(["mechanism", "speedup", "storage (bytes)"],
                         rows,
                         title="Extension — CHT vs. prior art "
                               "(speedup over Traditional)")
    note = ("\nreading: the paper's cost-effectiveness claim — the CHT "
            "approaches\nstore-set speedups with a fraction of the "
            "table budget; the coarse\nstore barrier trails both.")
    return table + note


# --------------------------------------------------------------------------
# ext-bank-perf: bank-aware scheduling in the engine
# --------------------------------------------------------------------------

BANK_POLICIES = ("oblivious", "predicted", "oracle")


@sim_job("bank-perf")
def _bank_perf_leaf(name: str, n_uops: int) -> Dict[str, Dict[str, int]]:
    """One trace under the three bank-steering policies."""
    from repro.bank.address_based import AddressBankPredictor
    from repro.common.config import CacheConfig

    mem = replace(BASELINE_MACHINE.memory,
                  l1d=CacheConfig(size_bytes=16 * 1024, n_banks=2))
    config = replace(BASELINE_MACHINE, memory=mem)
    trace = get_trace(name, n_uops)
    cycles: Dict[str, int] = {}
    conflicts: Dict[str, int] = {}
    for policy in BANK_POLICIES:
        predictor = (AddressBankPredictor()
                     if policy == "predicted" else None)
        machine = Machine(config=config,
                          scheme=make_scheme("perfect"),
                          bank_policy=policy,
                          bank_predictor=predictor)
        result = machine.run(trace)
        cycles[policy] = result.cycles
        conflicts[policy] = result.bank_conflicts
    return {"cycles": cycles, "conflicts": conflicts}


def run_bank_perf(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Run the engine-level bank-steering comparison."""
    names = group_traces("SysmarkNT", settings)
    jobs = [SimJob.make(_bank_perf_leaf, key=("bank-perf", name),
                        name=name, n_uops=settings.n_uops)
            for name in names]
    results = run_jobs(jobs, settings)
    rows: List[Dict] = []
    per_policy: Dict[str, List[float]] = {p: [] for p in BANK_POLICIES}
    conflicts: Dict[str, int] = {p: 0 for p in BANK_POLICIES}
    for leaf in results:
        for policy in BANK_POLICIES:
            conflicts[policy] += leaf["conflicts"][policy]
            per_policy[policy].append(leaf["cycles"]["oblivious"]
                                      / leaf["cycles"][policy])
    for policy in BANK_POLICIES:
        rows.append({"policy": policy,
                     "speedup_vs_oblivious":
                         geometric_mean(per_policy[policy]),
                     "bank_conflicts": conflicts[policy]})
    return {"figure": "ext-bank-perf", "rows": rows}


def render_bank_perf(data: Dict) -> str:
    """Render the bank-steering table."""
    rows = [[r["policy"], r["speedup_vs_oblivious"], r["bank_conflicts"]]
            for r in data["rows"]]
    table = format_table(
        ["policy", "speedup vs oblivious", "bank conflicts"], rows,
        title="Extension — bank-aware load scheduling on a 2-banked L1 "
              "(SysmarkNT, perfect disambiguation)")
    note = ("\nreading: predicted steering removes most same-cycle bank "
            "conflicts and\nrecovers most of the oracle's (modest, at "
            "2 memory ports) cycle gain —\nthe performance face of the "
            "paper's statistical Figure 12.")
    return table + note


# --------------------------------------------------------------------------
# ext-prefetch: stride prefetching vs hit-miss prediction
# --------------------------------------------------------------------------

PREFETCH_GROUPS = ("SpecFP95", "SysmarkNT")


@sim_job("prefetch")
def _prefetch_leaf(name: str, with_pf: bool, n_uops: int) -> Dict:
    """One (trace x prefetch on/off) run, reduced to plain counts."""
    from repro.hitmiss.local import LocalHMP
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.memory.prefetch import StridePrefetcher

    trace = get_trace(name, n_uops)
    hierarchy = MemoryHierarchy(BASELINE_MACHINE.memory)
    machine = Machine(scheme=make_scheme("perfect"),
                      hmp=LocalHMP(), hierarchy=hierarchy)
    if with_pf:
        machine.prefetcher = StridePrefetcher(hierarchy, degree=2)
    result = machine.run(trace)
    return {
        "loads": result.hitmiss.total,
        "misses": round(result.hitmiss.miss_rate
                        * result.hitmiss.total),
        "caught": round(result.hitmiss.am_pm_fraction
                        * result.hitmiss.total),
        "cycles": result.cycles,
    }


def run_prefetch(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Per-group miss rate and HMP coverage with/without prefetching."""
    grid = [(group, with_pf, name)
            for group in PREFETCH_GROUPS
            for with_pf in (False, True)
            for name in group_traces(group, settings)]
    jobs = [SimJob.make(_prefetch_leaf,
                        key=("prefetch", group, with_pf, name),
                        name=name, with_pf=with_pf,
                        n_uops=settings.n_uops)
            for group, with_pf, name in grid]
    results = run_jobs(jobs, settings)
    acc: Dict[Tuple[str, bool], Dict[str, int]] = {}
    for (group, with_pf, _), leaf in zip(grid, results):
        slot = acc.setdefault((group, with_pf),
                              {"loads": 0, "misses": 0, "caught": 0,
                               "cycles": 0})
        for field in slot:
            slot[field] += leaf[field]
    rows: List[Dict] = []
    for group in PREFETCH_GROUPS:
        for with_pf in (False, True):
            slot = acc[(group, with_pf)]
            rows.append({
                "group": group,
                "prefetch": "on" if with_pf else "off",
                "miss_rate": (slot["misses"] / slot["loads"]
                              if slot["loads"] else 0.0),
                "hmp_coverage": (slot["caught"] / slot["misses"]
                                 if slot["misses"] else 0.0),
                "cycles": slot["cycles"],
            })
    return {"figure": "ext-prefetch", "rows": rows}


def render_prefetch(data: Dict) -> str:
    """Render the prefetch-vs-HMP interaction table."""
    rows = [[r["group"], r["prefetch"], r["miss_rate"],
             r["hmp_coverage"], r["cycles"]] for r in data["rows"]]
    table = format_table(
        ["group", "prefetch", "miss rate", "HMP coverage", "cycles"],
        rows,
        title="Extension — stride prefetching vs. hit-miss prediction")
    note = ("\nreading: prefetching removes exactly the regular misses "
            "the HMP catches\nbest — miss rates fall, and the misses "
            "that remain are harder to predict.")
    return table + note


# --------------------------------------------------------------------------
# ext-smt: switch-on-miss multithreading
# --------------------------------------------------------------------------

@sim_job("smt-policy")
def _smt_leaf(policy_name: str, n_uops: int) -> Dict:
    """One switch policy over the fixed tpcc+jack trace pair."""
    from repro.smt import CoarseGrainedMT, SwitchPolicy
    policy = SwitchPolicy(policy_name)
    traces = [get_trace(name, n_uops) for name in ("tpcc", "jack")]
    result = CoarseGrainedMT(policy=policy).run(traces)
    return {
        "policy": policy.value,
        "cycles": result.cycles,
        "throughput": result.throughput,
        "switches": result.switches,
        "wasted": result.wasted_switches,
    }


def run_smt(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Run the switch-on-miss multithreading comparison."""
    from repro.smt import SwitchPolicy
    jobs = [SimJob.make(_smt_leaf, key=("smt-policy", policy.value),
                        policy_name=policy.value,
                        n_uops=settings.n_uops)
            for policy in SwitchPolicy]
    rows = run_jobs(jobs, settings)
    return {"figure": "ext-smt", "rows": list(rows)}


def render_smt(data: Dict) -> str:
    """Render the multithreading policy table."""
    rows = [[r["policy"], r["cycles"], r["throughput"], r["switches"],
             r["wasted"]] for r in data["rows"]]
    table = format_table(
        ["policy", "cycles", "throughput", "switches", "wasted"], rows,
        title="Extension — switch-on-miss multithreading "
              "(tpcc + jack, section 2.2)")
    note = ("\nreading: predicting the memory-bound loads at schedule "
            "time switches\nearlier than reactive discovery and tracks "
            "the oracle.")
    return table + note
