"""Shared experiment plumbing: trace caching, run helpers, tables.

The paper's traces are 30M instructions; a pure-Python cycle simulator
cannot afford that, so experiments default to reduced traces
(:attr:`ExperimentSettings.n_uops` uops each).  All trends reported in
EXPERIMENTS.md are stable in this regime; crank the knob for slower,
smoother numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.trace.trace import Trace
from repro.trace.workloads import (
    TRACE_GROUPS,
    profile_for,
    resolve_trace_name,
    trace_seed,
)


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment harness.

    Attributes
    ----------
    n_uops:
        Dynamic uops per trace (the paper used 30M; the default here is
        laptop-scale).
    traces_per_group:
        Cap on traces per group (None = the paper's full roster).
    """

    n_uops: int = 30_000
    traces_per_group: Optional[int] = 2


DEFAULT_SETTINGS = ExperimentSettings()


@lru_cache(maxsize=128)
def _master_trace(name: str, n_uops: int, seed: int, profile) -> Trace:
    """The memoised pristine copy of one canonical trace.

    Keyed on the full trace identity — name, budget, derived seed and
    workload profile — so two callers whose profiles or seeds diverge
    can never alias.  The uop list is frozen into a tuple: the master
    must stay pristine for the lifetime of the process.
    """
    from repro.parallel.cache import ResultCache, load_or_build_trace
    from repro.parallel.runner import active_plan

    cache_dir = active_plan().effective_cache_dir
    cache = ResultCache(cache_dir) if cache_dir else None
    trace = load_or_build_trace(profile, n_uops=n_uops, seed=seed,
                                name=name, cache=cache)
    return Trace(name=trace.name, uops=tuple(trace.uops),
                 group=trace.group, seed=trace.seed)


def get_trace(name: str, n_uops: int) -> Trace:
    """Build (and memoise) the canonical trace for ``name``.

    The seed is derived from the trace name, so every experiment and
    benchmark sees the identical uop stream.  Each call returns a
    *defensive copy* (fresh ``Trace`` wrapper and uop list around the
    shared immutable uops): no experiment can mutate another's input
    stream through the memoiser.  When the ambient
    :class:`~repro.parallel.runner.ExecutionPlan` carries a cache
    directory, cold builds go through the on-disk trace cache.

    The name and budget are validated here — the boundary every
    experiment, job and CLI path funnels through — so a typo'd trace
    name fails with "did you mean" suggestions
    (:class:`~repro.trace.workloads.UnknownTraceError`) instead of a
    raw ``KeyError`` deep in a worker process.
    """
    if n_uops < 1:
        raise ValueError(f"n_uops must be >= 1, got {n_uops}")
    name = resolve_trace_name(name)
    master = _master_trace(name, n_uops, trace_seed(name),
                           profile_for(name))
    return Trace(name=master.name, uops=list(master.uops),
                 group=master.group, seed=master.seed)


def group_traces(group: str,
                 settings: ExperimentSettings = DEFAULT_SETTINGS) -> List[str]:
    """The trace names of ``group``, truncated per the settings."""
    names = TRACE_GROUPS[group]
    if settings.traces_per_group is not None:
        names = names[:settings.traces_per_group]
    return list(names)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table (the experiments' output format)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.1f}%"
