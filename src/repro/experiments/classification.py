"""Figures 5 and 6: load scheduling classification.

Figure 5 splits the dynamic loads of each trace group (32-entry window)
into actually-colliding (AC), conflicting-but-not-colliding (ANC), and
no-conflict.  The paper's headline: ~10 % AC, ~60 % ANC, ~30 %
no-conflict — "between 60 %-70 % of the loads can benefit from a
collision predictor".

Figure 6 repeats the classification for the SysmarkNT traces across
scheduling windows of 8..128 entries: AC grows with the window while
the no-conflict share shrinks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.ordering import TraditionalOrdering
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
)
from repro.parallel import SimJob, run_jobs, sim_job

#: Figure 5's trace groups (SpecFP95 is not shown in the paper's figure).
FIG5_GROUPS = ("SysmarkNT", "SpecInt95", "Sysmark95", "Games", "TPC", "Java")

WINDOW_SWEEP = (8, 16, 32, 64, 128)


@sim_job("classify")
def _classify_leaf(name: str, window: int, n_uops: int) -> Dict:
    """One (trace x window) classification simulation — one job."""
    trace = get_trace(name, n_uops)
    machine = Machine(config=BASELINE_MACHINE.with_window(window),
                      scheme=TraditionalOrdering())
    result = machine.run(trace)
    return {
        "trace": name,
        "window": window,
        "ac": result.frac_actually_colliding,
        "anc": result.frac_anc,
        "no_conflict": result.frac_not_conflicting,
    }


def _classify_job(name: str, window: int, n_uops: int) -> SimJob:
    return SimJob.make(_classify_leaf, key=("classify", name, window),
                       name=name, window=window, n_uops=n_uops)


def classify_trace(name: str, window: int = 32,
                   settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Run one trace under Traditional ordering and return its mix."""
    return _classify_leaf(name, window, settings.n_uops)


def _mean_mix(rows: Sequence[Dict]) -> Dict[str, float]:
    n = len(rows)
    return {
        "ac": sum(r["ac"] for r in rows) / n,
        "anc": sum(r["anc"] for r in rows) / n,
        "no_conflict": sum(r["no_conflict"] for r in rows) / n,
    }


def run_fig5(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Per-group classification mix at the 32-entry baseline window."""
    grid = [(group, name) for group in FIG5_GROUPS
            for name in group_traces(group, settings)]
    jobs = [_classify_job(name, 32, settings.n_uops)
            for _, name in grid]
    results = run_jobs(jobs, settings)
    by_group: Dict[str, List[Dict]] = {}
    for (group, _), row in zip(grid, results):
        by_group.setdefault(group, []).append(row)
    groups = {group: _mean_mix(rows) for group, rows in by_group.items()}
    return {"figure": "fig5", "groups": groups}


def render_fig5(data: Dict) -> str:
    """Render the Figure 5 table plus a stacked bar chart."""
    from repro.experiments.reporting import stacked_bar_chart
    rows = [[g, v["ac"], v["anc"], v["no_conflict"],
             v["ac"] + v["anc"]]
            for g, v in data["groups"].items()]
    table = format_table(
        ["group", "AC", "ANC", "no-conflict", "predictor-helps"],
        rows,
        title="Figure 5 — load classification (fractions of all loads, "
              "32-entry window)")
    chart = stacked_bar_chart(
        [(g, {"AC": v["ac"], "ANC": v["anc"],
              "none": v["no_conflict"]})
         for g, v in data["groups"].items()],
        segment_chars={"AC": "#", "ANC": "=", "none": "."})
    return table + "\n\n" + chart


def run_fig6(settings: ExperimentSettings = DEFAULT_SETTINGS,
             windows: Sequence[int] = WINDOW_SWEEP) -> Dict:
    """SysmarkNT classification across scheduling-window sizes."""
    names = group_traces("SysmarkNT", settings)
    grid = [(window, name) for window in windows for name in names]
    jobs = [_classify_job(name, window, settings.n_uops)
            for window, name in grid]
    results = run_jobs(jobs, settings)
    by_window: Dict[int, List[Dict]] = {}
    for (window, _), row in zip(grid, results):
        by_window.setdefault(window, []).append(row)
    sweep = [{"window": window, **_mean_mix(by_window[window])}
             for window in windows]
    return {"figure": "fig6", "sweep": sweep}


def render_fig6(data: Dict) -> str:
    """Render the Figure 6 table plus a stacked bar chart."""
    from repro.experiments.reporting import stacked_bar_chart
    rows = [[s["window"], s["ac"], s["anc"], s["no_conflict"]]
            for s in data["sweep"]]
    table = format_table(
        ["window", "AC", "ANC", "no-conflict"], rows,
        title="Figure 6 — classification vs. scheduling window "
              "(SysmarkNT)")
    chart = stacked_bar_chart(
        [(str(s["window"]), {"AC": s["ac"], "ANC": s["anc"],
                             "none": s["no_conflict"]})
         for s in data["sweep"]],
        segment_chars={"AC": "#", "ANC": "=", "none": "."})
    return table + "\n\n" + chart
