"""Figures 5 and 6: load scheduling classification.

Figure 5 splits the dynamic loads of each trace group (32-entry window)
into actually-colliding (AC), conflicting-but-not-colliding (ANC), and
no-conflict.  The paper's headline: ~10 % AC, ~60 % ANC, ~30 %
no-conflict — "between 60 %-70 % of the loads can benefit from a
collision predictor".

Figure 6 repeats the classification for the SysmarkNT traces across
scheduling windows of 8..128 entries: AC grows with the window while
the no-conflict share shrinks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.ordering import TraditionalOrdering
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
)

#: Figure 5's trace groups (SpecFP95 is not shown in the paper's figure).
FIG5_GROUPS = ("SysmarkNT", "SpecInt95", "Sysmark95", "Games", "TPC", "Java")

WINDOW_SWEEP = (8, 16, 32, 64, 128)


def classify_trace(name: str, window: int = 32,
                   settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Run one trace under Traditional ordering and return its mix."""
    trace = get_trace(name, settings.n_uops)
    machine = Machine(config=BASELINE_MACHINE.with_window(window),
                      scheme=TraditionalOrdering())
    result = machine.run(trace)
    return {
        "trace": name,
        "window": window,
        "ac": result.frac_actually_colliding,
        "anc": result.frac_anc,
        "no_conflict": result.frac_not_conflicting,
    }


def run_fig5(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Per-group classification mix at the 32-entry baseline window."""
    groups: Dict[str, Dict[str, float]] = {}
    for group in FIG5_GROUPS:
        rows = [classify_trace(n, 32, settings)
                for n in group_traces(group, settings)]
        n = len(rows)
        groups[group] = {
            "ac": sum(r["ac"] for r in rows) / n,
            "anc": sum(r["anc"] for r in rows) / n,
            "no_conflict": sum(r["no_conflict"] for r in rows) / n,
        }
    return {"figure": "fig5", "groups": groups}


def render_fig5(data: Dict) -> str:
    """Render the Figure 5 table plus a stacked bar chart."""
    from repro.experiments.reporting import stacked_bar_chart
    rows = [[g, v["ac"], v["anc"], v["no_conflict"],
             v["ac"] + v["anc"]]
            for g, v in data["groups"].items()]
    table = format_table(
        ["group", "AC", "ANC", "no-conflict", "predictor-helps"],
        rows,
        title="Figure 5 — load classification (fractions of all loads, "
              "32-entry window)")
    chart = stacked_bar_chart(
        [(g, {"AC": v["ac"], "ANC": v["anc"],
              "none": v["no_conflict"]})
         for g, v in data["groups"].items()],
        segment_chars={"AC": "#", "ANC": "=", "none": "."})
    return table + "\n\n" + chart


def run_fig6(settings: ExperimentSettings = DEFAULT_SETTINGS,
             windows: Sequence[int] = WINDOW_SWEEP) -> Dict:
    """SysmarkNT classification across scheduling-window sizes."""
    names = group_traces("SysmarkNT", settings)
    sweep: List[Dict] = []
    for window in windows:
        rows = [classify_trace(n, window, settings) for n in names]
        n = len(rows)
        sweep.append({
            "window": window,
            "ac": sum(r["ac"] for r in rows) / n,
            "anc": sum(r["anc"] for r in rows) / n,
            "no_conflict": sum(r["no_conflict"] for r in rows) / n,
        })
    return {"figure": "fig6", "sweep": sweep}


def render_fig6(data: Dict) -> str:
    """Render the Figure 6 table plus a stacked bar chart."""
    from repro.experiments.reporting import stacked_bar_chart
    rows = [[s["window"], s["ac"], s["anc"], s["no_conflict"]]
            for s in data["sweep"]]
    table = format_table(
        ["window", "AC", "ANC", "no-conflict"], rows,
        title="Figure 6 — classification vs. scheduling window "
              "(SysmarkNT)")
    chart = stacked_bar_chart(
        [(str(s["window"]), {"AC": s["ac"], "ANC": s["anc"],
                             "none": s["no_conflict"]})
         for s in data["sweep"]],
        segment_chars={"AC": "#", "ANC": "=", "none": "."})
    return table + "\n\n" + chart
