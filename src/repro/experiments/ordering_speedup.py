"""Figure 7: speedup vs. memory ordering scheme.

Per SysmarkNT trace, speedup over the Traditional baseline for the
Postponing, Opportunistic, Inclusive, Exclusive and Perfect schemes,
with the two predictor-based schemes using the paper's 2K-entry 4-way
2-bit-counter Full CHT.  The paper's curve: 6 % → 9 % → 14 % → 16 % →
17 % on SysmarkNT average.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import BASELINE_MACHINE, MachineConfig
from repro.common.stats import geometric_mean
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
)
from repro.parallel import SimJob, run_jobs, sim_job

SCHEMES = ("postponing", "opportunistic", "inclusive", "exclusive",
           "perfect")


@sim_job("ordering-speedups")
def _speedups_leaf(name: str, config: MachineConfig,
                   schemes: Sequence[str], n_uops: int
                   ) -> Dict[str, float]:
    """One trace's speedups over Traditional — one job."""
    trace = get_trace(name, n_uops)
    baseline = Machine(config=config,
                       scheme=make_scheme("traditional")).run(trace)
    out: Dict[str, float] = {}
    for scheme_name in schemes:
        result = Machine(config=config,
                         scheme=make_scheme(scheme_name)).run(trace)
        out[scheme_name] = result.speedup_over(baseline)
    return out


def speedup_job(name: str, config: MachineConfig, n_uops: int,
                schemes: Sequence[str] = SCHEMES,
                tag: object = "") -> SimJob:
    """A job computing one trace's per-scheme speedups under
    ``config``."""
    return SimJob.make(_speedups_leaf,
                       key=("ordering-speedups", tag, name),
                       name=name, config=config, schemes=tuple(schemes),
                       n_uops=n_uops)


def speedups_for_trace(name: str,
                       config: MachineConfig = BASELINE_MACHINE,
                       schemes: Sequence[str] = SCHEMES,
                       settings: ExperimentSettings = DEFAULT_SETTINGS
                       ) -> Dict[str, float]:
    """Speedup over Traditional for each scheme on one trace."""
    return _speedups_leaf(name, config, tuple(schemes), settings.n_uops)


def run_fig7(settings: ExperimentSettings = DEFAULT_SETTINGS,
             group: str = "SysmarkNT") -> Dict:
    """Per-NT-trace speedups plus the group geometric mean."""
    names = group_traces(group, settings)
    jobs = [speedup_job(name, BASELINE_MACHINE, settings.n_uops,
                        tag="fig7")
            for name in names]
    results = run_jobs(jobs, settings)
    per_trace = dict(zip(names, results))
    average = {
        scheme: geometric_mean([per_trace[n][scheme] for n in names])
        for scheme in SCHEMES
    }
    return {"figure": "fig7", "group": group, "per_trace": per_trace,
            "average": average}


def render_fig7(data: Dict) -> str:
    """Render the Figure 7 table plus a speedup bar chart."""
    headers = ["trace"] + list(SCHEMES)
    rows: List[List[object]] = []
    for name, speedups in data["per_trace"].items():
        rows.append([name] + [speedups[s] for s in SCHEMES])
    rows.append([f"{data['group']}_avg"]
                + [data["average"][s] for s in SCHEMES])
    from repro.experiments.reporting import speedup_chart
    table = format_table(
        headers, rows,
        title="Figure 7 — speedup over Traditional vs. ordering scheme")
    chart = speedup_chart(data["average"],
                          title=f"{data['group']} average gain")
    return table + "\n\n" + chart
