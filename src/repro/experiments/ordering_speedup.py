"""Figure 7: speedup vs. memory ordering scheme.

Per SysmarkNT trace, speedup over the Traditional baseline for the
Postponing, Opportunistic, Inclusive, Exclusive and Perfect schemes,
with the two predictor-based schemes using the paper's 2K-entry 4-way
2-bit-counter Full CHT.  The paper's curve: 6 % → 9 % → 14 % → 16 % →
17 % on SysmarkNT average.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import BASELINE_MACHINE, MachineConfig
from repro.common.stats import geometric_mean
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
)

SCHEMES = ("postponing", "opportunistic", "inclusive", "exclusive",
           "perfect")


def speedups_for_trace(name: str,
                       config: MachineConfig = BASELINE_MACHINE,
                       schemes: Sequence[str] = SCHEMES,
                       settings: ExperimentSettings = DEFAULT_SETTINGS
                       ) -> Dict[str, float]:
    """Speedup over Traditional for each scheme on one trace."""
    trace = get_trace(name, settings.n_uops)
    baseline = Machine(config=config,
                       scheme=make_scheme("traditional")).run(trace)
    out: Dict[str, float] = {}
    for scheme_name in schemes:
        result = Machine(config=config,
                         scheme=make_scheme(scheme_name)).run(trace)
        out[scheme_name] = result.speedup_over(baseline)
    return out


def run_fig7(settings: ExperimentSettings = DEFAULT_SETTINGS,
             group: str = "SysmarkNT") -> Dict:
    """Per-NT-trace speedups plus the group geometric mean."""
    names = group_traces(group, settings)
    per_trace: Dict[str, Dict[str, float]] = {}
    for name in names:
        per_trace[name] = speedups_for_trace(name, settings=settings)
    average = {
        scheme: geometric_mean([per_trace[n][scheme] for n in names])
        for scheme in SCHEMES
    }
    return {"figure": "fig7", "group": group, "per_trace": per_trace,
            "average": average}


def render_fig7(data: Dict) -> str:
    """Render the Figure 7 table plus a speedup bar chart."""
    headers = ["trace"] + list(SCHEMES)
    rows: List[List[object]] = []
    for name, speedups in data["per_trace"].items():
        rows.append([name] + [speedups[s] for s in SCHEMES])
    rows.append([f"{data['group']}_avg"]
                + [data["average"][s] for s in SCHEMES])
    from repro.experiments.reporting import speedup_chart
    table = format_table(
        headers, rows,
        title="Figure 7 — speedup over Traditional vs. ordering scheme")
    chart = speedup_chart(data["average"],
                          title=f"{data['group']} average gain")
    return table + "\n\n" + chart
