"""Figure 12: bank predictor comparison via the section 4.3 metric.

Each predictor (A, B, C, Addr) replays the load address stream of the
SpecINT95 and SpecFP95 traces, measuring its prediction rate P and
correct:wrong ratio R; the metric ``P·(1 − 2·Penalty/R)`` is then
plotted against the misprediction penalty (0..10).  The figure's
reading: the metric at penalty 0 *is* the prediction rate, and the
slope reveals the accuracy — A/B predict ~50 % of loads at ~97-98 %,
C/Addr ~70 %, making C and the address predictor the sliced-pipe
candidates.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.api import PredictorSpec, build_predictor, spec_for
from repro.bank.base import BankPredictor, BankStats
from repro.bank.metric import metric
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
)
from repro.parallel import SimJob, run_jobs, sim_job

PENALTIES = tuple(range(0, 11))

#: (label, spec) — Figure 12's contenders as
#: :class:`~repro.api.spec.PredictorSpec` values built through
#: :func:`repro.api.build_predictor`.
PREDICTORS: Tuple[Tuple[str, PredictorSpec], ...] = (
    ("A", spec_for("bank.a")),
    ("B", spec_for("bank.b")),
    ("C", spec_for("bank.c")),
    ("Addr", spec_for("bank.address")),
)

N_BANKS = 2
LINE_BYTES = 64


@lru_cache(maxsize=64)
def _load_stream(name: str, n_uops: int) -> Tuple[Tuple[int, int], ...]:
    """The (pc, address) stream of every load in program order."""
    trace = get_trace(name, n_uops)
    return tuple((u.pc, u.mem.address) for u in trace.loads())


def evaluate(predictor: BankPredictor,
             stream: Sequence[Tuple[int, int]]) -> BankStats:
    """Replay the loads through ``predictor`` (predict → train).

    A predictor constructed with ``backend="vectorized"`` replays
    through the batch kernels of :mod:`repro.fastpath` — by contract
    bit-identical to the scalar loop below (pinned by
    ``tests/fastpath/``).
    """
    import repro.fastpath as fastpath
    if fastpath.enabled(predictor):
        from repro.fastpath import bank as fp_bank
        if fp_bank.supports(predictor):
            pcs, banks = fp_bank.stream_arrays(stream, LINE_BYTES, N_BANKS)
            predicted = fp_bank.replay_banks(predictor, pcs, banks)
            stats = BankStats()
            stats.loads = len(stream)
            stats.predicted = int((predicted != -1).sum())
            stats.correct = int((predicted == banks).sum())
            return stats
    stats = BankStats()
    for pc, address in stream:
        bank = (address // LINE_BYTES) % N_BANKS
        stats.record(predictor.predict(pc), bank)
        predictor.update(pc, bank, address)
    return stats


@sim_job("bank-metric")
def _bank_trace_leaf(name: str, n_uops: int) -> Dict[str, BankStats]:
    """One trace's load stream replayed through every bank predictor."""
    stream = _load_stream(name, n_uops)
    return {label: evaluate(build_predictor(spec), stream)
            for label, spec in PREDICTORS}


def run_fig12(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Measure the Figure 12 predictor profiles and metric curves."""
    grid = [(group, name) for group in ("SpecInt95", "SpecFP95")
            for name in group_traces(group, settings)]
    jobs = [SimJob.make(_bank_trace_leaf, key=("bank-metric", name),
                        name=name, n_uops=settings.n_uops)
            for _, name in grid]
    per_trace = run_jobs(jobs, settings)
    by_group: Dict[str, List[Dict[str, BankStats]]] = {}
    for (group, _), stats in zip(grid, per_trace):
        by_group.setdefault(group, []).append(stats)
    out: Dict[str, Dict] = {}
    for group in ("SpecInt95", "SpecFP95"):
        rows: List[Dict] = []
        for label, _ in PREDICTORS:
            total = BankStats()
            for stats in by_group[group]:
                total.merge(stats[label])
            ratio = total.ratio
            curve = [metric(total.prediction_rate,
                            min(ratio, 1e9), p, approximate=True)
                     for p in PENALTIES]
            rows.append({
                "predictor": label,
                "prediction_rate": total.prediction_rate,
                "accuracy": total.accuracy,
                "ratio": ratio,
                "curve": curve,
            })
        out[group] = {"rows": rows}
    return {"figure": "fig12", "groups": out, "penalties": list(PENALTIES)}


def render_fig12(data: Dict) -> str:
    """Render the Figure 12 tables and metric line plots."""
    from repro.experiments.reporting import line_plot
    blocks: List[str] = []
    for group, payload in data["groups"].items():
        rows = []
        for r in payload["rows"]:
            rows.append([r["predictor"], r["prediction_rate"],
                         r["accuracy"],
                         ("inf" if r["ratio"] == float("inf")
                          else round(r["ratio"], 1))]
                        + [round(m, 3) for m in r["curve"][:6]])
        headers = (["predictor", "P", "accuracy", "R"]
                   + [f"pen={p}" for p in data["penalties"][:6]])
        blocks.append(format_table(
            headers, rows,
            title=f"Figure 12 — bank predictor metric ({group})"))
        series = {
            r["predictor"]: list(zip(map(float, data["penalties"]),
                                     r["curve"]))
            for r in payload["rows"]
        }
        blocks.append(line_plot(series, title=f"metric vs penalty "
                                              f"({group})",
                                x_label="misprediction penalty",
                                y_label="fraction of ideal 2x gain"))
    return "\n\n".join(blocks)
