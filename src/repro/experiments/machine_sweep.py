"""Figure 8: speedup vs. machine configuration.

Sweeps the integer/memory execution unit counts — EU2/MEM1, EU2/MEM2,
EU4/MEM2 — across the trace groups the paper shows (SysmarkNT, SpecInt,
Sysmark95, and "Other" = Games+Java+TPC), reporting each ordering
scheme's speedup over Traditional on the same configuration.  The
paper's observation: "wider machines gain more performance when using a
better memory ordering mechanism".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.config import BASELINE_MACHINE
from repro.common.stats import geometric_mean
from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    group_traces,
)
from repro.experiments.ordering_speedup import SCHEMES, speedup_job
from repro.parallel import run_jobs

#: (label, n_int, n_mem) — the Figure 8 x-axis.
CONFIGS: Tuple[Tuple[str, int, int], ...] = (
    ("EU2/MEM1", 2, 1),
    ("EU2/MEM2", 2, 2),
    ("EU4/MEM2", 4, 2),
)

#: Figure 8's grouping; "Other" aggregates Games, Java and TPC.
FIG8_GROUPS: Dict[str, Tuple[str, ...]] = {
    "NT": ("SysmarkNT",),
    "ISPEC": ("SpecInt95",),
    "Sys95": ("Sysmark95",),
    "Other": ("Games", "Java", "TPC"),
}


def run_fig8(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Sweep the Figure 8 machine configurations.

    The full (config x group x trace) grid is flattened into one job
    list up front, so a pooled run overlaps every cell of the sweep.
    """
    grid: List[Tuple[str, str, str]] = []
    jobs = []
    for label, n_int, n_mem in CONFIGS:
        config = BASELINE_MACHINE.with_units(n_int, n_mem)
        for group_label, group_names in FIG8_GROUPS.items():
            for g in group_names:
                for name in group_traces(g, settings):
                    grid.append((label, group_label, name))
                    jobs.append(speedup_job(name, config,
                                            settings.n_uops, tag=label))
    flat = run_jobs(jobs, settings)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    acc: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    for (label, group_label, _), speedups in zip(grid, flat):
        cell = acc.setdefault((label, group_label),
                              {s: [] for s in SCHEMES})
        for s in SCHEMES:
            cell[s].append(speedups[s])
    for label, _, _ in CONFIGS:
        results[label] = {
            group_label: {s: geometric_mean(v)
                          for s, v in acc[(label, group_label)].items()}
            for group_label in FIG8_GROUPS
        }
    return {"figure": "fig8", "configs": results}


def render_fig8(data: Dict) -> str:
    """Render the Figure 8 table."""
    headers = ["config", "group"] + list(SCHEMES)
    rows: List[List[object]] = []
    for config_label, per_group in data["configs"].items():
        for group_label, speedups in per_group.items():
            rows.append([config_label, group_label]
                        + [speedups[s] for s in SCHEMES])
    return format_table(
        headers, rows,
        title="Figure 8 — speedup over Traditional vs. machine "
              "configuration")


def widening_gain(data: Dict, scheme: str = "exclusive") -> Dict[str, float]:
    """Average speedup of ``scheme`` per configuration (trend check).

    The paper's claim holds when this is non-decreasing from EU2/MEM1
    through EU4/MEM2.
    """
    out: Dict[str, float] = {}
    for config_label, per_group in data["configs"].items():
        out[config_label] = geometric_mean(
            [v[scheme] for v in per_group.values()])
    return out
