"""The machine-correctness oracle: event-stream invariant checking.

An :class:`InvariantChecker` subscribes (wildcard) to a
:class:`repro.obs.events.EventBus` and replays the machine's own event
stream against the recovery contract the paper's speculation techniques
depend on:

``retire-order``
    Uops retire in strict program order, each exactly once.
``conservation``
    Every renamed uop eventually retires (no uop is lost in flight),
    checked at :meth:`InvariantChecker.finish`.
``forward-from-older``
    Store-to-load forwarding only ever serves a load from an *older*
    store that the MOB is actually tracking.
``collision-squash`` / ``collision-replay``
    A visibly colliding load must be squashed and re-dispatched before
    it retires; a hidden (AC-PNC) collision must trap as an ordering
    violation, and the violated load must re-issue before retiring.
``mob-balance`` / ``mob-bound``
    Every STD links to a tracked STA exactly once, the number of
    tracked stores matches the number of retired STAs, and the MOB
    never holds more stores than the register pool can have in flight
    (a leaking MOB grows without bound and trips this).
``scheme-*``
    Per-scheme guarantees: schemes that wait for all older STAs
    (Traditional, Postponing) can never suffer a hidden ordering
    violation; the Perfect oracle can never collide at all.  The flags
    live on :class:`repro.engine.ordering.OrderingScheme`.

Violations raise (or, with ``strict=False``, collect) a structured
:class:`InvariantViolation` carrying the offending event and a ring
buffer of the most recent events for post-mortem debugging.

The checker is pure observer: it never mutates machine state, so an
instrumented run retires the identical uop stream as a bare one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.obs.events import Event, EventBus, EventKind


class InvariantViolation(RuntimeError):
    """A machine-correctness invariant was broken.

    Attributes
    ----------
    invariant:
        Stable identifier of the broken invariant (e.g.
        ``"forward-from-older"``) — the catalogue is documented in
        ``docs/robustness.md``.
    event:
        The event that exposed the violation (``None`` for end-of-run
        checks).
    window:
        The most recent events before (and including) the violation,
        oldest first — the post-mortem context.
    context:
        Invariant-specific details (seqs, counts, ...).
    """

    def __init__(self, invariant: str, message: str,
                 event: Optional[Event] = None,
                 window: Tuple[Event, ...] = (),
                 context: Optional[Dict[str, object]] = None) -> None:
        super().__init__(f"invariant {invariant!r} violated: {message}")
        self.invariant = invariant
        self.message = message
        self.event = event
        self.window = list(window)
        self.context = dict(context) if context else {}

    def post_mortem(self) -> str:
        """Human-readable dump of the event window for debugging."""
        lines = [f"invariant {self.invariant!r} violated: {self.message}"]
        if self.context:
            lines.append(f"context: {self.context}")
        if self.window:
            lines.append(f"last {len(self.window)} events:")
            lines.extend(f"  {event!r}" for event in self.window)
        return "\n".join(lines)


class InvariantChecker:
    """Asserts the machine's recovery contract over its event stream.

    Parameters
    ----------
    scheme:
        The machine's ordering scheme (optional).  When given, its
        ``never_violates`` / ``never_collides`` class flags enable the
        per-scheme invariants.
    config:
        The :class:`~repro.common.config.MachineConfig` (optional).
        When given, ``register_pool`` bounds the MOB occupancy check.
    window_size:
        Ring-buffer depth of recent events carried by violations.
    strict:
        ``True`` raises :class:`InvariantViolation` at the offending
        event; ``False`` collects violations in :attr:`violations` and
        keeps observing (useful for surveying a known-broken run).
    """

    def __init__(self, scheme=None, config=None,
                 window_size: int = 128, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[InvariantViolation] = []
        self._window: Deque[Event] = deque(maxlen=max(1, window_size))
        self._never_violates = bool(getattr(scheme, "never_violates", False))
        self._never_collides = bool(getattr(scheme, "never_collides", False))
        self._scheme_name = getattr(scheme, "name", None)
        self._mob_bound = getattr(config, "register_pool", None)
        # Shadow state reconstructed from the stream.
        self._renamed: Dict[int, str] = {}    # seq -> uop class name
        self._retired: Set[int] = set()
        self._last_retired = -1
        self._stas: Dict[int, bool] = {}      # sta_seq -> STD linked?
        self._needs_squash: Dict[int, int] = {}   # load seq -> cycle
        self._needs_violation: Set[int] = set()
        self._needs_replay: Set[int] = set()
        self._n_sta_retired = 0
        self.n_events = 0

    # -- plumbing -----------------------------------------------------------

    def attach(self, bus: EventBus) -> "InvariantChecker":
        """Subscribe to every event of ``bus``; returns self."""
        bus.subscribe(self.on_event)
        return self

    def _flag(self, invariant: str, message: str,
              event: Optional[Event] = None, **context: object) -> None:
        violation = InvariantViolation(invariant, message, event=event,
                                       window=tuple(self._window),
                                       context=context)
        if self.strict:
            raise violation
        self.violations.append(violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    def event_window(self) -> List[Event]:
        """The most recent events seen (oldest first)."""
        return list(self._window)

    # -- the observer -------------------------------------------------------

    def on_event(self, event: Event) -> None:
        self._window.append(event)
        self.n_events += 1
        kind = event.kind
        if kind == EventKind.RENAME:
            self._on_rename(event)
        elif kind == EventKind.ISSUE:
            self._needs_replay.discard(event.seq)
        elif kind == EventKind.RETIRE:
            self._on_retire(event)
        elif kind == EventKind.SQUASH:
            if event.fields.get("cause") == "collision":
                self._needs_squash.pop(event.seq, None)
        elif kind == EventKind.COLLISION:
            self._on_collision(event)
        elif kind == EventKind.VIOLATION:
            self._on_violation(event)
        elif kind == EventKind.FORWARD:
            self._on_forward(event)
        elif kind == EventKind.STORE_TRACKED:
            self._on_store_tracked(event)
        elif kind == EventKind.STORE_DATA:
            self._on_store_data(event)

    def _on_rename(self, event: Event) -> None:
        if event.seq in self._renamed:
            self._flag("rename-unique",
                       f"uop seq {event.seq} renamed twice", event)
            return
        self._renamed[event.seq] = str(event.fields.get("uclass", "?"))

    def _on_retire(self, event: Event) -> None:
        seq = event.seq
        if seq <= self._last_retired:
            self._flag("retire-order",
                       f"uop seq {seq} retired after seq "
                       f"{self._last_retired} — retirement must follow "
                       f"program order", event,
                       last_retired=self._last_retired)
        if self._renamed and seq not in self._renamed:
            self._flag("retire-unknown",
                       f"uop seq {seq} retired but was never renamed",
                       event)
        if seq in self._needs_squash:
            self._flag("collision-squash",
                       f"load seq {seq} collided visibly at cycle "
                       f"{self._needs_squash[seq]} but retired without a "
                       f"collision squash (broken recovery)", event,
                       collision_cycle=self._needs_squash[seq])
            self._needs_squash.pop(seq, None)
        if seq in self._needs_violation:
            self._flag("collision-replay",
                       f"load seq {seq} collided with a hidden store but "
                       f"retired without an ordering-violation trap",
                       event)
            self._needs_violation.discard(seq)
        if seq in self._needs_replay:
            self._flag("violation-replay",
                       f"load seq {seq} trapped on an ordering violation "
                       f"but retired without re-issuing", event)
            self._needs_replay.discard(seq)
        if self._renamed.get(seq) == "STA":
            self._n_sta_retired += 1
        self._retired.add(seq)
        self._last_retired = max(self._last_retired, seq)

    def _on_collision(self, event: Event) -> None:
        if self._never_collides:
            self._flag("scheme-collision",
                       f"scheme {self._scheme_name!r} guarantees no "
                       f"collisions but load seq {event.seq} collided",
                       event)
        if event.fields.get("visible"):
            self._needs_squash[event.seq] = event.cycle
        else:
            self._needs_violation.add(event.seq)

    def _on_violation(self, event: Event) -> None:
        if self._never_violates:
            self._flag("scheme-violation",
                       f"scheme {self._scheme_name!r} waits for all older "
                       f"STAs and can never suffer a hidden ordering "
                       f"violation, yet load seq {event.seq} trapped",
                       event)
        self._needs_violation.discard(event.seq)
        self._needs_replay.add(event.seq)

    def _on_forward(self, event: Event) -> None:
        store_seq = event.fields.get("store_seq")
        if store_seq is None:
            return  # pre-instrumentation emitter; nothing to check
        store_seq = int(store_seq)  # type: ignore[arg-type]
        if store_seq >= event.seq:
            self._flag("forward-from-older",
                       f"load seq {event.seq} was forwarded data from "
                       f"store seq {store_seq}, which is not older",
                       event, store_seq=store_seq)
        elif store_seq not in self._stas:
            self._flag("forward-untracked-store",
                       f"load seq {event.seq} was forwarded data from "
                       f"store seq {store_seq}, which the MOB never "
                       f"tracked", event, store_seq=store_seq)

    def _on_store_tracked(self, event: Event) -> None:
        if event.seq in self._stas:
            self._flag("mob-balance",
                       f"STA seq {event.seq} entered the MOB twice",
                       event)
            return
        self._stas[event.seq] = False
        depth = event.fields.get("mob_depth")
        if (self._mob_bound is not None and depth is not None
                and int(depth) > int(self._mob_bound)):  # type: ignore[arg-type]
            self._flag("mob-bound",
                       f"MOB holds {depth} stores but only "
                       f"{self._mob_bound} uops can be in flight — "
                       f"retired stores are leaking", event,
                       bound=self._mob_bound)

    def _on_store_data(self, event: Event) -> None:
        sta_seq = event.fields.get("sta_seq")
        if sta_seq is None:
            return
        sta_seq = int(sta_seq)  # type: ignore[arg-type]
        if sta_seq not in self._stas:
            self._flag("mob-balance",
                       f"STD seq {event.seq} linked to STA seq {sta_seq}, "
                       f"which the MOB never tracked", event,
                       sta_seq=sta_seq)
        elif self._stas[sta_seq]:
            self._flag("mob-balance",
                       f"STA seq {sta_seq} received two STD linkages",
                       event, sta_seq=sta_seq)
        else:
            self._stas[sta_seq] = True

    # -- end of run ---------------------------------------------------------

    def finish(self) -> List[InvariantViolation]:
        """Run the end-of-run balance checks; returns the violations
        collected so far (empty in strict mode unless checks pass)."""
        lost = set(self._renamed) - self._retired
        if lost:
            sample = sorted(lost)[:8]
            self._flag("conservation",
                       f"{len(lost)} renamed uop(s) never retired "
                       f"(first: {sample}) — uops were lost in flight",
                       lost=len(lost), sample=sample)
        n_sta_renamed = sum(1 for cls in self._renamed.values()
                            if cls == "STA")
        if len(self._stas) != n_sta_renamed:
            self._flag("mob-balance",
                       f"{n_sta_renamed} STAs renamed but "
                       f"{len(self._stas)} entered the MOB",
                       tracked=len(self._stas), renamed=n_sta_renamed)
        if self._n_sta_retired != n_sta_renamed:
            self._flag("mob-balance",
                       f"{n_sta_renamed} STAs renamed but "
                       f"{self._n_sta_retired} retired",
                       retired=self._n_sta_retired,
                       renamed=n_sta_renamed)
        return self.violations

    def summary(self) -> Dict[str, object]:
        """Machine-readable snapshot for manifests and reports."""
        return {
            "events_checked": self.n_events,
            "uops_renamed": len(self._renamed),
            "uops_retired": len(self._retired),
            "stores_tracked": len(self._stas),
            "violations": [
                {"invariant": v.invariant, "message": v.message,
                 "context": v.context}
                for v in self.violations
            ],
        }


def checked_run(machine, trace, max_cycles: Optional[int] = None,
                strict: bool = True, window_size: int = 128):
    """Run ``trace`` on ``machine`` under the invariant oracle.

    When the machine is un-instrumented, a private event bus is wired
    through every observable component for the duration of the run and
    fully unwired afterwards (the machine comes back exactly as it
    went in).  When the machine already carries an event bus, the
    checker simply subscribes to it.

    Returns ``(SimResult, InvariantChecker)``.  In strict mode the
    first violation raises :class:`InvariantViolation` (end-of-run
    balance checks included); otherwise inspect
    ``checker.violations``.
    """
    from repro.obs import instrument

    checker = InvariantChecker(scheme=machine.scheme,
                               config=machine.config,
                               window_size=window_size, strict=strict)
    own_bus = machine.obs is None
    if own_bus:
        targets = [machine, machine.hierarchy, machine.hmp,
                   machine.bank_predictor, machine.branch_predictor,
                   getattr(machine.scheme, "cht", None)]
        saved = [(t, getattr(t, "obs", None)) for t in targets
                 if t is not None]
        bus = instrument(machine, EventBus())
    else:
        bus = machine.obs
    checker.attach(bus)
    try:
        result = machine.run(trace, max_cycles=max_cycles)
    finally:
        if own_bus:
            for target, previous in saved:
                target.obs = previous
    checker.finish()
    return result, checker
