"""repro.robust — fault injection, invariant checking, self-healing.

The speculation machinery this repo reproduces (CHT memory-dependence
prediction, hit/miss prediction, bank prediction) is only trustworthy if
the simulated core's recovery semantics are actually correct: a silently
broken MOB or a mis-squashed replay produces plausible-looking speedup
curves that are wrong.  This package is the correctness spine:

* :mod:`repro.robust.invariants` — an :class:`InvariantChecker` that
  subscribes to the :mod:`repro.obs` event bus and asserts the machine's
  recovery contract (program-order retirement, no forwarding from
  younger stores, collision → squash/replay pairing, MOB lifecycle
  balance, conservation of retired uops, per-scheme guarantees).
  Violations raise a structured :class:`InvariantViolation` carrying the
  recent event window for post-mortem.  Opt in per run with
  :func:`checked_run`, or globally with ``REPRO_CHECK_INVARIANTS=1``.

* :mod:`repro.robust.faults` — a deterministic, seeded
  :class:`FaultPlan` plus a library of saboteurs: predictor-output
  flippers (CHT / HMP / bank), memory-latency injection, result-cache
  corruption, worker kill/stall injection, and deliberately broken
  engine components (:class:`SabotagedMOB`, :class:`SkipSquashMachine`,
  :class:`LyingOrdering`) that chaos tests use to prove the oracle
  catches real breakage and the runner degrades gracefully.

The self-healing execution side (per-job timeouts, bounded retries,
pool-to-serial fallback, partial-result reporting) lives in
:mod:`repro.parallel.runner` and consumes :class:`FaultPlan` via
:class:`~repro.parallel.runner.ExecutionPlan`.  See
``docs/robustness.md`` for the full catalogue and knobs.
"""

from repro.robust.invariants import (
    InvariantChecker,
    InvariantViolation,
    checked_run,
)
from repro.robust.faults import (
    FaultPlan,
    FaultyBankPredictor,
    FaultyCHT,
    FaultyHMP,
    KILL_EXIT_CODE,
    LatencyFaultHierarchy,
    LyingOrdering,
    SabotagedMOB,
    SkipSquashMachine,
    apply_fault_plan,
    corrupt_cache,
    parse_chaos_spec,
)

__all__ = [
    "FaultPlan",
    "FaultyBankPredictor",
    "FaultyCHT",
    "FaultyHMP",
    "InvariantChecker",
    "InvariantViolation",
    "KILL_EXIT_CODE",
    "LatencyFaultHierarchy",
    "LyingOrdering",
    "SabotagedMOB",
    "SkipSquashMachine",
    "apply_fault_plan",
    "checked_run",
    "corrupt_cache",
    "parse_chaos_spec",
]
