"""Deterministic, seeded fault injection.

Two families live here:

**Chaos faults** — the :class:`FaultPlan` consumed by
:class:`repro.parallel.runner.ExecutionPlan`.  A plan is a frozen value
(picklable, carried into worker processes) whose every decision is a
pure function of ``(seed, salt, job identity)`` via SHA-256, so a chaos
run is exactly reproducible: the same plan kills the same workers,
stalls the same jobs, flips the same predictions.  Process-level faults
(kill/stall) only ever fire *inside a worker* — the serial path and the
pool-to-serial fallback are a safe harbour by construction.

**Saboteurs** — deliberately broken engine components
(:class:`SabotagedMOB`, :class:`SkipSquashMachine`,
:class:`LyingOrdering`) used by the invariant tests to prove the
:mod:`repro.robust.invariants` oracle catches each class of real
breakage (forwarding from a younger store, a skipped collision squash,
a leaking MOB, a scheme violating its own dispatch guarantee).

Fault decisions that land on an instrumented machine are emitted as
``fault-injected`` events (:data:`repro.obs.events.EventKind.FAULT`)
so a chaos run's event stream records exactly what was perturbed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bank.base import BankPrediction, BankPredictor
from repro.cht.base import CollisionPrediction, CollisionPredictor
from repro.engine.machine import Machine
from repro.engine.mob import MemoryOrderBuffer
from repro.engine.ordering import TraditionalOrdering
from repro.hitmiss.base import HitMissPredictor
from repro.obs.events import EventKind

#: Exit status a chaos-killed worker dies with — distinguishable from a
#: genuine crash (which produces a traceback payload, not a dead pool).
KILL_EXIT_CODE = 86


def _roll(seed: int, salt: str, *parts: object) -> float:
    """Deterministic uniform [0, 1) from ``(seed, salt, parts)``."""
    material = "\x1f".join([str(seed), salt] + [repr(p) for p in parts])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    All fractions are probabilities in [0, 1] evaluated per decision
    point with :func:`_roll` — no global RNG state, so the plan is
    safe to evaluate concurrently from many processes.

    Attributes
    ----------
    seed:
        Root of every decision; two plans with different seeds fault
        different jobs.
    kill_fraction / kill_attempts:
        Fraction of jobs whose worker is killed (``os._exit``), and on
        how many leading attempts the kill fires (1 = first attempt
        only, so a retry succeeds — the self-healing happy path).
    stall_fraction / stall_seconds:
        Fraction of jobs whose worker sleeps ``stall_seconds`` before
        running (exercises the per-job timeout watchdog).
    corrupt_cache_fraction:
        Fraction of :class:`~repro.parallel.cache.ResultCache` entries
        :func:`corrupt_cache` garbles when invoked with this plan.
    flip_cht / flip_hmp / flip_bank:
        Per-prediction flip probabilities applied by
        :func:`apply_fault_plan`'s predictor wrappers.
    extra_load_latency:
        Cycles added to every load by :class:`LatencyFaultHierarchy`.
    target_kinds:
        When non-empty, process-level faults only fire for jobs whose
        ``kind`` is listed (confine chaos to a sacrificial job class).
    """

    seed: int = 0
    kill_fraction: float = 0.0
    kill_attempts: int = 1
    stall_fraction: float = 0.0
    stall_seconds: float = 1.0
    corrupt_cache_fraction: float = 0.0
    flip_cht: float = 0.0
    flip_hmp: float = 0.0
    flip_bank: float = 0.0
    extra_load_latency: int = 0
    target_kinds: Tuple[str, ...] = ()

    # -- job-level decisions ------------------------------------------------

    def targets(self, job) -> bool:
        """Is ``job`` eligible for process-level faults?"""
        return not self.target_kinds or job.kind in self.target_kinds

    def kills(self, job, attempt: int) -> bool:
        """Should the worker running ``job``'s ``attempt`` (1-based)
        be killed?"""
        return (self.kill_fraction > 0.0
                and attempt <= self.kill_attempts
                and self.targets(job)
                and _roll(self.seed, "kill", job.kind, job.key)
                < self.kill_fraction)

    def stalls(self, job) -> bool:
        return (self.stall_fraction > 0.0
                and self.targets(job)
                and _roll(self.seed, "stall", job.kind, job.key)
                < self.stall_fraction)

    def pre_job_fault(self, job, attempt: int,
                      in_worker: bool) -> None:
        """Fire any process-level fault for ``job`` — called by the
        worker immediately before execution.  Never fires when
        ``in_worker`` is false (the serial path must stay safe)."""
        if not in_worker:
            return
        if self.kills(job, attempt):
            os._exit(KILL_EXIT_CODE)
        if self.stalls(job):
            time.sleep(self.stall_seconds)

    @property
    def wants_machine_faults(self) -> bool:
        return bool(self.flip_cht or self.flip_hmp or self.flip_bank
                    or self.extra_load_latency)

    @property
    def wants_process_faults(self) -> bool:
        return bool(self.kill_fraction or self.stall_fraction)

    def as_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["target_kinds"] = list(self.target_kinds)
        return out


@dataclass(frozen=True)
class FleetFaultPlan:
    """A seeded, deterministic schedule of *serve-fleet* faults.

    Where :class:`FaultPlan` perturbs batch simulation jobs, this plan
    perturbs the long-lived worker processes of
    :class:`repro.serve.fleet.ServeFleet`: it travels to each worker
    over the spawn handshake (it is a frozen picklable value) and the
    worker evaluates it locally, so a chaos run kills and stalls the
    same workers at the same points on every execution of the same
    seed.

    Attributes
    ----------
    seed:
        Folded into :func:`_roll` for the fraction-based decisions.
    kill_workers:
        Worker indices whose process dies (``os._exit``) exactly once.
    kill_after_served:
        How many requests a doomed worker executes before dying.  The
        check runs *inside* batch execution, so the death lands
        mid-batch — the hardest point for the WAL-replay recovery.
    kill_fraction:
        Alternative to ``kill_workers``: each worker independently
        doomed with this probability (seeded, deterministic).
    stall_ms:
        Milliseconds a doomed-to-stall worker sleeps before each batch
        (long-tail latency chaos; the router must absorb it without
        losing requests).
    stall_workers:
        Worker indices that stall.
    """

    seed: int = 0
    kill_workers: Tuple[int, ...] = ()
    kill_after_served: int = 64
    kill_fraction: float = 0.0
    stall_ms: int = 0
    stall_workers: Tuple[int, ...] = ()

    def kill_point(self, worker_index: int) -> Optional[int]:
        """Served-request count at which ``worker_index`` dies, or
        ``None`` when this plan never kills it."""
        doomed = worker_index in self.kill_workers
        if not doomed and self.kill_fraction > 0.0:
            doomed = (_roll(self.seed, "fleet-kill", worker_index)
                      < self.kill_fraction)
        return self.kill_after_served if doomed else None

    def stall_seconds(self, worker_index: int) -> float:
        if self.stall_ms and worker_index in self.stall_workers:
            return self.stall_ms / 1000.0
        return 0.0

    def as_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["kill_workers"] = list(self.kill_workers)
        out["stall_workers"] = list(self.stall_workers)
        return out


def parse_chaos_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Build a :class:`FaultPlan` from a CLI ``--chaos`` spec.

    The spec is a comma-separated list of ``fault[=value]`` tokens::

        worker-kill[=fraction]      kill workers (default fraction 0.3)
        worker-stall[=fraction]     stall workers (default 0.25)
        stall-seconds=S             stall duration (default 1.0)
        cache-corrupt[=fraction]    garble cache entries (default 0.5)
        flip-cht[=fraction]         flip CHT predictions (default 0.05)
        flip-hmp[=fraction]         flip hit/miss predictions
        flip-bank[=fraction]        derange bank predictions
        latency=CYCLES              add CYCLES to every load
        kind=KIND                   confine process faults to job KIND
                                    (repeatable)

    e.g. ``--chaos worker-kill,cache-corrupt`` or
    ``--chaos worker-kill=0.5,flip-hmp=0.1,kind=classification``.
    """
    fields: Dict[str, object] = {"seed": seed}
    kinds: List[str] = []
    defaults = {"worker-kill": 0.3, "worker-stall": 0.25,
                "cache-corrupt": 0.5, "flip-cht": 0.05,
                "flip-hmp": 0.05, "flip-bank": 0.05}
    mapping = {"worker-kill": "kill_fraction",
               "worker-stall": "stall_fraction",
               "cache-corrupt": "corrupt_cache_fraction",
               "flip-cht": "flip_cht", "flip-hmp": "flip_hmp",
               "flip-bank": "flip_bank"}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, _, raw = token.partition("=")
        name = name.strip()
        raw = raw.strip()
        if name in mapping:
            try:
                value = float(raw) if raw else defaults[name]
            except ValueError:
                raise ValueError(
                    f"chaos fault {name!r} needs a numeric value, "
                    f"got {raw!r}") from None
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"chaos fault {name!r} fraction must be in [0, 1], "
                    f"got {value}")
            fields[mapping[name]] = value
        elif name == "stall-seconds":
            fields["stall_seconds"] = float(raw or 1.0)
        elif name == "latency":
            fields["extra_load_latency"] = int(raw or 10)
        elif name == "kind":
            if not raw:
                raise ValueError("chaos token 'kind' needs a job kind")
            kinds.append(raw)
        else:
            known = sorted(list(mapping) + ["stall-seconds", "latency",
                                            "kind"])
            raise ValueError(f"unknown chaos fault {name!r}; "
                             f"choose from {known}")
    if kinds:
        fields["target_kinds"] = tuple(kinds)
    return FaultPlan(**fields)


def corrupt_cache(cache_dir: str, fraction: float = 1.0,
                  seed: int = 0) -> List[str]:
    """Deterministically garble a fraction of cache entries.

    Selected ``.pkl`` files are overwritten with garbage bytes (the
    unpickle-time failure mode) — :class:`ResultCache` must degrade
    each to a miss and recompute, never crash.  Returns the corrupted
    paths (sorted, for reproducible assertions).
    """
    corrupted: List[str] = []
    if not os.path.isdir(cache_dir):
        return corrupted
    for dirpath, _, filenames in os.walk(cache_dir):
        for filename in sorted(filenames):
            if not filename.endswith(".pkl"):
                continue
            if _roll(seed, "corrupt", filename) >= fraction:
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "wb") as handle:
                handle.write(b"\x80\x04chaos: not a pickle")
            corrupted.append(path)
    corrupted.sort()
    return corrupted


# ---------------------------------------------------------------------------
# Predictor / hierarchy fault wrappers (machine-level chaos)
# ---------------------------------------------------------------------------


class FaultyHMP(HitMissPredictor):
    """Wraps an HMP, deterministically flipping a fraction of
    predictions.  Flips perturb *scheduling speculation only* — the
    machine's recovery must absorb them with zero invariant
    violations (that is the point of the chaos test)."""

    def __init__(self, inner: HitMissPredictor, flip_fraction: float,
                 seed: int = 0) -> None:
        self.inner = inner
        self.flip_fraction = flip_fraction
        self.seed = seed
        self.flips = 0
        self._calls = 0

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        prediction = self.inner.predict_hit(pc, line, now)
        self._calls += 1
        if _roll(self.seed, "hmp", pc, self._calls) < self.flip_fraction:
            self.flips += 1
            if self.obs is not None:
                self.obs.emit(EventKind.FAULT, now, pc=pc,
                              family="hitmiss", flipped_to=not prediction)
            return not prediction
        return prediction

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        self.inner.update(pc, hit, line, now)

    def reset(self) -> None:
        self.inner.reset()

    @property
    def storage_bits(self) -> int:
        return self.inner.storage_bits


class FaultyCHT(CollisionPredictor):
    """Wraps a CHT, deterministically flipping collision predictions."""

    def __init__(self, inner: CollisionPredictor, flip_fraction: float,
                 seed: int = 0) -> None:
        self.inner = inner
        self.flip_fraction = flip_fraction
        self.seed = seed
        self.flips = 0
        self._calls = 0

    def lookup(self, pc: int) -> CollisionPrediction:
        prediction = self.inner.lookup(pc)
        self._calls += 1
        if _roll(self.seed, "cht", pc, self._calls) < self.flip_fraction:
            self.flips += 1
            if self.obs is not None:
                self.obs.emit(EventKind.FAULT, -1, pc=pc, family="cht",
                              flipped_to=not prediction.colliding)
            return CollisionPrediction(colliding=not prediction.colliding,
                                       distance=None)
        return prediction

    def train(self, pc: int, collided: bool,
              distance: Optional[int] = None) -> None:
        self.inner.train(pc, collided, distance)

    def clear(self) -> None:
        self.inner.clear()

    @property
    def storage_bits(self) -> int:
        return self.inner.storage_bits


class FaultyBankPredictor(BankPredictor):
    """Wraps a bank predictor, deranging a fraction of predictions to
    the next bank (mod ``n_banks``)."""

    def __init__(self, inner: BankPredictor, flip_fraction: float,
                 seed: int = 0) -> None:
        self.inner = inner
        self.n_banks = inner.n_banks
        self.flip_fraction = flip_fraction
        self.seed = seed
        self.flips = 0
        self._calls = 0

    def predict(self, pc: int) -> BankPrediction:
        prediction = self.inner.predict(pc)
        self._calls += 1
        if (prediction.predicted
                and _roll(self.seed, "bank", pc, self._calls)
                < self.flip_fraction):
            self.flips += 1
            wrong = (prediction.bank + 1) % max(2, self.n_banks)
            if self.obs is not None:
                self.obs.emit(EventKind.FAULT, -1, pc=pc, family="bank",
                              flipped_to=wrong)
            return BankPrediction(bank=wrong,
                                  confidence=prediction.confidence)
        return prediction

    def update(self, pc: int, bank: int,
               address: Optional[int] = None) -> None:
        self.inner.update(pc, bank, address)

    def reset(self) -> None:
        self.inner.reset()

    @property
    def storage_bits(self) -> int:
        return self.inner.storage_bits


class LatencyFaultHierarchy:
    """Wraps a :class:`~repro.memory.hierarchy.MemoryHierarchy`, adding
    ``extra`` cycles to every load — a degraded-memory chaos mode the
    scheduler must survive (more mispredicted wakeups, same results)."""

    def __init__(self, inner, extra: int) -> None:
        self._inner = inner
        self.extra = int(extra)
        self.injected = 0

    def load(self, address: int, now: int = 0):
        outcome = self._inner.load(address, now)
        self.injected += 1
        return dataclasses.replace(outcome,
                                   latency=outcome.latency + self.extra)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    @property
    def obs(self):
        return self._inner.obs

    @obs.setter
    def obs(self, bus) -> None:
        self._inner.obs = bus


def apply_fault_plan(machine: Machine, plan: FaultPlan) -> Machine:
    """Wrap ``machine``'s predictors/hierarchy per ``plan`` (in place).

    Only the machine-level faults (flip fractions, extra latency) are
    applied here; process-level faults are the worker's business.
    Returns the machine for chaining.
    """
    if plan.flip_hmp and machine.hmp is not None:
        machine.hmp = FaultyHMP(machine.hmp, plan.flip_hmp, plan.seed)
    cht = getattr(machine.scheme, "cht", None)
    if plan.flip_cht and cht is not None:
        machine.scheme.cht = FaultyCHT(cht, plan.flip_cht, plan.seed)
    if plan.flip_bank and machine.bank_predictor is not None:
        machine.bank_predictor = FaultyBankPredictor(
            machine.bank_predictor, plan.flip_bank, plan.seed)
    if plan.extra_load_latency:
        machine.hierarchy = LatencyFaultHierarchy(
            machine.hierarchy, plan.extra_load_latency)
    return machine


# ---------------------------------------------------------------------------
# Saboteurs: deliberately broken engine components for oracle tests
# ---------------------------------------------------------------------------


class SabotagedMOB(MemoryOrderBuffer):
    """A MOB with a seeded defect, for proving the oracle catches it.

    Modes
    -----
    ``"forward-younger"``
        :meth:`forwarding_store` may serve a load from a *younger*
        completed store — the classic broken-store-queue bug the
        ``forward-from-older`` invariant exists for.
    ``"leak"``
        :meth:`remove_retired` never drops records, so the MOB grows
        without bound — caught by the ``mob-bound`` invariant.
    """

    MODES = ("forward-younger", "leak")

    def __init__(self, mode: str, obs=None) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown sabotage mode {mode!r}; "
                             f"choose from {self.MODES}")
        super().__init__(obs=obs)
        self.mode = mode

    def forwarding_store(self, load_seq, mem, now):
        record = super().forwarding_store(load_seq, mem, now)
        if record is not None or self.mode != "forward-younger":
            return record
        for candidate in self._stores:
            if (candidate.seq > load_seq and candidate.mem.overlaps(mem)
                    and candidate.complete(now)):
                return candidate
        return None

    def remove_retired(self, seq: int) -> None:
        if self.mode == "leak":
            return  # the bug: retired stores are never reclaimed
        super().remove_retired(seq)


class _NoCollideMOB:
    """MOB view that hides every collision (SkipSquashMachine's lie)."""

    def __init__(self, inner: MemoryOrderBuffer) -> None:
        self._inner = inner

    def colliding_store(self, load_seq, mem, now):
        return None, None

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class SkipSquashMachine(Machine):
    """A machine that *detects* visible collisions (and emits the
    COLLISION event) but skips the squash-and-redispatch recovery,
    letting the load complete with stale data — caught by the
    ``collision-squash`` invariant at retirement."""

    def _execute_load(self, iu, mob, violations, result, now):
        uop = iu.uop
        record, _ = mob.colliding_store(uop.seq, uop.mem, now)
        if record is not None and record.address_known(now):
            if self.obs is not None:
                self.obs.emit(EventKind.COLLISION, now, uop.seq, uop.pc,
                              store_seq=record.seq,
                              store_pc=record.sta.uop.pc, visible=True)
            # The bug: pretend there was no collision and execute the
            # load straight through (no squash, no penalty, stale data).
            super()._execute_load(iu, _NoCollideMOB(mob), violations,
                                  result, now)
            return
        super()._execute_load(iu, mob, violations, result, now)


class LyingOrdering(TraditionalOrdering):
    """An ordering scheme that advertises the Traditional guarantee
    (``never_violates``) while actually dispatching loads past unknown
    STAs — caught by the ``scheme-violation`` invariant the moment a
    hidden collision traps."""

    name = "lying-traditional"
    never_violates = True

    def may_dispatch(self, load, mob, now) -> bool:
        return True
