"""Vectorized address-stream materialization + synthetic event grids.

Two jobs live here:

* the batch kernels behind ``AddressStream.materialize`` for the
  rng-free streams (stride walks and pointer chases), which synthesize
  a whole block of addresses in closed form, bit-identical to ``n``
  scalar ``next()`` calls;

* seeded (pc, outcome) / (pc, address) workload-grid synthesis used by
  the differential-equivalence harness and the predictor-only sweeps in
  ``benchmarks/bench_throughput.py``.  The grids are deliberately
  cheap, deterministic, and adversarial (aliasing PCs, bursty
  outcomes) — they exist to exercise predictor state machines, not to
  model a program.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np


def materialize_stride(stream, n: int) -> List[int]:
    """``n`` next addresses of a :class:`~repro.trace.streams.StrideStream`."""
    offsets = (stream._offset
               + stream.stride * np.arange(n, dtype=np.int64)) % stream.extent
    addresses = (stream.base + offsets).tolist()
    stream._offset = (stream._offset + stream.stride * n) % stream.extent
    return addresses


def materialize_pointer_chase(stream, n: int) -> List[int]:
    """``n`` next addresses of a ``PointerChaseStream``.

    The chase is one fixed cycle over all nodes, so a block of accesses
    is a contiguous (wrapping) slice of the cycle order starting at the
    current node.
    """
    cycle = getattr(stream, "_fp_cycle", None)
    if cycle is None:
        order = [0] * stream.n_nodes
        node = stream._current
        for pos in range(stream.n_nodes):
            order[pos] = node
            node = stream._successor[node]
        cycle = np.asarray(order, dtype=np.int64)
        position = {int(node): pos for pos, node in enumerate(order)}
        stream._fp_cycle = cycle
        stream._fp_position = position
    start = stream._fp_position[stream._current]
    picks = cycle[(start + np.arange(n, dtype=np.int64)) % stream.n_nodes]
    addresses = (stream.base + picks * stream.node_bytes).tolist()
    stream._current = int(cycle[(start + n) % stream.n_nodes])
    return addresses


def synthesize_outcome_grid(seed: int, n_events: int, n_pcs: int = 97,
                            flip: float = 0.35) -> Tuple[List[int], List[bool]]:
    """A seeded (pc, outcome) stream for predictor replay.

    PCs cycle with jumps so table indices alias; outcomes are a
    per-PC persistent bit with seeded flips, which gives every counter
    both reinforcement runs and direction changes.
    """
    rng = random.Random(seed)
    pcs: List[int] = []
    outcomes: List[bool] = []
    state = [rng.random() < 0.5 for _ in range(n_pcs)]
    site = 0
    for _ in range(n_events):
        if rng.random() < 0.15:
            site = rng.randrange(n_pcs)
        else:
            site = (site + 1) % n_pcs
        if rng.random() < flip:
            state[site] = not state[site]
        pcs.append(0x4000 + site * 4 + (site % 7) * 0x1000)
        outcomes.append(state[site])
    return pcs, outcomes


def synthesize_collision_grid(seed: int, n_events: int, n_pcs: int = 61,
                              ) -> Tuple[List[int], List[bool], List[bool], List[int]]:
    """A seeded (pc, conflicting, collided, distance) ground-truth grid
    shaped like the Figure 9 recorder's output."""
    rng = random.Random(seed)
    pcs: List[int] = []
    conflicting: List[bool] = []
    collided: List[bool] = []
    distances: List[int] = []
    collide_rate = [rng.random() * 0.6 for _ in range(n_pcs)]
    for _ in range(n_events):
        site = rng.randrange(n_pcs)
        pcs.append(0x8000 + site * 4 + (site % 5) * 0x2000)
        conflict = rng.random() < 0.7
        collide = conflict and rng.random() < collide_rate[site]
        conflicting.append(conflict)
        collided.append(collide)
        distances.append(rng.randrange(1, 33) if collide else 0)
    return pcs, conflicting, collided, distances


def synthesize_bank_grid(seed: int, n_events: int, n_pcs: int = 53,
                         line_bytes: int = 64,
                         ) -> List[Tuple[int, int]]:
    """A seeded (pc, address) load stream with per-PC bank habits."""
    rng = random.Random(seed)
    stream: List[Tuple[int, int]] = []
    bias = [rng.random() for _ in range(n_pcs)]
    for _ in range(n_events):
        site = rng.randrange(n_pcs)
        bank = 1 if rng.random() < bias[site] else 0
        line = rng.randrange(1 << 12)
        address = (line * 2 + bank) * line_bytes + rng.randrange(line_bytes)
        stream.append((0xC000 + site * 4 + (site % 3) * 0x4000, address))
    return stream
