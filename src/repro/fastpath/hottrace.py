"""Hot-trace memoized replay: speculate / guard / commit / abort.

Production traffic is repetitive: the serve tier re-runs the same
per-session step windows constantly (the Zipf load model makes a few
sessions absorb most of the traffic, and converged predictors answer a
repeated window from the same state).  This module applies the paper's
own speculate-verify-recover discipline to the simulator itself — the
trace-based speculation structure of SNIPPETS.md Snippet 3, transplanted
from guarded straight-line code to guarded predictor-state transitions.

The unit of speculation is one *step window*: a same-session run of
``step`` events (``(pcs, outcomes, distances)`` lanes) flowing through
:func:`repro.serve.batch.execute_step_arrays` — either a coalesced
micro-batch run or a ``replay`` trace-window op.  Predictor stepping is
a deterministic function of (state, window), so the transition is
memoizable::

    key   = (digest(pre_state), digest(window))
    value = (results, pickle(post_state), digest(post_state))

A lookup hit *speculates* that this session will repeat its hot trace.
The guards that must pass before the precomputed answer is committed:

* **state guard** — the session predictor's state digest equals the
  captured pre-state digest (drifted state aborts);
* **lane guard** — the window's pcs/outcomes/distances lanes are
  *exactly* the captured ones (an addr or taken-bit mismatch aborts;
  this also makes a window-digest collision abort instead of answering
  wrongly);
* **spec guard** — the session's spec kind is the captured one
  (a session rebuilt under a different spec aborts);
* **commit guard** — the captured post-state must rehydrate
  (``pickle.loads``); a mid-commit failure (the serving analogue of a
  mid-trace squash) aborts with the session state untouched.

Commit is atomic by construction: the new predictor object is fully
built *before* the single reference swap, so any guard or rehydration
failure leaves the session's predictor exactly as it was and execution
falls through to the scalar/vectorized path — zero predictor-state
corruption, the property the negative-guard battery in
``tests/serve/test_hottrace_guards.py`` pins byte-for-byte against a
never-speculated shadow oracle.

Steady state is cheap through *digest chaining*: a capture or commit
leaves the session's current state digest known, so the next window's
pre-state digest costs nothing (no pickling) until a non-window
mutation (a lone ``update`` op, a restore) invalidates it.  At a
converged fixed point ``pre == post`` and a hit skips rehydration
entirely — the window answers from one dict probe.

Under an armed invariant oracle (``ExecutionPolicy.invariants_active``)
every hit is shadow-replayed scalar on a deep copy and both results and
post-state bytes compared — :class:`HotTraceViolation` on divergence is
the zero-tolerance abort-correctness metric gated in CI.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
import struct
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.policy import ExecutionPolicy

try:  # lane packing goes through numpy when available (10x)
    import numpy as _np
except Exception:  # pragma: no cover - numpy-less install
    _np = None

#: Digest width for state and window fingerprints.  16 bytes keeps the
#: accidental-collision probability negligible at serve-tier scales
#: while the lane guard makes even a collision abort, not corrupt.
_DIGEST_SIZE = 16


class HotTraceViolation(AssertionError):
    """A committed hot-trace hit diverged from the scalar replay."""


def _pack_lane(values: Sequence[int], n: int) -> bytes:
    if _np is not None:
        return _np.asarray(values, dtype="<i8").tobytes()
    return struct.pack(f"<{n}q", *(int(v) for v in values))


def window_digest(pcs: Sequence[int], outcomes: Sequence[int],
                  distances: Sequence[int]) -> bytes:
    """Order-sensitive fingerprint of one step window's input lanes."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    n = len(pcs)
    h.update(struct.pack("<I", n))
    h.update(_pack_lane(pcs, n))
    h.update(_pack_lane(outcomes, n))
    h.update(_pack_lane(distances, n))
    return h.digest()


def _canonical_state(raw: bytes) -> bytes:
    """Pickle bytes normalized through one ``loads``/``dumps`` round
    trip.

    Raw pickles are not byte-canonical across lineages: a freshly
    constructed predictor shares interned strings that a rehydrated one
    does not, so two logically identical states can pickle to different
    bytes (different memo back-references).  One round trip erases the
    interning-induced sharing, after which the encoding is a fixed
    point — the comparison the shadow oracle needs."""
    return pickle.dumps(pickle.loads(raw),
                        protocol=pickle.HIGHEST_PROTOCOL)


def state_fingerprint(predictor: object) -> Optional[Tuple[bytes, bytes]]:
    """``(state_bytes, digest)`` of a predictor, None if unpicklable."""
    try:
        raw = pickle.dumps(predictor, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # pragma: no cover - exotic predictor state
        return None
    return raw, hashlib.blake2b(raw, digest_size=_DIGEST_SIZE).digest()


@dataclass
class CapturedTrace:
    """One memoized (pre-state, window) -> (results, post-state) edge."""

    spec_kind: str
    pre_digest: bytes
    lanes: Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]
    results: Tuple[int, ...]
    post_state: bytes
    post_digest: bytes
    hits: int = 0


@dataclass
class HotTraceCounters:
    """Aggregate effectiveness/abort accounting, exported verbatim
    through shard stats -> service/fleet stats -> metrics -> top."""

    windows: int = 0        #: step windows inspected (len >= min)
    hot_windows: int = 0    #: windows past the heat threshold
    lookups: int = 0        #: memo probes attempted
    hits: int = 0           #: guarded replays committed
    steps_saved: int = 0    #: per-step executions skipped by hits
    captures: int = 0       #: traces recorded
    aborts: int = 0         #: guard failures (any class)
    abort_state: int = 0    #: ... pre-state digest drift
    abort_lanes: int = 0    #: ... pc/outcome/distance lane mismatch
    abort_spec: int = 0     #: ... spec kind changed under the session
    abort_commit: int = 0   #: ... post-state failed to rehydrate
    evictions: int = 0      #: captured traces dropped by the LRU cap
    abort_mismatch: int = 0 #: oracle divergences (must stay zero)

    def as_dict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in (
            "windows", "hot_windows", "lookups", "hits", "steps_saved",
            "captures", "aborts", "abort_state", "abort_lanes",
            "abort_spec", "abort_commit", "evictions", "abort_mismatch")}

    def merge(self, other: Dict[str, int]) -> None:
        for k, v in other.items():
            if hasattr(self, k):
                setattr(self, k, getattr(self, k) + int(v))


@dataclass
class SessionTraceState:
    """Per-session recording state.

    Lives on the :class:`~repro.serve.session.Session` object (a slot
    excluded from ``state_dict``), so close / restore / migration
    naturally reset it — captured traces never travel between
    processes, they are re-learned where the traffic lands.
    """

    #: Known digest of the predictor's *current* state, or None when a
    #: mutation happened outside the windowed path (digest chaining).
    state_digest: Optional[bytes] = None
    #: Window-digest -> occurrence count (stops counting at threshold).
    heat: Dict[bytes, int] = field(default_factory=dict)
    #: (pre_digest, window_digest) -> captured trace, insertion-ordered
    #: for eviction.
    traces: "OrderedDict[Tuple[bytes, bytes], CapturedTrace]" = field(
        default_factory=OrderedDict)
    #: One-shot window-digest memo between a try_replay miss and its
    #: paired record() for the *same* lane objects (identity token) —
    #: halves digest work on the miss path.  The lane tuples stay alive
    #: in the caller across the pair, so ids cannot be recycled; the
    #: memo is cleared on every other exit (hit, invalidate) so a
    #: *later* call with recycled list ids can never reuse it.
    wd_token: Optional[Tuple[int, int, int]] = None
    wd_cache: Optional[bytes] = None

    def invalidate(self) -> None:
        """Forget the chained state digest (out-of-band mutation) and
        any in-flight window-digest memo."""
        self.state_digest = None
        self.wd_token = None
        self.wd_cache = None


class HotTraceEngine:
    """One shard's recording/replay engine (single-writer, no locks).

    The engine owns thresholds (from the :class:`ExecutionPolicy`) and
    the counters; per-session state hangs off the sessions themselves.
    """

    def __init__(self, policy: ExecutionPolicy) -> None:
        self.policy = policy
        self.counters = HotTraceCounters()
        #: Guard class of the most recent abort ("state" / "lanes" /
        #: "spec" / "commit").
        self.last_abort: Optional[str] = None
        #: Undrained ``(session_id, guard)`` abort records, one per
        #: abort, in order — the shard drains these into obs events so
        #: every abort is attributed to the session that aborted.
        #: Bounded in case no one drains (engine used standalone).
        self.abort_events: List[Tuple[str, str]] = []
        self.max_abort_events = 1024
        #: Bound heat-table size per session: window digests tracked
        #: before old cold entries are dropped (heat, unlike captures,
        #: is approximate bookkeeping — dropping a cold entry only
        #: delays capture).
        self.max_heat_entries = max(64, 4 * policy.max_traces)

    # -- session state ---------------------------------------------------

    @staticmethod
    def state_for(session) -> SessionTraceState:
        st = getattr(session, "hottrace", None)
        if st is None:
            st = SessionTraceState()
            session.hottrace = st
        return st

    @staticmethod
    def note_mutation(session) -> None:
        """Out-of-band predictor mutation (lone update op, restore):
        break the digest chain so stale captures can never match."""
        st = getattr(session, "hottrace", None)
        if st is not None:
            st.invalidate()

    # -- the speculate/guard/commit/abort cycle --------------------------

    def try_replay(self, session, pcs: Sequence[int],
                   outcomes: Sequence[int], distances: Sequence[int],
                   ) -> Optional[List[int]]:
        """Attempt a guarded memoized replay of one step window.

        Returns the committed results on a hit, or ``None`` — meaning
        the caller must execute the window through the normal path and
        (if the window is hot) offer it back via :func:`record`.
        ``None`` also covers every abort: by the time this returns, the
        session's predictor is untouched unless a commit succeeded.
        """
        n = len(pcs)
        if n < self.policy.min_trace_len:
            return None
        c = self.counters
        c.windows += 1
        st = self.state_for(session)

        wd = window_digest(pcs, outcomes, distances)
        st.wd_token = (id(pcs), id(outcomes), id(distances))
        st.wd_cache = wd
        heat = st.heat.get(wd, 0)
        if heat < self.policy.hot_threshold:
            # Cold window: one dict increment, nothing else.
            if len(st.heat) >= self.max_heat_entries:
                self._shed_heat(st)
            st.heat[wd] = heat + 1
            return None
        c.hot_windows += 1

        pre = st.state_digest
        if pre is None:
            fp = state_fingerprint(session.predictor)
            if fp is None:
                return None  # unpicklable state: never speculate
            pre = fp[1]
            st.state_digest = pre

        trace = st.traces.get((pre, wd))
        if trace is None:
            return None  # hot but uncaptured from this state: record
        c.lookups += 1

        # -- guards (any failure: abort, drop the stale capture) --------
        if trace.spec_kind != session.spec.kind:
            self._abort(session, st, (pre, wd), "spec")
            return None
        if trace.pre_digest != pre:  # pragma: no cover - keyed by pre
            self._abort(session, st, (pre, wd), "state")
            return None
        lanes = (tuple(int(p) for p in pcs),
                 tuple(int(o) for o in outcomes),
                 tuple(int(d) for d in distances))
        if trace.lanes != lanes:
            self._abort(session, st, (pre, wd), "lanes")
            return None

        # -- commit (atomic: build fully, then one reference swap) ------
        if trace.post_digest == pre:
            new_predictor = session.predictor  # converged fixed point
        else:
            try:
                new_predictor = pickle.loads(trace.post_state)
            except Exception:
                # Mid-commit squash: session state untouched.
                self._abort(session, st, (pre, wd), "commit")
                return None

        if self.policy.invariants_active():
            self._shadow_check(session, trace, pcs, outcomes, distances)

        session.predictor = new_predictor
        st.state_digest = trace.post_digest
        # A hit never reaches record(): retire the window-digest memo
        # here so a later record() with recycled lane-list ids cannot
        # reuse it.
        st.wd_token = st.wd_cache = None
        trace.hits += 1
        c.hits += 1
        c.steps_saved += n
        st.traces.move_to_end((pre, wd))
        return list(trace.results)

    def record(self, session, pcs: Sequence[int], outcomes: Sequence[int],
               distances: Sequence[int], results: Sequence[int],
               pre_digest: Optional[bytes]) -> None:
        """Capture a just-executed hot window as a replayable trace.

        ``pre_digest`` is the chained digest *before* the window ran
        (None when it was unknown — then nothing is captured, but the
        post-state digest still re-anchors the chain)."""
        st = self.state_for(session)
        n = len(pcs)
        if n < self.policy.min_trace_len:
            # Too short to memoize, but it still mutated the predictor:
            # break the digest chain.
            st.invalidate()
            return
        if (st.wd_token == (id(pcs), id(outcomes), id(distances))
                and st.wd_cache is not None):
            wd = st.wd_cache
        else:  # pragma: no cover - record without a paired try_replay
            wd = window_digest(pcs, outcomes, distances)
        st.wd_token = st.wd_cache = None
        if st.heat.get(wd, 0) < self.policy.hot_threshold:
            # Not hot (or heat was shed): just account the chain break.
            st.invalidate()
            return
        fp = state_fingerprint(session.predictor)
        if fp is None or pre_digest is None:
            st.invalidate()
            return
        post_state, post_digest = fp
        st.traces[(pre_digest, wd)] = CapturedTrace(
            spec_kind=session.spec.kind,
            pre_digest=pre_digest,
            lanes=(tuple(int(p) for p in pcs),
                   tuple(int(o) for o in outcomes),
                   tuple(int(d) for d in distances)),
            results=tuple(int(r) for r in results),
            post_state=post_state,
            post_digest=post_digest)
        st.state_digest = post_digest
        self.counters.captures += 1
        while len(st.traces) > self.policy.max_traces:
            st.traces.popitem(last=False)
            self.counters.evictions += 1

    # -- internals -------------------------------------------------------

    def drain_abort_events(self) -> List[Tuple[str, str]]:
        """Return (and clear) the undrained ``(session_id, guard)``
        abort records accumulated since the last drain."""
        events, self.abort_events = self.abort_events, []
        return events

    def _abort(self, session, st: SessionTraceState,
               key: Tuple[bytes, bytes], kind: str) -> None:
        c = self.counters
        c.aborts += 1
        setattr(c, f"abort_{kind}", getattr(c, f"abort_{kind}") + 1)
        self.last_abort = kind
        if len(self.abort_events) < self.max_abort_events:
            self.abort_events.append((session.session_id, kind))
        st.traces.pop(key, None)  # stale capture: re-learn

    def _shed_heat(self, st: SessionTraceState) -> None:
        """Drop the coldest half of the heat table (bound memory)."""
        keep = sorted(st.heat.items(), key=lambda kv: kv[1],
                      reverse=True)[: self.max_heat_entries // 2]
        st.heat = dict(keep)

    def _shadow_check(self, session, trace: CapturedTrace,
                      pcs: Sequence[int], outcomes: Sequence[int],
                      distances: Sequence[int]) -> None:
        """Oracle: scalar-replay the window on a deep copy of the
        *pre-commit* state and demand byte-identical results/state."""
        from repro.serve.batch import scalar_steps
        shadow = copy.deepcopy(session.predictor)
        expect = scalar_steps(session.family, shadow, pcs, outcomes,
                              distances)
        if list(trace.results) != expect:
            self.counters.abort_mismatch += 1
            raise HotTraceViolation(
                f"session {session.session_id!r} ({session.spec.kind}): "
                f"hot-trace hit would commit results diverging from the "
                f"scalar replay ({len(pcs)} steps)")
        fp = state_fingerprint(shadow)
        if (fp is not None and fp[0] != trace.post_state
                and _canonical_state(fp[0])
                != _canonical_state(trace.post_state)):
            # Raw bytes may differ across pickle lineages for the same
            # logical state (see _canonical_state); only a divergence
            # that survives normalization is a violation.
            self.counters.abort_mismatch += 1
            raise HotTraceViolation(
                f"session {session.session_id!r} ({session.spec.kind}): "
                f"hot-trace hit would commit predictor state diverging "
                f"from the scalar replay ({len(pcs)} steps)")
