"""Batch replay kernels for the hit-miss predictors.

``LocalHMP`` and ``HybridHMP`` are thin adapters over binary predictors
of the *miss* event, so their batch replay is a direct delegation to
:func:`repro.fastpath.predictors.replay` with inverted outcomes.

Differential tests: ``tests/fastpath/test_hmp_diff.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.fastpath import predictors as fp_predictors
from repro.hitmiss.binary import BinaryHMP
from repro.hitmiss.hybrid import HybridHMP
from repro.hitmiss.local import LocalHMP


def supports(hmp) -> bool:
    """True when ``replay_hits`` has an exact batch kernel for ``hmp``."""
    kind = type(hmp)
    if kind in (LocalHMP, BinaryHMP):
        return fp_predictors.supports(hmp._miss_predictor)
    if kind is HybridHMP:
        return fp_predictors.supports(hmp._chooser)
    return False


def event_arrays(events) -> Tuple[np.ndarray, np.ndarray]:
    """Decompose ``HitMissEvent`` records into (pcs, hits) arrays."""
    n = len(events)
    pcs = np.fromiter((e.pc for e in events), dtype=np.int64, count=n)
    hits = np.fromiter((e.hit for e in events), dtype=bool, count=n)
    return pcs, hits


def replay_hits(hmp, pcs: np.ndarray, hits: np.ndarray) -> np.ndarray:
    """predict_hit→update the whole stream; returns per-event
    ``predicted_hit``, leaving the predictor state exactly as the
    scalar loop would."""
    pcs = np.asarray(pcs, dtype=np.int64)
    misses = ~np.asarray(hits, dtype=bool)
    kind = type(hmp)
    if kind in (LocalHMP, BinaryHMP):
        predicted_miss, _ = fp_predictors.replay(hmp._miss_predictor,
                                                 pcs, misses)
    elif kind is HybridHMP:
        predicted_miss, _ = fp_predictors.replay(hmp._chooser, pcs, misses)
    else:
        raise TypeError(f"no batch kernel for {kind.__name__}")
    return ~predicted_miss
