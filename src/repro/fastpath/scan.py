"""Exact parallel scans for table-cell state evolution.

The replay harnesses train tables against a *pre-recorded* outcome
stream, so the full sequence of updates each table cell will see is
known before any prediction is made.  That turns per-cell state
evolution into a scan problem:

* **Saturating counters.**  One training step is the clip-affine map
  ``f(v) = min(h, max(l, v + a))`` with ``a = ±1``, ``l = 0`` and
  ``h = counter max``.  The class of clip-affine maps is closed under
  composition::

      (a1, l1, h1) then (a2, l2, h2)
          = (a1 + a2, clip(l1 + a2, l2, h2), clip(h1 + a2, l2, h2))

  and the composition is associative, so a Hillis–Steele segmented
  scan over (cell-sorted) events yields, in O(log n) vectorized
  passes, the exact counter value *before* every event — bit-identical
  to running the scalar ``SaturatingCounter.train`` loop.

* **History registers.**  ``shift_history`` makes the register before
  event ``t`` a bit-window of the last ``length`` outcomes of the same
  register (padded with the initial register's bits), which a bounded
  loop of shifted ORs reconstructs directly.

Both scans are pinned against the scalar reference by
``tests/fastpath/test_scan.py`` over randomized grids.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_U64 = np.uint64


def _compose_clip_affine(a1, l1, h1, a2, l2, h2):
    """Compose two clip-affine maps (apply 1 first, then 2)."""
    a = a1 + a2
    low = np.clip(l1 + a2, l2, h2)
    high = np.clip(h1 + a2, l2, h2)
    return a, low, high


def clamped_walk(cell_ids: np.ndarray, steps: np.ndarray,
                 initial: np.ndarray, max_value: int,
                 order: np.ndarray = None,
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replay ``v = clip(v + step, 0, max_value)`` per cell, in parallel.

    Parameters
    ----------
    cell_ids:
        Per-event table index, in chronological order.
    steps:
        Per-event increment (+1 train-up / -1 train-down).
    initial:
        Per-cell starting values (length = table size).
    max_value:
        Saturation ceiling (the counter's all-ones value).
    order:
        Optional precomputed ``np.argsort(cell_ids, kind="stable")``,
        for callers that already sorted the events by cell.

    Returns
    -------
    (before, after, final):
        ``before[t]``/``after[t]`` are the cell's value before/after
        event ``t`` (chronological order); ``final`` is the whole
        table's values after all events (cells never touched keep
        their initial value).
    """
    cell_ids = np.asarray(cell_ids, dtype=np.int64)
    steps = np.asarray(steps, dtype=np.int64)
    initial = np.asarray(initial, dtype=np.int64)
    n = len(cell_ids)
    final = initial.copy()
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), final

    if order is None:
        order = np.argsort(cell_ids, kind="stable")
    seg = cell_ids[order]

    # Inclusive segmented scan of clip-affine triples: each event starts
    # as the single-step map (a=step, l=0, h=max_value) and accumulates
    # the composition of every earlier same-cell step.  Compositions
    # never cross a segment boundary, so the doubling loop only needs to
    # reach the longest segment, not n.
    start_positions = np.flatnonzero(
        np.concatenate(([True], seg[1:] != seg[:-1])))
    longest = int(np.max(np.diff(np.append(start_positions, n))))
    a = steps[order].copy()
    low = np.zeros(n, dtype=np.int64)
    high = np.full(n, max_value, dtype=np.int64)
    offset = 1
    while offset < longest:
        same = np.zeros(n, dtype=bool)
        same[offset:] = seg[offset:] == seg[:-offset]
        ca, cl, ch = _compose_clip_affine(
            a[:-offset], low[:-offset], high[:-offset],
            a[offset:], low[offset:], high[offset:])
        a[offset:] = np.where(same[offset:], ca, a[offset:])
        low[offset:] = np.where(same[offset:], cl, low[offset:])
        high[offset:] = np.where(same[offset:], ch, high[offset:])
        offset *= 2

    after_sorted = np.clip(initial[seg] + a, low, high)
    before_sorted = np.empty(n, dtype=np.int64)
    before_sorted[0] = initial[seg[0]]
    same_prev = seg[1:] == seg[:-1]
    before_sorted[1:] = np.where(same_prev, after_sorted[:-1], initial[seg[1:]])

    is_last = np.ones(n, dtype=bool)
    is_last[:-1] = ~same_prev
    final[seg[is_last]] = after_sorted[is_last]

    before = np.empty(n, dtype=np.int64)
    after = np.empty(n, dtype=np.int64)
    before[order] = before_sorted
    after[order] = after_sorted
    return before, after, final


def history_walk(group_ids: np.ndarray, outcomes: np.ndarray,
                 initial: np.ndarray, length: int,
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Replay ``h = ((h << 1) | outcome) & mask(length)`` per group.

    Parameters
    ----------
    group_ids:
        Per-event history-register index, chronological order.
    outcomes:
        Per-event shifted-in bit (bool array).
    initial:
        Per-register starting values (length = register count).
    length:
        History length in bits.

    Returns
    -------
    (before, final):
        ``before[t]`` is the register value seen by event ``t``;
        ``final`` the registers after all events.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    outcomes = np.asarray(outcomes, dtype=bool)
    initial = np.asarray(initial, dtype=np.int64)
    n = len(group_ids)
    final = initial.copy()
    if n == 0:
        return np.zeros(0, dtype=np.int64), final
    mask = _U64((1 << length) - 1) if length > 0 else _U64(0)

    order = np.argsort(group_ids, kind="stable")
    seg = group_ids[order]
    bits = outcomes[order].astype(_U64)

    # Position of each event within its group (0-based).
    ones = np.ones(n, dtype=np.int64)
    pos = np.cumsum(ones) - 1
    starts = np.zeros(n, dtype=bool)
    starts[0] = True
    starts[1:] = seg[1:] != seg[:-1]
    group_start_pos = np.where(starts, pos, 0)
    np.maximum.accumulate(group_start_pos, out=group_start_pos)
    pos = pos - group_start_pos

    # before[t] = ((init << pos) | window of the pos previous bits) & mask
    before = np.zeros(n, dtype=_U64)
    for k in range(length):
        shifted = np.zeros(n, dtype=_U64)
        if n > k + 1:
            shifted[k + 1:] = bits[:n - k - 1] << _U64(k)
        before |= np.where(pos >= k + 1, shifted, _U64(0))
    init_part = np.asarray(initial, dtype=_U64)[seg]
    shift = np.minimum(pos, length).astype(_U64)
    before |= np.where(pos < length, (init_part << shift), _U64(0))
    before &= mask

    after_last = ((before << _U64(1)) | bits) & mask
    is_last = np.ones(n, dtype=bool)
    is_last[:-1] = seg[1:] != seg[:-1]
    final[seg[is_last]] = after_last[is_last].astype(np.int64)

    out = np.empty(n, dtype=np.int64)
    out[order] = before.astype(np.int64)
    return out, final


def global_history_walk(outcomes: np.ndarray, initial: int,
                        length: int) -> Tuple[np.ndarray, int]:
    """:func:`history_walk` for a single shared register (gshare/gskew)."""
    outcomes = np.asarray(outcomes, dtype=bool)
    before, final = history_walk(
        np.zeros(len(outcomes), dtype=np.int64), outcomes,
        np.array([initial], dtype=np.int64), length)
    return before, int(final[0])
