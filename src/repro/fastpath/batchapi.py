"""One batch entry point across predictor families — the serving kernel.

The per-family replay kernels (:mod:`repro.fastpath.predictors`,
``.cht``, ``.hitmiss``, ``.bank``) each expect their own array dialect.
:mod:`repro.serve` flushes micro-batches of heterogeneous per-PC step
requests, grouped by session, and needs a single uniform call per
group; this module provides it.

The uniform encoding (shared with the wire protocol of
:mod:`repro.serve.protocol`) is three ``int64`` lanes:

``pcs``
    Load program counters.
``outcomes``
    Family-coded resolved outcome: 0/1 for binary predictors (the
    event), 0/1 for CHTs (collided), 0/1 for hit-miss (**hit**), the
    bank index for bank predictors.
``extras``
    CHTs: collision distance, ``-1`` = none.  Other families: ignored.

``replay_steps`` performs predict→update over the whole group and
returns an ``int64`` result lane: 0/1 predictions (hit-miss: predicted
**hit**), bank index or ``-1`` for an abstention.  The contract is the
package-wide one — bit-identical to the scalar predict→update loop
(:func:`repro.serve.batch.scalar_steps` is the reference; the serve
differential suite and the ``REPRO_CHECK_INVARIANTS=1`` oracle both
pin the equivalence).

This module imports numpy and must only be imported behind a
:func:`repro.fastpath.enabled` / :data:`repro.fastpath.HAS_NUMPY`
check, like the other kernel submodules.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bank.history import HistoryBankPredictor
from repro.cht.tagless import TaglessCHT
from repro.fastpath import bank as fp_bank
from repro.fastpath import cht as fp_cht
from repro.fastpath import hitmiss as fp_hitmiss
from repro.fastpath import predictors as fp_predictors
from repro.hitmiss.base import HitMissPredictor


def uop_lanes(trace):
    """The struct-of-arrays uop lanes for a trace — the engine-side
    uniform encoding.

    Thin caching façade over
    :func:`repro.fastpath.uoparrays.trace_arrays`: serve handlers and
    benches that already route batches through this module get the
    same :class:`~repro.fastpath.uoparrays.UopArrays` the vectorized
    machine kernel (:mod:`repro.engine.vector`) replays, decomposed at
    most once per trace.  Raises
    :class:`~repro.fastpath.uoparrays.UnsupportedTrace` for traces the
    array model cannot express (the caller falls back to scalar
    replay, exactly like ``Machine.run``).
    """
    from repro.fastpath.uoparrays import trace_arrays
    return trace_arrays(trace)


def supports_steps(family: str, predictor: object) -> bool:
    """True when ``replay_steps`` has an exact kernel for this object.

    Mirrors the per-family ``supports`` predicates; anything rejected
    here must be replayed through the scalar reference loop.
    """
    if family == "binary":
        return fp_predictors.supports(predictor)
    if family == "cht":
        return type(predictor) is TaglessCHT
    if family == "hitmiss":
        return (isinstance(predictor, HitMissPredictor)
                and fp_hitmiss.supports(predictor))
    if family == "bank":
        return (type(predictor) is HistoryBankPredictor
                and fp_bank.supports(predictor))
    return False


def replay_steps(family: str, predictor: object, pcs: np.ndarray,
                 outcomes: np.ndarray,
                 extras: Optional[np.ndarray] = None) -> np.ndarray:
    """Batched predict→update of one session's step run.

    Arrays use the uniform int64 encoding described in the module
    docstring.  Predictor state afterwards is exactly what the scalar
    loop would have left behind.
    """
    pcs = np.asarray(pcs, dtype=np.int64)
    outcomes = np.asarray(outcomes, dtype=np.int64)
    if family == "binary":
        predicted, _ = fp_predictors.replay(predictor, pcs,
                                            outcomes.astype(bool))
        return predicted.astype(np.int64)
    if family == "cht":
        if type(predictor) is not TaglessCHT:
            raise TypeError(f"no batch kernel for "
                            f"{type(predictor).__name__}")
        distances = (np.full(len(pcs), -1, dtype=np.int64)
                     if extras is None else np.asarray(extras,
                                                      dtype=np.int64))
        # The scalar loop passes distance=None for non-collided events.
        distances = np.where(outcomes.astype(bool), distances, -1)
        colliding = fp_cht.tagless_replay(predictor, pcs,
                                          outcomes.astype(bool), distances)
        return colliding.astype(np.int64)
    if family == "hitmiss":
        predicted_hit = fp_hitmiss.replay_hits(predictor, pcs,
                                               outcomes.astype(bool))
        return predicted_hit.astype(np.int64)
    if family == "bank":
        return fp_bank.replay_banks(predictor, pcs, outcomes)
    raise ValueError(f"unknown predictor family {family!r}")
