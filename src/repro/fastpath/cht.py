"""Batch replay kernel for the tagless CHT.

The Figure 9 harness replays a pre-recorded (pc, collided, distance)
ground-truth stream through each CHT configuration.  For the tagless
organisation that is a pure counter-table walk — vectorized exactly by
:func:`repro.fastpath.scan.clamped_walk` — plus the distance sidecar,
whose min-update/reset rule depends on per-cell order and gets a scalar
fixup loop over precomputed indices.

Differential tests: ``tests/fastpath/test_cht_diff.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cht.tagless import TaglessCHT
from repro.fastpath.indices import pc_index_arr
from repro.fastpath.scan import clamped_walk


def event_arrays(events) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Decompose ``LoadEvent`` records into kernel-ready arrays.

    The returned ``distances`` uses -1 where the scalar harness would
    pass ``distance=None`` (i.e. for non-colliding events).
    """
    n = len(events)
    pcs = np.fromiter((e.pc for e in events), dtype=np.int64, count=n)
    conflicting = np.fromiter((e.conflicting for e in events), dtype=bool,
                              count=n)
    collided = np.fromiter((e.collided for e in events), dtype=bool, count=n)
    distances = np.fromiter(
        (e.distance if e.collided else -1 for e in events),
        dtype=np.int64, count=n)
    return pcs, conflicting, collided, distances


def tagless_replay(cht: TaglessCHT, pcs: np.ndarray, collided: np.ndarray,
                   distances: Optional[np.ndarray] = None,
                   batch_size: int = 16384) -> np.ndarray:
    """Lookup→train the whole stream; returns per-event ``colliding``.

    ``distances[t] == -1`` encodes "no distance supplied" (the scalar
    harness passes ``None`` for non-colliding events).  Counter values
    and the distance sidecar end bit-identical to the scalar loop.
    """
    pcs = np.asarray(pcs, dtype=np.int64)
    collided = np.asarray(collided, dtype=bool)
    if distances is None:
        distances = np.full(len(pcs), -1, dtype=np.int64)
    distances = np.asarray(distances, dtype=np.int64)
    n = len(pcs)
    predicted = np.empty(n, dtype=bool)
    for lo in range(0, n, batch_size):
        hi = min(lo + batch_size, n)
        predicted[lo:hi] = _tagless_replay_once(
            cht, pcs[lo:hi], collided[lo:hi], distances[lo:hi])
    return predicted


def _tagless_replay_once(cht: TaglessCHT, pcs, collided,
                         distances) -> np.ndarray:
    indices = pc_index_arr(pcs, cht.n_entries)
    max_value = cht._counters[0]._max
    threshold = cht._counters[0]._threshold
    initial = np.fromiter((c.value for c in cht._counters),
                          dtype=np.int64, count=cht.n_entries)
    steps = np.where(collided, 1, -1)
    order = np.argsort(indices, kind="stable")
    before, after, final = clamped_walk(indices, steps, initial, max_value,
                                        order=order)
    for cell, value in zip(cht._counters, final.tolist()):
        cell.value = value

    # Distance sidecar: min-update on supplied distances, reset to None
    # whenever a train leaves the counter predicting "not colliding".
    # Only the final per-cell value is observable after the batch, and
    # ops after a cell's last reset fully determine it: a segmented
    # last-reset/min reduce replaces the per-event loop.  Filtering the
    # walk's cell-sorted order keeps events grouped by cell and
    # chronological within each cell without a second argsort.
    has_distance = collided & (distances != -1)
    post_predicts = after >= threshold
    affected = has_distance | ~post_predicts
    if bool(np.any(affected)):
        _BIG = np.iinfo(np.int64).max
        sorted_affected = order[affected[order]]
        cells = indices[sorted_affected]
        is_min = has_distance[sorted_affected]
        dist = distances[sorted_affected]
        pos = np.arange(len(cells), dtype=np.int64)
        starts_mask = np.empty(len(cells), dtype=bool)
        starts_mask[0] = True
        starts_mask[1:] = cells[1:] != cells[:-1]
        starts = np.nonzero(starts_mask)[0]
        lengths = np.diff(np.append(starts, len(cells)))
        # Sorted position of each cell's last reset (-1 when none).
        last_reset = np.maximum.reduceat(np.where(is_min, -1, pos), starts)
        survives = pos > np.repeat(last_reset, lengths)
        group_min = np.minimum.reduceat(
            np.where(is_min & survives, dist, _BIG), starts)
        unique_cells = cells[starts].tolist()
        sidecar = cht._distances
        initial_d = np.fromiter(
            (_BIG if sidecar[c] is None else sidecar[c]
             for c in unique_cells),
            dtype=np.int64, count=len(unique_cells))
        final_d = np.where(last_reset >= 0, group_min,
                           np.minimum(initial_d, group_min))
        for cell_id, value in zip(unique_cells, final_d.tolist()):
            sidecar[cell_id] = None if value == _BIG else value
    return before >= threshold
