"""Vectorized mirrors of :mod:`repro.common.bits`.

Every function here computes, over whole event arrays at once, exactly
what its scalar counterpart computes per call; the differential tests in
``tests/fastpath/test_indices.py`` pin that equivalence element-wise.

All internal arithmetic runs on ``uint64`` arrays: the widest scalar
intermediate is ``(pc >> 2) * _MIX`` which fits comfortably, and the
unsigned dtype sidesteps numpy's signed/unsigned promotion pitfalls.
Results are returned as ``int64`` so they can be used directly as table
indices and mixed with Python ints.
"""

from __future__ import annotations

import numpy as np

from repro.common.bits import _MIX, ilog2

_U64 = np.uint64


def as_u64(values) -> np.ndarray:
    """Coerce a sequence of non-negative ints to a uint64 array."""
    return np.asarray(values, dtype=_U64)


def fold_arr(values: np.ndarray, n_bits: int) -> np.ndarray:
    """XOR-fold each element down to ``n_bits`` bits (= ``bits.fold``)."""
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    v = as_u64(values).copy()
    m = _U64((1 << n_bits) - 1)
    shift = _U64(n_bits)
    folded = np.zeros_like(v)
    # The scalar loop runs while value != 0; folding in extra zero
    # chunks is an XOR no-op, so a fixed 64/n_bits-pass loop is exact.
    while bool(np.any(v)):
        folded ^= v & m
        v >>= shift
    return folded.astype(np.int64)


def pc_index_arr(pcs: np.ndarray, n_entries: int, shift: int = 2) -> np.ndarray:
    """Per-element ``bits.pc_index``."""
    pcs = as_u64(pcs)
    if n_entries <= 1:
        return np.zeros(len(pcs), dtype=np.int64)
    mixed = ((pcs >> _U64(shift)) * _U64(_MIX)) & _U64(0xFFFFFFFF)
    return fold_arr(mixed >> _U64(8), ilog2(n_entries))


def gshare_index_arr(pcs: np.ndarray, histories: np.ndarray,
                     n_entries: int, shift: int = 2) -> np.ndarray:
    """Per-element ``bits.gshare_index`` (history may vary per event)."""
    n_bits = ilog2(n_entries)
    folded_pc = fold_arr(as_u64(pcs) >> _U64(shift), n_bits)
    folded_hist = fold_arr(histories, n_bits)
    return (folded_pc ^ folded_hist) & ((1 << n_bits) - 1)


def _h_arr(values: np.ndarray, n_bits: int) -> np.ndarray:
    """Per-element ``bits._h`` on uint64 arrays of n_bits-wide values."""
    v = as_u64(values)
    m = _U64((1 << n_bits) - 1)
    msb = (v >> _U64(n_bits - 1)) & _U64(1)
    second = ((v >> _U64(n_bits - 2)) & _U64(1)) if n_bits >= 2 else np.zeros_like(v)
    return ((v << _U64(1)) & m) | (msb ^ second)


def _h_inv_arr(values: np.ndarray, n_bits: int) -> np.ndarray:
    """Per-element ``bits._h_inv``."""
    v = as_u64(values)
    lsb = v & _U64(1)
    msb = (v >> _U64(n_bits - 1)) & _U64(1)
    return (v >> _U64(1)) | ((lsb ^ msb) << _U64(n_bits - 1))


def skew_index_arr(pcs: np.ndarray, histories: np.ndarray, bank: int,
                   n_entries: int, shift: int = 2) -> np.ndarray:
    """Per-element ``bits.skew_index`` for one gskew bank."""
    n_bits = ilog2(n_entries)
    v1 = as_u64(fold_arr(as_u64(pcs) >> _U64(shift), n_bits))
    v2 = as_u64(fold_arr(histories, n_bits))
    if bank == 0:
        out = _h_arr(v1, n_bits) ^ _h_inv_arr(v2, n_bits) ^ v2
    elif bank == 1:
        out = _h_arr(v1, n_bits) ^ _h_inv_arr(v2, n_bits) ^ v1
    elif bank == 2:
        out = _h_arr(v2, n_bits) ^ _h_inv_arr(v1, n_bits) ^ v2
    else:
        raise ValueError("gskew has exactly three banks")
    return out.astype(np.int64)
