"""Batch replay kernel for the history-based bank predictors.

``HistoryBankPredictor`` wraps a confidence-scaled ``WeightedChooser``
over binary components and abstains below a confidence threshold; its
batch replay reuses the chooser kernel's (outcome, confidence, valid)
channels and applies the abstain rule vectorized.  The combined vote is
accumulated in float64 in the exact component order of the scalar
chooser, so confidences — and therefore abstain decisions — match bit
for bit.

Differential tests: ``tests/fastpath/test_bank_diff.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.bank.history import HistoryBankPredictor
from repro.fastpath import predictors as fp_predictors


def supports(predictor) -> bool:
    """True when ``replay_banks`` has an exact batch kernel."""
    return (type(predictor) is HistoryBankPredictor
            and fp_predictors.supports(predictor._chooser))


def stream_arrays(stream, line_bytes: int = 64,
                  n_banks: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Decompose a (pc, address) load stream into (pcs, banks)."""
    n = len(stream)
    pcs = np.fromiter((pc for pc, _ in stream), dtype=np.int64, count=n)
    addresses = np.fromiter((address for _, address in stream),
                            dtype=np.int64, count=n)
    banks = (addresses // line_bytes) % n_banks
    return pcs, banks


def replay_banks(predictor: HistoryBankPredictor, pcs: np.ndarray,
                 banks: np.ndarray) -> np.ndarray:
    """predict→update the whole load stream.

    Returns the per-event predicted bank as an int array with ``-1``
    for abstentions, leaving component state exactly as the scalar
    loop would.
    """
    pcs = np.asarray(pcs, dtype=np.int64)
    outcomes = np.asarray(banks, dtype=np.int64) == 1
    out, conf, valid = fp_predictors.weighted_replay(
        predictor._chooser, pcs, outcomes)
    predicts = valid & ~(conf < predictor.abstain_threshold)
    return np.where(predicts, np.where(out, 1, 0), -1)
