"""Batch replay kernels for the binary predictor families.

Each kernel consumes a (pc, outcome) event stream, returns the exact
per-event ``(outcome, confidence)`` the scalar predict→update loop
would have produced, and leaves the predictor object's tables and
history registers in the exact state the scalar loop would have left
them in (so scalar use, or the next batch, can continue seamlessly).

Exactness rests on the replay structure: training depends only on the
pre-recorded outcome stream, never on the predictions, so every table
index and history register is computable up front and the counter
evolution reduces to the scans in :mod:`repro.fastpath.scan`.  The one
exception is gskew's *partial update* (whether a bank trains depends on
the other banks' current counters), which gets a scalar fixup loop over
precomputed indices instead of a scan.

Differential tests: ``tests/fastpath/test_predictor_diff.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.common import bits
from repro.fastpath.indices import (
    fold_arr,
    gshare_index_arr,
    pc_index_arr,
    skew_index_arr,
)
from repro.fastpath.scan import clamped_walk, global_history_walk, history_walk
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.chooser import MajorityChooser, WeightedChooser
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.local import LocalPredictor

#: Predictor types with a dedicated batch kernel.  Matched with
#: ``type() is`` — a subclass may override predict/update semantics,
#: in which case only the reference backend is authoritative.
_LEAF_KERNELS = {}


def supports(predictor) -> bool:
    """True when ``replay`` has an exact batch kernel for ``predictor``."""
    kind = type(predictor)
    if kind in (MajorityChooser, WeightedChooser):
        return all(supports(c) for c in predictor.components)
    return kind in _LEAF_KERNELS


def _table_values(table) -> np.ndarray:
    return np.fromiter((c.value for c in table), dtype=np.int64,
                       count=len(table))


def _writeback(table, values: np.ndarray) -> None:
    for cell, value in zip(table, values.tolist()):
        cell.value = value


def _counter_confidence(before: np.ndarray, threshold: int,
                        max_value: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``SaturatingCounter.prediction``/``confidence``.

    Integer-by-integer float64 division matches the scalar Python
    division bit for bit.
    """
    outcome = before >= threshold
    up_span = max_value - threshold
    lo_span = threshold - 1
    conf_up = (np.ones(len(before), dtype=np.float64) if up_span == 0
               else (before - threshold) / up_span)
    conf_lo = (np.ones(len(before), dtype=np.float64) if lo_span == 0
               else (threshold - 1 - before) / lo_span)
    return outcome, np.where(outcome, conf_up, conf_lo)


def _counter_replay(table, indices: np.ndarray, outcomes: np.ndarray,
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Train a homogeneous counter table along ``indices``; return the
    per-event (prediction, confidence) read just before each train."""
    max_value = table[0]._max
    threshold = table[0]._threshold
    steps = np.where(outcomes, 1, -1)
    before, _, final = clamped_walk(indices, steps, _table_values(table),
                                    max_value)
    _writeback(table, final)
    return _counter_confidence(before, threshold, max_value)


def _bimodal_replay(pred: BimodalPredictor, pcs: np.ndarray,
                    outcomes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    indices = pc_index_arr(pcs, pred.n_entries)
    return _counter_replay(pred._table, indices, outcomes)


def _local_replay(pred: LocalPredictor, pcs: np.ndarray,
                  outcomes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    hist_idx = pc_index_arr(pcs, pred.n_entries)
    initial = np.asarray(pred._histories, dtype=np.int64)
    hist_before, hist_final = history_walk(hist_idx, outcomes, initial,
                                           pred.history_bits)
    pred._histories[:] = hist_final.tolist()
    pattern_idx = fold_arr(hist_before, bits.ilog2(pred.pattern_entries))
    return _counter_replay(pred._pattern, pattern_idx, outcomes)


def _gshare_replay(pred: GSharePredictor, pcs: np.ndarray,
                   outcomes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    hist_before, hist_final = global_history_walk(
        outcomes, pred._history, pred.history_bits)
    pred._history = hist_final
    indices = gshare_index_arr(pcs, hist_before, pred.n_entries)
    return _counter_replay(pred._table, indices, outcomes)


def _gskew_replay(pred: GSkewPredictor, pcs: np.ndarray,
                  outcomes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized index/history precompute + scalar partial-update fixup.

    The e-gskew partial update couples the three banks (a dissenting
    bank is left alone only when the *majority* was correct), so the
    counter evolution is not a per-cell scan; the fixup loop runs over
    plain Python lists with all indices precomputed, which is still
    several times cheaper than the full scalar object path.
    """
    hist_before, hist_final = global_history_walk(
        outcomes, pred._history, pred.history_bits)
    pred._history = hist_final
    index_lists = [
        skew_index_arr(pcs, hist_before, b, pred.bank_entries).tolist()
        for b in range(pred.N_BANKS)
    ]
    banks = [[cell.value for cell in bank] for bank in pred._banks]
    max_value = pred._banks[0][0]._max
    threshold = pred._banks[0][0]._threshold
    outcome_list = outcomes.tolist()
    n = len(outcome_list)
    out = np.empty(n, dtype=bool)
    conf = np.empty(n, dtype=np.float64)
    for j in range(n):
        cells = [(bank, idx[j]) for bank, idx in zip(banks, index_lists)]
        votes = [bank[i] >= threshold for bank, i in cells]
        ayes = votes[0] + votes[1] + votes[2]
        predicted = ayes >= 2
        out[j] = predicted
        conf[j] = 1.0 if ayes in (0, 3) else 0.5
        outcome = outcome_list[j]
        for vote, (bank, i) in zip(votes, cells):
            if predicted == outcome and vote != outcome:
                continue  # leave the dissenting bank alone
            if outcome:
                if bank[i] < max_value:
                    bank[i] += 1
            elif bank[i] > 0:
                bank[i] -= 1
    for bank_cells, values in zip(pred._banks, banks):
        for cell, value in zip(bank_cells, values):
            cell.value = value
    return out, conf


_LEAF_KERNELS.update({
    BimodalPredictor: _bimodal_replay,
    LocalPredictor: _local_replay,
    GSharePredictor: _gshare_replay,
    GSkewPredictor: _gskew_replay,
})


def _majority_replay(chooser: MajorityChooser, pcs: np.ndarray,
                     outcomes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    component_outcomes = [
        _replay_one(c, pcs, outcomes)[0] for c in chooser.components
    ]
    n = len(chooser.components)
    ayes = np.zeros(len(pcs), dtype=np.int64)
    for votes in component_outcomes:
        ayes += votes
    outcome = ayes * 2 > n
    margin = np.abs(2 * ayes - n) / n
    return outcome, margin


def _weighted_replay(chooser: WeightedChooser, pcs: np.ndarray,
                     outcomes: np.ndarray,
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (outcome, confidence, valid) — the chooser may abstain."""
    n = len(pcs)
    total = np.zeros(n, dtype=np.float64)
    scale = 0.0
    for component, weight in zip(chooser.components, chooser.weights):
        comp_out, comp_conf = _replay_one(component, pcs, outcomes)
        if chooser.confidence_scaled:
            w = weight * comp_conf
        else:
            w = np.full(n, weight * 1.0)
        total = total + np.where(comp_out, w, -w)
        scale += abs(weight)
    if scale == 0.0:
        valid = np.zeros(n, dtype=bool)
        return valid.copy(), np.zeros(n, dtype=np.float64), valid
    abs_total = np.abs(total)
    valid = ~(abs_total < chooser.threshold)
    outcome = total > 0
    confidence = abs_total / scale
    # Abstentions mirror NO_PREDICTION: outcome False, confidence 0.
    return (np.where(valid, outcome, False),
            np.where(valid, confidence, 0.0), valid)


def _replay_one(predictor, pcs: np.ndarray,
                outcomes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    kind = type(predictor)
    if kind is MajorityChooser:
        return _majority_replay(predictor, pcs, outcomes)
    if kind is WeightedChooser:
        out, conf, _ = _weighted_replay(predictor, pcs, outcomes)
        return out, conf
    return _LEAF_KERNELS[kind](predictor, pcs, outcomes)


def replay(predictor, pcs, outcomes,
           batch_size: int = 16384) -> Tuple[np.ndarray, np.ndarray]:
    """Batched predict→update replay of a whole (pc, outcome) stream.

    Events are processed in fixed-size chunks; all cross-chunk
    dependencies (counter tables, history registers) flow through the
    predictor object's own state, which every kernel reads at chunk
    entry and writes back exactly at chunk exit.
    """
    pcs = np.asarray(pcs, dtype=np.int64)
    outcomes = np.asarray(outcomes, dtype=bool)
    if not supports(predictor):
        raise TypeError(f"no batch kernel for {type(predictor).__name__}")
    n = len(pcs)
    out = np.empty(n, dtype=bool)
    conf = np.empty(n, dtype=np.float64)
    for lo in range(0, n, batch_size):
        hi = min(lo + batch_size, n)
        out[lo:hi], conf[lo:hi] = _replay_one(
            predictor, pcs[lo:hi], outcomes[lo:hi])
    return out, conf


def weighted_replay(chooser: WeightedChooser, pcs, outcomes,
                    batch_size: int = 16384,
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`replay` for a WeightedChooser, keeping the abstain
    (``valid``) channel that bank prediction needs."""
    pcs = np.asarray(pcs, dtype=np.int64)
    outcomes = np.asarray(outcomes, dtype=bool)
    if not supports(chooser):
        raise TypeError("unsupported chooser component")
    n = len(pcs)
    out = np.empty(n, dtype=bool)
    conf = np.empty(n, dtype=np.float64)
    valid = np.empty(n, dtype=bool)
    for lo in range(0, n, batch_size):
        hi = min(lo + batch_size, n)
        out[lo:hi], conf[lo:hi], valid[lo:hi] = _weighted_replay(
            chooser, pcs[lo:hi], outcomes[lo:hi])
    return out, conf, valid
