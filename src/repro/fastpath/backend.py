"""Backend selection for the vectorized fast path.

Every table-indexed predictor accepts ``backend="reference"`` (the
scalar, pure-Python loops — always available, always authoritative) or
``backend="vectorized"`` (numpy batch kernels from :mod:`repro.fastpath`
that the replay harnesses use to process whole event streams at once).

The default backend is process-wide and resolves, in order, from
``set_default_backend()`` / :func:`use_backend`, the ``REPRO_BACKEND``
environment variable, and finally ``"reference"``.  numpy is optional:
when it is missing the vectorized backend silently degrades to the
reference loops, so nothing in the repository *requires* numpy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    HAS_NUMPY = False

BACKENDS = ("reference", "vectorized")

_ENV_VAR = "REPRO_BACKEND"
_default: Optional[str] = None  # None = not set, fall back to env


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}")
    return name


def default_backend() -> str:
    """The process-wide default backend name."""
    if _default is not None:
        return _default
    env = os.environ.get(_ENV_VAR)
    if env:
        return _validate(env)
    return "reference"


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend."""
    global _default
    _default = _validate(name)


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the process-wide default backend."""
    global _default
    previous = _default
    _default = _validate(name)
    try:
        yield
    finally:
        _default = previous


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a constructor's ``backend`` argument to a concrete name.

    ``None`` means "use the default".  A request for the vectorized
    backend on an interpreter without numpy degrades to the reference
    backend rather than failing: the fast path is an accelerator, not a
    capability.
    """
    name = default_backend() if backend is None else _validate(backend)
    if name == "vectorized" and not HAS_NUMPY:
        return "reference"
    return name
