"""Shared struct-of-arrays uop model for the engine and the fastpath.

The scalar engine walks a list of :class:`~repro.common.types.Uop`
objects; every batch consumer — the vectorized machine kernel
(:mod:`repro.engine.vector`), the throughput bench, future trace
analytics — wants the same stream as flat ``int64`` lanes, decomposed
exactly once per trace.  This module is that single conversion point,
the engine-side sibling of ``EventArrayCache``
(:mod:`repro.experiments.cht_accuracy`) and the uniform int64-lane
encoding of :mod:`repro.fastpath.batchapi`.

Lane encoding (all ``numpy.int64``, length ``len(trace)``):

``seq, pc``            straight from the uop (``seq`` must be strictly
                       increasing — the engine's program order).
``uclass``             :class:`~repro.common.types.UopClass` value.
``dst``                destination register, ``-1`` when none.
``addr, size``         memory access, ``-1``/``0`` for non-memory uops.
``sta_seq``            the owning STA's seq for STD uops, else ``-1``.
``taken, mispredicted``  branch annotations as 0/1.
``pool``               execution-unit pool index (:data:`POOL_NAMES`),
                       ``-1`` for NOPs (which never occupy a unit).

Each lane is also retained as the plain-``int`` Python list it was
built from (``<lane>_l``): the event-driven engine kernel iterates
per-uop and plain lists beat ``ndarray`` item access there, while
batch consumers take the ndarray views.  Both views are frozen — never
write to either.

Beyond the lanes, two program-order-derived dependency structures are
precomputed (they depend only on the trace, never on machine state —
the rename-time ``regmap`` is append-only, so "producer of register r
at uop i" is simply "the last earlier writer of r"):

``prods``              per-uop tuple of producer *indices* (deduped).
``consumers``          inverse mapping: per-uop list of consumer
                       indices (every uop whose ``prods`` contains it).

Like every kernel submodule this imports numpy and must only be
imported behind a :data:`repro.fastpath.HAS_NUMPY` check.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.common.types import UopClass
from repro.trace.trace import Trace

#: Execution-unit pool indices (order matches the scalar engine's
#: ``unit_caps`` dict: int, mem, fp, complex).
POOL_NAMES = ("int", "mem", "fp", "complex")

#: ``UopClass`` value → pool index; ``-1`` = no unit (NOP).
_POOL_BY_UCLASS = (0, 2, 3, 1, 1, 1, 0, -1)

#: Cache attribute stashed on the Trace object itself (traces are
#: immutable by convention once built; a slice is a new object and
#: therefore never aliases a parent's cache).
_CACHE_ATTR = "_repro_uop_arrays"

_LOAD = int(UopClass.LOAD)
_STA = int(UopClass.STA)
_STD = int(UopClass.STD)


class UnsupportedTrace(ValueError):
    """The trace cannot be expressed in the array model (the caller
    should fall back to the scalar object path)."""


class UopArrays:
    """One trace decomposed into the lanes described in the module
    docstring.  Instances are immutable and shared — never write to
    the arrays (or the backing lists)."""

    __slots__ = ("n", "seq", "pc", "uclass", "dst", "addr", "size",
                 "sta_seq", "taken", "mispredicted", "pool",
                 "seq_l", "pc_l", "uclass_l", "dst_l", "addr_l",
                 "size_l", "sta_seq_l", "taken_l", "mispredicted_l",
                 "pool_l", "prods", "consumers")

    def __init__(self, trace: Trace) -> None:
        uops = trace.uops
        n = self.n = len(uops)
        # One pass extracts every lane, validates, and resolves the
        # dependency graph (9 generator passes + numpy round-trips are
        # measurably slower than a single Python loop).
        seq_l: List[int] = []
        pc_l: List[int] = []
        uclass_l: List[int] = []
        dst_l: List[int] = []
        addr_l: List[int] = []
        size_l: List[int] = []
        sta_seq_l: List[int] = []
        taken_l: List[int] = []
        misp_l: List[int] = []
        pool_l: List[int] = []
        regmap: Dict[int, int] = {}
        prods: List[Tuple[int, ...]] = []
        consumers: List[List[int]] = [[] for _ in range(n)]
        pool_by = _POOL_BY_UCLASS
        last_seq = None
        for i, uop in enumerate(uops):
            s = uop.seq
            if last_seq is not None and s <= last_seq:
                raise UnsupportedTrace(
                    f"trace {trace.name!r} has non-increasing uop seqs")
            last_seq = s
            seq_l.append(s)
            pc_l.append(uop.pc)
            uc = int(uop.uclass)
            uclass_l.append(uc)
            pool_l.append(pool_by[uc])
            dst = uop.dst
            dst_l.append(-1 if dst is None else dst)
            mem = uop.mem
            if mem is None:
                if uc == _LOAD or uc == _STA:
                    raise UnsupportedTrace(
                        f"trace {trace.name!r} has a {uop.uclass.name} "
                        f"uop without a memory access")
                addr_l.append(-1)
                size_l.append(0)
            else:
                addr_l.append(mem.address)
                size_l.append(mem.size)
            sta = uop.sta_seq
            if sta is None:
                if uc == _STD:
                    raise UnsupportedTrace(
                        f"trace {trace.name!r} has an STD uop without "
                        f"an owning STA seq")
                sta_seq_l.append(-1)
            else:
                sta_seq_l.append(sta)
            taken_l.append(1 if uop.taken else 0)
            misp_l.append(1 if uop.mispredicted else 0)
            seen: List[int] = []
            for reg in uop.srcs:
                j = regmap.get(reg)
                if j is not None and j not in seen:
                    seen.append(j)
                    consumers[j].append(i)
            prods.append(tuple(seen))
            if dst is not None:
                regmap[dst] = i

        self.seq_l = seq_l
        self.pc_l = pc_l
        self.uclass_l = uclass_l
        self.dst_l = dst_l
        self.addr_l = addr_l
        self.size_l = size_l
        self.sta_seq_l = sta_seq_l
        self.taken_l = taken_l
        self.mispredicted_l = misp_l
        self.pool_l = pool_l
        self.prods = prods
        self.consumers = consumers
        self.seq = np.array(seq_l, np.int64)
        self.pc = np.array(pc_l, np.int64)
        self.uclass = np.array(uclass_l, np.int64)
        self.dst = np.array(dst_l, np.int64)
        self.addr = np.array(addr_l, np.int64)
        self.size = np.array(size_l, np.int64)
        self.sta_seq = np.array(sta_seq_l, np.int64)
        self.taken = np.array(taken_l, np.int64)
        self.mispredicted = np.array(misp_l, np.int64)
        self.pool = np.array(pool_l, np.int64)

    def __len__(self) -> int:
        return self.n


def trace_arrays(trace: Trace) -> UopArrays:
    """The (cached) :class:`UopArrays` for ``trace``.

    The conversion is stashed on the trace object itself so every
    consumer — repeated ``Machine.run`` calls, sweeps, the bench —
    pays the Python-object decomposition once.
    """
    cached = getattr(trace, _CACHE_ATTR, None)
    if cached is not None and cached.n == len(trace.uops):
        return cached
    arrays = UopArrays(trace)
    try:
        setattr(trace, _CACHE_ATTR, arrays)
    except AttributeError:  # pragma: no cover - exotic trace stand-ins
        pass
    return arrays
