"""Numpy-vectorized batch fast path for the replay harnesses.

The figure harnesses spend almost all their post-PR-2 time in scalar
predict→train loops over pre-recorded event streams.  This package
provides exact batch kernels for those loops — the tagless CHT, the
local/gshare/gskew/bimodal predictor families and their choosers, the
hit-miss and bank predictor adapters, and rng-free address-stream
materialization — selected per object through the
``backend="reference"|"vectorized"`` constructor switch
(:mod:`repro.fastpath.backend`).

Exactness is a hard contract, not an aspiration: every kernel must
produce bit-identical prediction streams, counter/table state, and
figure JSON to the scalar reference (``tests/fastpath/`` pins this over
seeded workload grids; ``docs/testing.md`` describes the methodology).
numpy is optional — without it the vectorized backend silently resolves
to the reference implementation.

Kernel submodules (``predictors``, ``cht``, ``hitmiss``, ``bank``,
``tracegen``, ``indices``, ``scan``, ``uoparrays``) import numpy and
must only be imported behind a :data:`HAS_NUMPY` check — exactly what
:func:`enabled` is for.

The same backend switch also selects the whole-machine replay kernel:
``Machine.run(trace, backend=...)`` resolves through
:func:`resolve_backend` and routes supported runs to the event-driven
array engine of :mod:`repro.engine.vector` built over the
:mod:`repro.fastpath.uoparrays` uop lanes (see ``docs/engine.md``).
"""

from repro.fastpath.backend import (
    BACKENDS,
    HAS_NUMPY,
    default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)

__all__ = [
    "BACKENDS",
    "HAS_NUMPY",
    "default_backend",
    "enabled",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]


def enabled(obj) -> bool:
    """True when ``obj`` asked for the vectorized backend and numpy is
    importable — the guard every dispatch site checks before touching
    the kernel submodules."""
    return HAS_NUMPY and getattr(obj, "backend", "reference") == "vectorized"
