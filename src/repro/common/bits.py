"""Bit-manipulation helpers shared by the predictor tables.

All predictor tables in the paper index with subsets of the linear
instruction pointer, fold longer histories onto shorter indices, and use
skewed hash functions (gskew).  These helpers centralise that arithmetic.
"""

from __future__ import annotations


def mask(n_bits: int) -> int:
    """An ``n_bits``-wide all-ones mask."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    return (1 << n_bits) - 1


def extract(value: int, lo: int, n_bits: int) -> int:
    """Bits ``[lo, lo+n_bits)`` of ``value``."""
    return (value >> lo) & mask(n_bits)


def fold(value: int, n_bits: int) -> int:
    """XOR-fold an arbitrarily wide value down to ``n_bits`` bits."""
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    folded = 0
    m = mask(n_bits)
    while value:
        folded ^= value & m
        value >>= n_bits
    return folded


def ilog2(value: int) -> int:
    """Exact integer log2; raises if ``value`` is not a power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


#: Knuth's multiplicative-hash constant (golden ratio of 2^32).
_MIX = 2654435761


def pc_index(pc: int, n_entries: int, shift: int = 2) -> int:
    """Direct-mapped table index from an instruction pointer.

    The low ``shift`` bits are dropped (instruction alignment), then the
    pointer is mixed multiplicatively before folding onto the index
    width.  A plain XOR-fold of "a subset of the linear instruction
    pointer bits" (section 2.1) produces *systematic* aliasing when code
    is laid out at regular strides; the multiplicative mix keeps the
    aliasing that remains capacity-shaped rather than layout-shaped.
    """
    if n_entries <= 1:
        return 0
    mixed = ((pc >> shift) * _MIX) & 0xFFFFFFFF
    return fold(mixed >> 8, ilog2(n_entries))


def gshare_index(pc: int, history: int, n_entries: int, shift: int = 2) -> int:
    """Classic gshare index: PC xor global history, folded to table width."""
    n_bits = ilog2(n_entries)
    return (fold(pc >> shift, n_bits) ^ fold(history, n_bits)) & mask(n_bits)


# --- Skewing functions (gskew) --------------------------------------------
#
# The e-gskew predictor of Michaud & Seznec indexes each of its banks with
# a different skewing function built from a simple invertible bit mixer H
# and its inverse.  We implement the standard H/H^-1 on n-bit values.


def _h(value: int, n_bits: int) -> int:
    """The Michaud/Seznec H function: one step of an LFSR-like mix."""
    msb = (value >> (n_bits - 1)) & 1
    second = (value >> (n_bits - 2)) & 1 if n_bits >= 2 else 0
    new_msb = msb ^ second
    return ((value << 1) & mask(n_bits)) | new_msb


def _h_inv(value: int, n_bits: int) -> int:
    """Inverse of :func:`_h`."""
    lsb = value & 1
    msb = (value >> (n_bits - 1)) & 1
    return (value >> 1) | ((lsb ^ msb) << (n_bits - 1))


def skew_index(pc: int, history: int, bank: int, n_entries: int,
               shift: int = 2) -> int:
    """Index for gskew bank ``bank`` (0, 1 or 2).

    Each bank mixes the same (pc, history) pair through a different
    composition of H and H^-1 so that two addresses aliasing in one bank
    rarely alias in the others (the skewing property).
    """
    n_bits = ilog2(n_entries)
    v1 = fold(pc >> shift, n_bits)
    v2 = fold(history, n_bits)
    if bank == 0:
        return _h(v1, n_bits) ^ _h_inv(v2, n_bits) ^ v2
    if bank == 1:
        return _h(v1, n_bits) ^ _h_inv(v2, n_bits) ^ v1
    if bank == 2:
        return _h(v2, n_bits) ^ _h_inv(v1, n_bits) ^ v2
    raise ValueError("gskew has exactly three banks")


def shift_history(history: int, outcome: bool, length: int) -> int:
    """Shift a binary outcome into an ``length``-bit history register."""
    return ((history << 1) | int(outcome)) & mask(length)
