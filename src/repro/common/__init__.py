"""Shared substrate: uop types, machine configuration, statistics, RNG, bits.

Everything in this package is dependency-free (standard library only) so the
rest of the system can import it without cycles.
"""

from repro.common.types import (
    Uop,
    UopClass,
    MemAccess,
    LoadCollisionClass,
    HitMissClass,
    is_load,
    is_store_address,
    is_store_data,
)
from repro.common.config import (
    CacheConfig,
    MemoryConfig,
    ExecUnitConfig,
    LatencyConfig,
    MachineConfig,
    BASELINE_MACHINE,
)
from repro.common.stats import Counter, Histogram, RatioStat, StatGroup
from repro.common.rng import DeterministicRng
from repro.common import bits

__all__ = [
    "Uop",
    "UopClass",
    "MemAccess",
    "LoadCollisionClass",
    "HitMissClass",
    "is_load",
    "is_store_address",
    "is_store_data",
    "CacheConfig",
    "MemoryConfig",
    "ExecUnitConfig",
    "LatencyConfig",
    "MachineConfig",
    "BASELINE_MACHINE",
    "Counter",
    "Histogram",
    "RatioStat",
    "StatGroup",
    "DeterministicRng",
    "bits",
]
