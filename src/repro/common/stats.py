"""Light-weight statistics plumbing used across the simulator.

Every subsystem exposes a :class:`StatGroup` so experiment harnesses can
collect named counters uniformly and render them into the paper's tables.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class RatioStat:
    """A numerator/denominator pair with a safe ratio accessor."""

    __slots__ = ("name", "num", "den")

    def __init__(self, name: str) -> None:
        self.name = name
        self.num = 0
        self.den = 0

    def record(self, success: bool) -> None:
        self.den += 1
        if success:
            self.num += 1

    def add(self, num: int, den: int) -> None:
        self.num += num
        self.den += den

    @property
    def ratio(self) -> float:
        return self.num / self.den if self.den else 0.0

    def reset(self) -> None:
        self.num = 0
        self.den = 0

    def __repr__(self) -> str:
        return f"RatioStat({self.name}={self.num}/{self.den}={self.ratio:.4f})"


class Histogram:
    """Integer-keyed histogram (e.g. collision distances, latencies)."""

    __slots__ = ("name", "_bins")

    def __init__(self, name: str) -> None:
        self.name = name
        self._bins: Dict[int, int] = {}

    def add(self, key: int, amount: int = 1) -> None:
        self._bins[key] = self._bins.get(key, 0) + amount

    def count(self, key: int) -> int:
        return self._bins.get(key, 0)

    @property
    def total(self) -> int:
        return sum(self._bins.values())

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self._bins.items())

    def mean(self) -> float:
        total = self.total
        if not total:
            return 0.0
        return sum(k * v for k, v in self._bins.items()) / total

    def percentile(self, q: float) -> int:
        """Smallest key whose cumulative count reaches fraction ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        total = self.total
        if not total:
            return 0
        threshold = q * total
        running = 0
        for key, count in self.items():
            running += count
            if running >= threshold:
                return key
        return self.items()[-1][0]

    def reset(self) -> None:
        self._bins.clear()

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total})"


StatValue = Union[Counter, RatioStat, Histogram]


class StatGroup:
    """A named, ordered collection of statistics.

    Acts as a small registry: subsystems create their stats through the
    group so reports can walk everything without knowing the internals.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats: "OrderedDict[str, StatValue]" = OrderedDict()
        self._children: "OrderedDict[str, StatGroup]" = OrderedDict()

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter(name))

    def ratio(self, name: str) -> RatioStat:
        return self._register(name, RatioStat(name))

    def histogram(self, name: str) -> Histogram:
        return self._register(name, Histogram(name))

    def child(self, name: str) -> "StatGroup":
        if name in self._children:
            return self._children[name]
        group = StatGroup(name)
        self._children[name] = group
        return group

    def _register(self, name: str, stat: StatValue) -> StatValue:
        if name in self._stats:
            existing = self._stats[name]
            if type(existing) is not type(stat):
                raise TypeError(f"stat {name!r} already exists as {type(existing)}")
            return existing  # type: ignore[return-value]
        self._stats[name] = stat
        return stat

    def get(self, name: str) -> Optional[StatValue]:
        return self._stats.get(name)

    def __iter__(self) -> Iterator[Tuple[str, StatValue]]:
        return iter(self._stats.items())

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()
        for child in self._children.values():
            child.reset()

    def as_dict(self) -> Dict[str, object]:
        """Flatten into plain numbers for reporting / JSON."""
        out: Dict[str, object] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                out[name] = stat.value
            elif isinstance(stat, RatioStat):
                out[name] = {"num": stat.num, "den": stat.den, "ratio": stat.ratio}
            else:
                out[name] = dict(stat.items())
        for child_name, child in self._children.items():
            out[child_name] = child.as_dict()
        return out


def weighted_mean(pairs: Mapping[str, Tuple[float, float]]) -> float:
    """Weighted mean of ``{label: (value, weight)}`` pairs."""
    total_weight = sum(w for _, w in pairs.values())
    if not total_weight:
        return 0.0
    return sum(v * w for v, w in pairs.values()) / total_weight


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, the conventional aggregate for speedups."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
