"""Light-weight statistics plumbing used across the simulator.

Every subsystem exposes a :class:`StatGroup` so experiment harnesses can
collect named counters uniformly and render them into the paper's tables.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

try:  # numpy accelerates bulk recording; the scalar path is the semantics
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class RatioStat:
    """A numerator/denominator pair with a safe ratio accessor."""

    __slots__ = ("name", "num", "den")

    def __init__(self, name: str) -> None:
        self.name = name
        self.num = 0
        self.den = 0

    def record(self, success: bool) -> None:
        self.den += 1
        if success:
            self.num += 1

    def add(self, num: int, den: int) -> None:
        self.num += num
        self.den += den

    @property
    def ratio(self) -> float:
        return self.num / self.den if self.den else 0.0

    def reset(self) -> None:
        self.num = 0
        self.den = 0

    def __repr__(self) -> str:
        return f"RatioStat({self.name}={self.num}/{self.den}={self.ratio:.4f})"


class Histogram:
    """Integer-keyed histogram (e.g. collision distances, latencies)."""

    __slots__ = ("name", "_bins")

    def __init__(self, name: str) -> None:
        self.name = name
        self._bins: Dict[int, int] = {}

    def add(self, key: int, amount: int = 1) -> None:
        self._bins[key] = self._bins.get(key, 0) + amount

    def count(self, key: int) -> int:
        return self._bins.get(key, 0)

    @property
    def total(self) -> int:
        return sum(self._bins.values())

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self._bins.items())

    def mean(self) -> float:
        total = self.total
        if not total:
            return 0.0
        return sum(k * v for k, v in self._bins.items()) / total

    def percentile(self, q: float) -> int:
        """Smallest key whose cumulative count reaches fraction ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        total = self.total
        if not total:
            return 0
        threshold = q * total
        running = 0
        for key, count in self.items():
            running += count
            if running >= threshold:
                return key
        return self.items()[-1][0]

    def reset(self) -> None:
        self._bins.clear()

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total})"


class StreamingHistogram:
    """Log-bucketed (HDR-style) streaming histogram for latency-like values.

    Positive samples land in geometric buckets ``index =
    floor(log(value) / log(1 + 2*rel_error))``; a bucket is represented
    by the geometric mean of its edges, so any reported quantile is
    within a factor of ``(1 + 2*rel_error)**0.5 <= 1 + rel_error`` of
    some exact sample — a *relative* error bound of ``rel_error``
    (default 1%), independent of the value's magnitude.  Zero and
    negative samples are counted in a dedicated underflow bucket that
    reports as ``0.0``.

    Properties the serve tier and the bench harness rely on:

    * **bounded memory** — O(#occupied buckets), never O(#samples): a
      nanosecond-to-hour latency range occupies at most ~1.6k buckets
      at the default resolution, however many samples stream through;
    * **mergeable** — :meth:`merge` adds another histogram's buckets;
      the operation is associative and commutative, so per-shard /
      per-process histograms combine into fleet totals losslessly;
    * **cheap recording** — one ``math.log`` + dict update per sample
      on the scalar path; :meth:`record_many` vectorizes whole numpy
      arrays (one ``log`` + ``bincount`` pass) when numpy is present.
    """

    DEFAULT_REL_ERROR = 0.01

    __slots__ = ("name", "rel_error", "_log_base", "_bins", "_zeros",
                 "_count", "_sum", "_min", "_max")

    def __init__(self, name: str = "",
                 rel_error: float = DEFAULT_REL_ERROR) -> None:
        if not 0.0 < rel_error < 1.0:
            raise ValueError("rel_error must be in (0, 1)")
        self.name = name
        self.rel_error = rel_error
        self._log_base = math.log1p(2.0 * rel_error)
        self._bins: Dict[int, int] = {}
        self._zeros = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ----------------------------------------------------------

    def record(self, value: float, n: int = 1) -> None:
        """Record ``value`` (``n`` times)."""
        if n <= 0:
            return
        self._count += n
        value = float(value)
        self._sum += value * n
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._zeros += n
            return
        index = math.floor(math.log(value) / self._log_base)
        self._bins[index] = self._bins.get(index, 0) + n

    def record_many(self, values: Iterable[float]) -> None:
        """Bulk-record; one vectorized pass when numpy is available."""
        if _np is not None:
            arr = _np.asarray(list(values) if not isinstance(
                values, _np.ndarray) else values, dtype=float)
            if arr.size == 0:
                return
            self._count += int(arr.size)
            self._sum += float(arr.sum())
            self._min = min(self._min, float(arr.min()))
            self._max = max(self._max, float(arr.max()))
            positive = arr[arr > 0.0]
            self._zeros += int(arr.size - positive.size)
            if positive.size:
                indices = _np.floor(
                    _np.log(positive) / self._log_base).astype(_np.int64)
                uniques, counts = _np.unique(indices, return_counts=True)
                for index, count in zip(uniques.tolist(), counts.tolist()):
                    self._bins[index] = self._bins.get(index, 0) + count
            return
        for value in values:
            self.record(value)

    # -- reading ------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:  # Histogram-compatible alias
        return self._count

    @property
    def n_buckets(self) -> int:
        """Occupied buckets — the memory footprint, in O(1) units."""
        return len(self._bins) + (1 if self._zeros else 0)

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def _bucket_value(self, index: int) -> float:
        """Representative value: geometric mean of the bucket edges."""
        return math.exp((index + 0.5) * self._log_base)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], within ``rel_error``.

        The reported value is clamped to the observed ``[min, max]`` so
        extreme quantiles of near-degenerate distributions never report
        outside the recorded range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._count:
            return 0.0
        threshold = q * self._count
        running = self._zeros
        if running >= threshold and self._zeros:
            return 0.0
        for index in sorted(self._bins):
            running += self._bins[index]
            if running >= threshold:
                return min(max(self._bucket_value(index), self._min),
                           self._max)
        return self._max

    def quantiles(self, qs: Iterable[float]) -> Dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    def percentiles(self) -> Dict[str, float]:
        """The standard latency-report quartet."""
        return {"p50": self.quantile(0.50), "p90": self.quantile(0.90),
                "p99": self.quantile(0.99), "p999": self.quantile(0.999)}

    # -- combination / persistence ------------------------------------------

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Add ``other``'s buckets into this histogram (in place).

        Requires an identical ``rel_error`` (same bucket boundaries);
        associative and commutative up to float summation of ``_sum``.
        """
        if abs(other.rel_error - self.rel_error) > 1e-12:
            raise ValueError(
                f"cannot merge histograms with different resolutions "
                f"({self.rel_error} vs {other.rel_error})")
        for index, count in other._bins.items():
            self._bins[index] = self._bins.get(index, 0) + count
        self._zeros += other._zeros
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def copy(self) -> "StreamingHistogram":
        out = StreamingHistogram(self.name, self.rel_error)
        out._bins = dict(self._bins)
        out._zeros = self._zeros
        out._count = self._count
        out._sum = self._sum
        out._min = self._min
        out._max = self._max
        return out

    def reset(self) -> None:
        self._bins.clear()
        self._zeros = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe state; :meth:`from_dict` round-trips it."""
        return {
            "rel_error": self.rel_error,
            "count": self._count,
            "zeros": self._zeros,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "bins": {str(k): v for k, v in sorted(self._bins.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object],
                  name: str = "") -> "StreamingHistogram":
        out = cls(name, rel_error=float(data.get(
            "rel_error", cls.DEFAULT_REL_ERROR)))
        out._bins = {int(k): int(v)
                     for k, v in dict(data.get("bins", {})).items()}
        out._zeros = int(data.get("zeros", 0))
        out._count = int(data.get("count", 0))
        out._sum = float(data.get("sum", 0.0))
        minimum, maximum = data.get("min"), data.get("max")
        out._min = float(minimum) if minimum is not None else math.inf
        out._max = float(maximum) if maximum is not None else -math.inf
        return out

    def summary(self) -> Dict[str, float]:
        """Flat numeric summary (what registry snapshots report)."""
        out = {"count": float(self._count), "mean": self.mean(),
               "min": self.min, "max": self.max}
        out.update(self.percentiles())
        return out

    def __repr__(self) -> str:
        return (f"StreamingHistogram({self.name!r}, n={self._count}, "
                f"buckets={self.n_buckets})")


StatValue = Union[Counter, RatioStat, Histogram, StreamingHistogram]


class StatGroup:
    """A named, ordered collection of statistics.

    Acts as a small registry: subsystems create their stats through the
    group so reports can walk everything without knowing the internals.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats: "OrderedDict[str, StatValue]" = OrderedDict()
        self._children: "OrderedDict[str, StatGroup]" = OrderedDict()

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter(name))

    def ratio(self, name: str) -> RatioStat:
        return self._register(name, RatioStat(name))

    def histogram(self, name: str) -> Histogram:
        return self._register(name, Histogram(name))

    def streaming(self, name: str,
                  rel_error: float = StreamingHistogram.DEFAULT_REL_ERROR
                  ) -> StreamingHistogram:
        return self._register(name, StreamingHistogram(name, rel_error))

    def child(self, name: str) -> "StatGroup":
        if name in self._children:
            return self._children[name]
        group = StatGroup(name)
        self._children[name] = group
        return group

    def _register(self, name: str, stat: StatValue) -> StatValue:
        if name in self._stats:
            existing = self._stats[name]
            if type(existing) is not type(stat):
                raise TypeError(f"stat {name!r} already exists as {type(existing)}")
            return existing  # type: ignore[return-value]
        self._stats[name] = stat
        return stat

    def get(self, name: str) -> Optional[StatValue]:
        return self._stats.get(name)

    def __iter__(self) -> Iterator[Tuple[str, StatValue]]:
        return iter(self._stats.items())

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()
        for child in self._children.values():
            child.reset()

    def as_dict(self) -> Dict[str, object]:
        """Flatten into plain numbers for reporting / JSON."""
        out: Dict[str, object] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                out[name] = stat.value
            elif isinstance(stat, RatioStat):
                out[name] = {"num": stat.num, "den": stat.den, "ratio": stat.ratio}
            elif isinstance(stat, StreamingHistogram):
                out[name] = stat.summary()
            else:
                out[name] = dict(stat.items())
        for child_name, child in self._children.items():
            out[child_name] = child.as_dict()
        return out


def weighted_mean(pairs: Mapping[str, Tuple[float, float]]) -> float:
    """Weighted mean of ``{label: (value, weight)}`` pairs."""
    total_weight = sum(w for _, w in pairs.values())
    if not total_weight:
        return 0.0
    return sum(v * w for v, w in pairs.values()) / total_weight


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, the conventional aggregate for speedups."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
