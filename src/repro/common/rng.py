"""Deterministic random number generation.

Every stochastic component (trace generation, stochastic address streams)
draws from a :class:`DeterministicRng` seeded explicitly, so any experiment
is reproducible bit-for-bit from its (workload, seed) pair.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded wrapper around :class:`random.Random` with named substreams.

    Substreams keep independent generators for independent concerns (e.g.
    control flow vs. data addresses), so adding a draw to one stream never
    perturbs the sequence of another — experiments stay comparable across
    code changes.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._root = random.Random(seed)
        self._streams: dict = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named substream."""
        if name not in self._streams:
            # Derive the substream seed from the root seed and the name so
            # it does not depend on creation order.
            sub_seed = hash((self.seed, name)) & 0xFFFFFFFFFFFF
            self._streams[name] = random.Random(sub_seed)
        return self._streams[name]

    # Convenience pass-throughs on the root stream -------------------------

    def random(self) -> float:
        return self._root.random()

    def randint(self, a: int, b: int) -> int:
        return self._root.randint(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        return self._root.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float], k: int = 1) -> List[T]:
        return self._root.choices(seq, weights=weights, k=k)

    def shuffle(self, seq: list) -> None:
        self._root.shuffle(seq)

    def geometric(self, p: float, cap: int = 1 << 20) -> int:
        """Number of failures before the first success, capped."""
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        count = 0
        while self._root.random() >= p and count < cap:
            count += 1
        return count

    def bernoulli(self, p: float) -> bool:
        return self._root.random() < p
