"""Machine configuration dataclasses.

The default values reproduce the baseline machine of section 3.1:

* 6 uops fetched and renamed per clock, retire up to 6 uops per clock;
* 128-entry renamer register pool (bounds in-flight uops);
* 32-entry scheduling window (swept 8..128 in Figure 6);
* 2 integer, 2 memory, 1 FP, 2 complex execution units (Figure 8 sweeps
  the integer/memory counts);
* 16K L1 D-cache and 256K unified L2, both 4-way with 64-byte lines;
* 8-cycle load-store collision penalty.

Latencies follow the deep-pipe example of Figure 3: 5-cycle L1 access and
a hit/miss indication that arrives 5 cycles after dependents could have
started scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.common.types import UopClass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 4
    n_banks: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError("cache size must be a multiple of line*ways")
        if self.n_banks < 1 or self.n_banks & (self.n_banks - 1):
            raise ValueError("n_banks must be a positive power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class MemoryConfig:
    """The two-level hierarchy of section 3.1."""

    l1d: CacheConfig = CacheConfig(size_bytes=16 * 1024)
    l2: CacheConfig = CacheConfig(size_bytes=256 * 1024)
    l1_latency: int = 5  #: cache-access cycles (Fig 3: 8-cycle load = 3 AGU + 5)
    l2_latency: int = 12
    memory_latency: int = 80
    mshr_entries: int = 8  #: outstanding-miss queue depth


@dataclass(frozen=True)
class ExecUnitConfig:
    """Number of execution units per class (Figure 8 sweeps int/mem)."""

    n_int: int = 2
    n_mem: int = 2
    n_fp: int = 1
    n_complex: int = 2

    def capacity(self, uclass: UopClass) -> int:
        """Issue slots per cycle available to a uop class."""
        if uclass in (UopClass.INT, UopClass.BRANCH):
            return self.n_int
        if uclass in (UopClass.LOAD, UopClass.STA, UopClass.STD):
            return self.n_mem
        if uclass == UopClass.FP:
            return self.n_fp
        if uclass == UopClass.COMPLEX:
            return self.n_complex
        return 0  # NOP never issues


@dataclass(frozen=True)
class LatencyConfig:
    """Fixed execution latencies (cycles) for non-load classes."""

    int_latency: int = 1
    fp_latency: int = 3
    complex_latency: int = 4
    branch_latency: int = 1
    agu_latency: int = 3  #: sched-to-address-known: RF read + AGU (Fig 3)
    collision_penalty: int = 8  #: section 3.1 load-store collision penalty
    hit_indication_delay: int = 5  #: Figure 3: cycles until hit/miss known
    reschedule_delay: int = 6  #: recovery gap after a squashed issue (re-schedule + re-pipeline)
    branch_mispredict_penalty: int = 10
    #: Store-to-load forwarding latency: when set, a load whose nearest
    #: older overlapping store has completed receives its data from the
    #: store queue in this many cycles instead of accessing the cache.
    #: ``None`` disables forwarding (data comes through the cache, which
    #: the store has already warmed).  Section 2.1 notes the exclusive
    #: predictor's pairing "may also provide a simple way of performing
    #: load-store pairing, enabling data value forwarding".
    forward_latency: Optional[int] = None

    def of(self, uclass: UopClass) -> int:
        table: Dict[UopClass, int] = {
            UopClass.INT: self.int_latency,
            UopClass.FP: self.fp_latency,
            UopClass.COMPLEX: self.complex_latency,
            UopClass.BRANCH: self.branch_latency,
            UopClass.STA: self.agu_latency,
            UopClass.STD: self.agu_latency,
            UopClass.NOP: 0,
        }
        if uclass == UopClass.LOAD:
            raise ValueError("load latency is dynamic; query the hierarchy")
        return table[uclass]


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description consumed by :class:`repro.engine.Machine`."""

    fetch_width: int = 6
    retire_width: int = 6
    register_pool: int = 128
    window_size: int = 32
    units: ExecUnitConfig = ExecUnitConfig()
    memory: MemoryConfig = MemoryConfig()
    latency: LatencyConfig = LatencyConfig()

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be positive")
        if self.window_size > self.register_pool:
            raise ValueError("scheduling window cannot exceed register pool")

    def with_window(self, window_size: int) -> "MachineConfig":
        """Copy with a different scheduling window (Figure 6 sweep)."""
        return replace(self, window_size=window_size)

    def with_units(self, n_int: int, n_mem: int) -> "MachineConfig":
        """Copy with different integer/memory unit counts (Figure 8)."""
        units = replace(self.units, n_int=n_int, n_mem=n_mem)
        return replace(self, units=units)


#: The section 3.1 baseline configuration.
BASELINE_MACHINE = MachineConfig()
