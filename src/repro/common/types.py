"""Core data types: micro-operations and load classification taxonomies.

The simulator is trace driven.  A trace is a sequence of :class:`Uop`
objects, mirroring the paper's P6-style decomposition: a load is a single
uop, a store is a STA (store address) uop plus a STD (store data) uop
(section 1.1).  Every uop carries the linear instruction pointer of the
macro-instruction it came from; the predictors index on that pointer,
exactly as the paper's tables do.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Protocol, Tuple, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.predictors.base import Prediction


class UopClass(enum.IntEnum):
    """Micro-operation classes understood by the execution core.

    The classes map one-to-one onto the execution-unit types of the
    baseline machine in section 3.1 (2 integer, 2 memory, 1 floating
    point, 2 complex units).  ``STA``/``STD`` are the two halves of a
    store; both occupy a memory unit.
    """

    INT = 0  #: simple integer ALU operation, 1 cycle
    FP = 1  #: floating point operation
    COMPLEX = 2  #: long-latency operation (mul/div/shuffle...)
    LOAD = 3  #: memory load, dynamic latency
    STA = 4  #: store-address uop
    STD = 5  #: store-data uop
    BRANCH = 6  #: conditional/indirect branch, executes on an integer unit
    NOP = 7  #: filler (renamed but never scheduled)


@dataclass(frozen=True)
class MemAccess:
    """A resolved memory access: byte address plus access size."""

    address: int
    size: int = 4

    def line(self, line_bytes: int) -> int:
        """Cache-line index of the access for ``line_bytes``-byte lines."""
        return self.address // line_bytes

    def bank(self, n_banks: int, line_bytes: int) -> int:
        """Bank index under line-interleaved banking."""
        return (self.address // line_bytes) % n_banks

    def overlaps(self, other: "MemAccess") -> bool:
        """True when the two byte ranges intersect (load-store collision)."""
        return (self.address < other.address + other.size
                and other.address < self.address + self.size)


# A unique sequence number type alias for readability.
SeqNum = int


@dataclass
class Uop:
    """One dynamic micro-operation of the trace.

    Attributes
    ----------
    seq:
        Dynamic sequence number, dense and strictly increasing in program
        order.  Assigned by the trace producer.
    pc:
        Linear instruction pointer of the originating macro-instruction.
        Predictor tables index on this.
    uclass:
        Execution class of the uop.
    srcs:
        Architectural source register ids (at most 2 in the model).
    dst:
        Architectural destination register id or ``None``.
    mem:
        Resolved memory access for LOAD/STA uops, ``None`` otherwise.
        The trace carries the *oracle* address; the engine only reveals
        it to itself at address-generation time.
    sta_seq:
        For an STD uop, the sequence number of its paired STA.
    taken / mispredicted:
        Branch outcome annotations used by the front-end model.
    """

    seq: SeqNum
    pc: int
    uclass: UopClass
    srcs: Tuple[int, ...] = ()
    dst: Optional[int] = None
    mem: Optional[MemAccess] = None
    sta_seq: Optional[SeqNum] = None
    taken: bool = False
    mispredicted: bool = False

    def __post_init__(self) -> None:
        if self.uclass in (UopClass.LOAD, UopClass.STA) and self.mem is None:
            raise ValueError(f"{self.uclass.name} uop requires a memory access")
        if self.uclass == UopClass.STD and self.sta_seq is None:
            raise ValueError("STD uop requires sta_seq linking it to its STA")

    @property
    def is_load(self) -> bool:
        return self.uclass == UopClass.LOAD

    @property
    def is_sta(self) -> bool:
        return self.uclass == UopClass.STA

    @property
    def is_std(self) -> bool:
        return self.uclass == UopClass.STD

    @property
    def is_mem(self) -> bool:
        return self.uclass in (UopClass.LOAD, UopClass.STA, UopClass.STD)

    @property
    def is_branch(self) -> bool:
        return self.uclass == UopClass.BRANCH


def is_load(uop: Uop) -> bool:
    """Module-level predicate mirror of :attr:`Uop.is_load`."""
    return uop.uclass == UopClass.LOAD


def is_store_address(uop: Uop) -> bool:
    """Module-level predicate mirror of :attr:`Uop.is_sta`."""
    return uop.uclass == UopClass.STA


def is_store_data(uop: Uop) -> bool:
    """Module-level predicate mirror of :attr:`Uop.is_std`."""
    return uop.uclass == UopClass.STD


@runtime_checkable
class LoadPredictor(Protocol):
    """The one shape every per-load predictor reduces to.

    ``predict(pc)`` answers a binary question about the load at ``pc``
    with a :class:`~repro.predictors.base.Prediction`; ``update(pc,
    outcome)`` trains with the resolved outcome, in the same stream
    order (global-history predictors rely on it).  What the binary
    outcome *means* is family-specific — "will miss" for hit-miss
    predictors, "will collide" for CHTs, "goes to bank 1" for two-bank
    predictors — and the adapters of :mod:`repro.api.adapters` bring
    each family's native API onto this protocol.

    The protocol is structural and ``runtime_checkable``:
    ``isinstance(obj, LoadPredictor)`` verifies the two methods exist
    (signatures are a static-checking concern).
    """

    def predict(self, pc: int) -> "Prediction":
        """Predict the binary outcome for the load at ``pc``."""
        ...  # pragma: no cover - protocol stub

    def update(self, pc: int, outcome: bool) -> None:
        """Train with the resolved outcome for ``pc``."""
        ...  # pragma: no cover - protocol stub


class LoadCollisionClass(enum.Enum):
    """The load taxonomy of Figure 1.

    A load is *conflicting* when, at schedule time, an older store with an
    unknown address exists in the scheduling window.  Conflicting loads
    split by actual collision status (AC = the store's address matches,
    ANC = it does not) crossed with the predictor's call (PC / PNC).
    """

    NOT_CONFLICTING = "not-conflicting"
    ANC_PC = "ANC-PC"  #: lost opportunity (predicted colliding, was not)
    ANC_PNC = "ANC-PNC"  #: correct: advanced safely
    AC_PC = "AC-PC"  #: correct: delayed a truly colliding load
    AC_PNC = "AC-PNC"  #: costly: advanced a colliding load (re-execution)

    @property
    def actually_colliding(self) -> bool:
        return self in (LoadCollisionClass.AC_PC, LoadCollisionClass.AC_PNC)

    @property
    def predicted_colliding(self) -> bool:
        return self in (LoadCollisionClass.ANC_PC, LoadCollisionClass.AC_PC)

    @property
    def correct(self) -> bool:
        return self in (LoadCollisionClass.ANC_PNC, LoadCollisionClass.AC_PC)


class HitMissClass(enum.Enum):
    """The hit-miss taxonomy of section 2.2 (AH/AM crossed with PH/PM)."""

    AH_PH = "AH-PH"  #: actual hit predicted hit: status quo
    AM_PM = "AM-PM"  #: miss caught by the predictor: the win
    AH_PM = "AH-PM"  #: false miss: dependent delayed by hit indication
    AM_PH = "AM-PH"  #: miss not caught: re-execution (today's behaviour)

    @classmethod
    def classify(cls, actual_hit: bool, predicted_hit: bool) -> "HitMissClass":
        if actual_hit:
            return cls.AH_PH if predicted_hit else cls.AH_PM
        return cls.AM_PH if predicted_hit else cls.AM_PM

    @property
    def correct(self) -> bool:
        return self in (HitMissClass.AH_PH, HitMissClass.AM_PM)

    @property
    def actual_hit(self) -> bool:
        return self in (HitMissClass.AH_PH, HitMissClass.AH_PM)
