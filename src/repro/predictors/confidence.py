"""Resetting-counter confidence estimation (Jacobsen/Rotenberg/Smith).

Section 2.3 leans on confidence repeatedly — low-confidence bank
predictions are duplicated to all pipes, weighted choosers scale votes
by confidence — but the counter-distance confidence built into the
table predictors is coarse (a 2-bit counter is "fully confident" the
moment it saturates).  The classic JRS estimator measures confidence
*empirically*: a PC-indexed table of resetting counters that increment
on a correct prediction and clear on a wrong one, so confidence means
"this predictor has been right N times in a row here".

:class:`ConfidenceEstimator` is predictor-agnostic;
:class:`ConfidentPredictor` bundles it with any
:class:`~repro.predictors.base.BinaryPredictor`, replacing the
predictor's structural confidence with the measured one.
"""

from __future__ import annotations

from typing import List

from repro.common import bits
from repro.predictors.base import BinaryPredictor, Prediction


class ConfidenceEstimator:
    """PC-indexed resetting counters over prediction correctness."""

    def __init__(self, n_entries: int = 1024, counter_bits: int = 4,
                 threshold: int = 8) -> None:
        bits.ilog2(n_entries)
        if counter_bits < 1:
            raise ValueError("counter_bits must be positive")
        self.n_entries = n_entries
        self.counter_bits = counter_bits
        self._max = (1 << counter_bits) - 1
        if not 0 < threshold <= self._max:
            raise ValueError("threshold must be in (0, counter max]")
        self.threshold = threshold
        self._table: List[int] = [0] * n_entries

    def _index(self, pc: int) -> int:
        return bits.pc_index(pc, self.n_entries)

    def confidence(self, pc: int) -> float:
        """Measured confidence in [0, 1]: streak / counter maximum."""
        return self._table[self._index(pc)] / self._max

    def is_confident(self, pc: int) -> bool:
        """Has the streak reached the high-confidence threshold?"""
        return self._table[self._index(pc)] >= self.threshold

    def record(self, pc: int, correct: bool) -> None:
        """Saturating increment on correct, reset to zero on wrong."""
        index = self._index(pc)
        if correct:
            if self._table[index] < self._max:
                self._table[index] += 1
        else:
            self._table[index] = 0

    def reset(self) -> None:
        self._table = [0] * self.n_entries

    @property
    def storage_bits(self) -> int:
        return self.n_entries * self.counter_bits


class ConfidentPredictor(BinaryPredictor):
    """Any binary predictor with JRS-measured confidence attached.

    ``predict`` returns the inner outcome with the *measured*
    confidence; ``update`` scores the inner prediction before training
    it, so the estimator tracks the predictor's actual streaks.
    """

    def __init__(self, inner: BinaryPredictor,
                 estimator: ConfidenceEstimator | None = None) -> None:
        self.inner = inner
        self.estimator = (estimator if estimator is not None
                          else ConfidenceEstimator())

    def predict(self, pc: int) -> Prediction:
        p = self.inner.predict(pc)
        return Prediction(outcome=p.outcome,
                          confidence=self.estimator.confidence(pc),
                          valid=p.valid)

    def update(self, pc: int, outcome: bool) -> None:
        predicted = self.inner.predict(pc)
        self.estimator.record(pc, bool(predicted.outcome) == outcome)
        self.inner.update(pc, outcome)

    def reset(self) -> None:
        self.inner.reset()
        self.estimator.reset()

    @property
    def storage_bits(self) -> int:
        return self.inner.storage_bits + self.estimator.storage_bits
