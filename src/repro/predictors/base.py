"""The common binary-predictor protocol.

A binary predictor answers a yes/no question about a PC — "will this
branch be taken", "will this load miss", "will this load hit bank 1" —
optionally with a confidence level.  Section 2.3 of the paper combines
several such predictors through confidence-aware choosers, so confidence
is part of the protocol rather than an afterthought.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class Prediction:
    """Outcome of a predictor query.

    Attributes
    ----------
    outcome:
        The predicted binary outcome.
    confidence:
        A value in ``[0, 1]``; 1.0 means the predictor is at a saturated
        state, 0.0 means it has no information (e.g. a cold entry).
    valid:
        False when the predictor declines to predict (e.g. a tag miss in
        a tagged table).  Consumers treat invalid predictions according
        to their own default policy.
    """

    outcome: bool
    confidence: float = 1.0
    valid: bool = True

    def __bool__(self) -> bool:
        return self.outcome


#: A prediction representing "no information".
NO_PREDICTION = Prediction(outcome=False, confidence=0.0, valid=False)


class BinaryPredictor(abc.ABC):
    """Interface shared by every table-based binary predictor."""

    #: Optional :class:`repro.obs.events.EventBus`; when attached,
    #: :meth:`observed_update` reports every training step.
    obs = None

    @abc.abstractmethod
    def predict(self, pc: int) -> Prediction:
        """Predict the outcome for the instruction at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, outcome: bool) -> None:
        """Train with the resolved outcome for ``pc``.

        ``update`` must be called with the same ``pc`` stream order as
        ``predict``; predictors with global history rely on it.
        """

    def observed_update(self, pc: int, outcome: bool,
                        now: int = -1) -> None:
        """:meth:`update`, plus a ``predictor-update`` event when an
        event bus is attached (the front end's hook point)."""
        self.update(pc, outcome)
        if self.obs is not None:
            self.obs.emit("predictor-update", now, pc=pc, family="branch",
                          predictor=type(self).__name__, outcome=outcome)

    def reset(self) -> None:
        """Return to the power-on state (used for cyclic clearing)."""
        raise NotImplementedError

    @property
    def storage_bits(self) -> int:
        """Approximate hardware budget of the predictor, in bits."""
        raise NotImplementedError


class AlwaysPredictor(BinaryPredictor):
    """Constant predictor — e.g. today's "always predict a cache hit"."""

    def __init__(self, outcome: bool) -> None:
        self._outcome = outcome

    def predict(self, pc: int) -> Prediction:
        return Prediction(outcome=self._outcome, confidence=1.0)

    def update(self, pc: int, outcome: bool) -> None:
        pass  # nothing to learn

    def reset(self) -> None:
        pass

    @property
    def storage_bits(self) -> int:
        return 0
