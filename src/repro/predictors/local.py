"""Two-level local predictor (Yeh & Patt style).

The paper's baseline hit-miss predictor is "an adaptation of the
well-known local predictor": a tagless table of per-PC history registers
recording the hit/miss history of each load, indexing a second-level
pattern table of saturating counters (section 2.2, 2048 entries, 8-bit
history, ~2 KB).
"""

from __future__ import annotations

from typing import List

from repro.common import bits
from repro.fastpath.backend import resolve_backend
from repro.predictors.base import BinaryPredictor, Prediction
from repro.predictors.counters import SaturatingCounter


class LocalPredictor(BinaryPredictor):
    """Per-PC history registers feeding a shared pattern table.

    ``backend`` selects the replay fast path (``repro.fastpath``); the
    scalar ``predict``/``update`` API is identical on both backends.
    """

    def __init__(self, n_entries: int = 2048, history_bits: int = 8,
                 counter_bits: int = 2, pattern_entries: int | None = None,
                 backend: str | None = None) -> None:
        bits.ilog2(n_entries)
        self.backend = resolve_backend(backend)
        self.n_entries = n_entries
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.pattern_entries = (pattern_entries if pattern_entries is not None
                                else 1 << history_bits)
        bits.ilog2(self.pattern_entries)
        self._histories: List[int] = [0] * n_entries
        self._pattern: List[SaturatingCounter] = [
            SaturatingCounter(counter_bits) for _ in range(self.pattern_entries)
        ]

    def _hist_index(self, pc: int) -> int:
        return bits.pc_index(pc, self.n_entries)

    def _pattern_index(self, history: int) -> int:
        return bits.fold(history, bits.ilog2(self.pattern_entries))

    def predict(self, pc: int) -> Prediction:
        history = self._histories[self._hist_index(pc)]
        cell = self._pattern[self._pattern_index(history)]
        return Prediction(outcome=cell.prediction, confidence=cell.confidence)

    def update(self, pc: int, outcome: bool) -> None:
        idx = self._hist_index(pc)
        history = self._histories[idx]
        self._pattern[self._pattern_index(history)].train(outcome)
        self._histories[idx] = bits.shift_history(history, outcome,
                                                  self.history_bits)

    def reset(self) -> None:
        self._histories = [0] * self.n_entries
        for cell in self._pattern:
            cell.reset()

    @property
    def storage_bits(self) -> int:
        return (self.n_entries * self.history_bits
                + self.pattern_entries * self.counter_bits)

    def __repr__(self) -> str:
        return (f"LocalPredictor(entries={self.n_entries}, "
                f"history={self.history_bits})")
