"""Binary predictor substrate.

The paper adapts "well-known branch predictors" (section 2.2/2.3) to
predict load hit-miss behaviour and cache banks.  This package implements
that family once — bimodal, two-level local, gshare, gskew, saturating
counters, sticky bits — plus the majority/weighted choosers of section
2.3 and the stride/last-address predictor standing in for [Beke99].

All predictors speak the same protocol (:class:`BinaryPredictor`):
``predict(pc) -> Prediction`` then ``update(pc, outcome)``.
"""

from repro.predictors.base import BinaryPredictor, Prediction, AlwaysPredictor
from repro.predictors.counters import SaturatingCounter, StickyBit
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.local import LocalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.chooser import (
    MajorityChooser,
    WeightedChooser,
    ConfidenceFilter,
)
from repro.predictors.address import StrideAddressPredictor
from repro.predictors.correlated import CorrelatedAddressPredictor
from repro.predictors.confidence import ConfidenceEstimator, ConfidentPredictor

__all__ = [
    "BinaryPredictor",
    "Prediction",
    "AlwaysPredictor",
    "SaturatingCounter",
    "StickyBit",
    "BimodalPredictor",
    "LocalPredictor",
    "GSharePredictor",
    "GSkewPredictor",
    "MajorityChooser",
    "WeightedChooser",
    "ConfidenceFilter",
    "StrideAddressPredictor",
    "CorrelatedAddressPredictor",
    "ConfidenceEstimator",
    "ConfidentPredictor",
]
