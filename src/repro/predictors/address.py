"""Stride/last-address load-address predictor.

Stands in for the correlated load-address predictor of [Beke99] that the
paper uses as its strongest bank predictor ("Addr" in Figure 12) — the
bank is just one bit of the predicted effective address.  The predictor
keeps a per-PC last address, a stride, and a 2-bit stride-stability
counter; it predicts only when the stride has been confirmed, which gives
it the high-accuracy / moderate-rate profile the paper reports (~70 %
prediction rate at ~98 % accuracy on integer codes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common import bits
from repro.predictors.counters import SaturatingCounter


@dataclass
class _AddressEntry:
    tag: int
    last_address: int
    stride: int
    confidence: SaturatingCounter

    def predicted_address(self) -> int:
        return self.last_address + self.stride


class StrideAddressPredictor:
    """Tagged, direct-mapped stride predictor over load PCs.

    Not a :class:`BinaryPredictor` — it predicts full addresses.  The
    :class:`repro.bank.address_based.AddressBankPredictor` adapter turns
    its output into a bank prediction.
    """

    def __init__(self, n_entries: int = 1024, confidence_bits: int = 2,
                 predict_threshold: int = 2, tag_bits: int = 16) -> None:
        bits.ilog2(n_entries)
        self.n_entries = n_entries
        self.predict_threshold = predict_threshold
        self.tag_bits = tag_bits
        self.confidence_bits = confidence_bits
        self._table: Dict[int, _AddressEntry] = {}

    def _index_tag(self, pc: int) -> tuple:
        index = bits.pc_index(pc, self.n_entries)
        tag = bits.fold(pc >> 2, self.tag_bits)
        return index, tag

    def predict(self, pc: int) -> Optional[int]:
        """Predicted effective address, or ``None`` (cold/unstable entry)."""
        index, tag = self._index_tag(pc)
        entry = self._table.get(index)
        if entry is None or entry.tag != tag:
            return None
        if entry.confidence.value < self.predict_threshold:
            return None
        return entry.predicted_address()

    def confidence(self, pc: int) -> float:
        index, tag = self._index_tag(pc)
        entry = self._table.get(index)
        if entry is None or entry.tag != tag:
            return 0.0
        return entry.confidence.confidence

    def update(self, pc: int, address: int) -> None:
        """Train with the load's resolved effective address."""
        index, tag = self._index_tag(pc)
        entry = self._table.get(index)
        if entry is None or entry.tag != tag:
            self._table[index] = _AddressEntry(
                tag=tag, last_address=address, stride=0,
                confidence=SaturatingCounter(self.confidence_bits))
            return
        observed_stride = address - entry.last_address
        if observed_stride == entry.stride:
            entry.confidence.train(True)
        else:
            entry.confidence.train(False)
            # Adopt the new stride once confidence has fully drained so a
            # single irregular access does not destroy a stable stride.
            if entry.confidence.value == 0:
                entry.stride = observed_stride
        entry.last_address = address

    def reset(self) -> None:
        self._table.clear()

    @property
    def storage_bits(self) -> int:
        # tag + last address (32) + stride (16) + confidence per entry
        return self.n_entries * (self.tag_bits + 32 + 16 + self.confidence_bits)

    def __repr__(self) -> str:
        return f"StrideAddressPredictor(entries={self.n_entries})"
